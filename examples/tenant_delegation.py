"""Tenant delegation and verified refinement (§4 of the paper).

An administrator caps all traffic between two hosts at 100 MB/s and
delegates the policy to a tenant.  The tenant refines it — splitting the
traffic into HTTP (logged), SSH, and everything else (DPI-inspected) with a
re-divided bandwidth budget — and the negotiator verifies the refinement.
A second, greedy refinement that tries to grab 200 MB/s is rejected, as is a
refinement that drops the logging requirement.

Run with:  python examples/tenant_delegation.py
"""

from repro import parse_policy
from repro.negotiator import Negotiator
from repro.predicates import parse_predicate

GLOBAL_POLICY = """
[ x : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2) -> .* log .* ],
max(x, 100MB/s)
"""

VALID_REFINEMENT = """
[ x : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2 and tcp.dst = 80) -> .* log .* ;
  y : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2 and tcp.dst = 22) -> .* log .* ;
  z : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2 and
       !(tcp.dst = 22 or tcp.dst = 80)) -> .* log .* dpi .* ],
max(x, 50MB/s) and max(y, 25MB/s) and max(z, 25MB/s)
"""

GREEDY_REFINEMENT = """
[ x : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2) -> .* log .* ],
max(x, 200MB/s)
"""

PATH_RELAXING_REFINEMENT = """
[ x : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2) -> .* ],
max(x, 100MB/s)
"""


def main() -> None:
    administrator = Negotiator(name="administrator", policy=parse_policy(GLOBAL_POLICY))
    tenant = administrator.delegate_to(
        "tenant-a", parse_predicate("ip.src = 192.168.1.1")
    )
    print(f"Delegated policy to {tenant.name!r}:")
    print(tenant.policy.to_source())

    print("\n--- Proposing a valid refinement (split by port, re-divide budget) ---")
    report = tenant.propose(parse_policy(VALID_REFINEMENT))
    print(f"accepted: {report.valid} "
          f"(checked {report.checked_pairs} statement pairs, "
          f"{report.checked_clauses} bandwidth clauses)")
    print(f"tenant now enforces {len(tenant.policy.statements)} statements, "
          f"total cap {tenant.total_cap().human()}")

    print("\n--- Proposing a greedy refinement (200 MB/s) ---")
    report = tenant.propose(parse_policy(GREEDY_REFINEMENT))
    print(f"accepted: {report.valid}")
    for violation in report.violations:
        print(f"  rejected because: {violation}")

    print("\n--- Proposing a refinement that drops the logging requirement ---")
    report = tenant.propose(parse_policy(PATH_RELAXING_REFINEMENT))
    print(f"accepted: {report.valid}")
    for violation in report.violations:
        print(f"  rejected because: {violation}")

    print("\n--- Run-time bandwidth re-allocation (no recompilation needed) ---")
    from repro.units import Bandwidth

    report = tenant.reallocate_caps(
        {"x": Bandwidth.mb_per_sec(80), "y": Bandwidth.mb_per_sec(10),
         "z": Bandwidth.mb_per_sec(10)}
    )
    print(f"shift 30 MB/s from y/z to x: accepted = {report.valid}, "
          f"total cap still {tenant.total_cap().human()}")


if __name__ == "__main__":
    main()
