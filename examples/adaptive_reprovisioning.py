"""Adaptive re-provisioning through the incremental compilation path.

The paper's negotiators make *bandwidth* re-allocation recompile-free
(§4.3).  This example walks the remaining case — a verified tenant
refinement that changes *paths* — through the incremental engine:

1. the administrator compiles a global policy (guaranteed FTP and HTTP
   traffic between h1 and h2 on the Figure 2 network),
2. the root negotiator is attached to the live compiler session,
3. the tenant refines the FTP statement to force its traffic through the
   middlebox ``m1`` — verification accepts it, and the negotiator pushes a
   one-statement delta through ``MerlinCompiler.recompile`` instead of a
   full recompilation,
4. a second refinement only lowers a guarantee: the delta engine rewrites
   one reservation row and re-solves the single MIP component it touched.

Run with:  PYTHONPATH=src python examples/adaptive_reprovisioning.py
"""

from repro import Bandwidth, MerlinCompiler, figure2_example, parse_policy
from repro.negotiator import Negotiator

PLACEMENTS = {"dpi": ["h1", "h2", "m1"], "nat": ["m1"], "log": ["m1"]}

GLOBAL_POLICY = """
[ x : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 20) -> .* dpi .* ;
  z : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 80) -> .* dpi .* nat .* ],
min(x, 25MB/s) and min(z, 50MB/s)
"""

#: The tenant pins x's inspection to the middlebox (a *stricter* path
#: language: every m1-inspected path was already a dpi-capable path).
PATH_REFINEMENT = GLOBAL_POLICY.replace(".* dpi .* ;", ".* m1 dpi .* ;")

#: A later adaptation: x needs less bandwidth.
RATE_REFINEMENT = PATH_REFINEMENT.replace("min(x, 25MB/s)", "min(x, 10MB/s)")


def show(result, title: str) -> None:
    statistics = result.statistics
    print(f"\n--- {title} ---")
    for identifier in sorted(result.paths):
        assignment = result.paths[identifier]
        rate = (
            assignment.guaranteed_rate.human()
            if assignment.guaranteed_rate
            else "best-effort"
        )
        print(f"  {identifier}: {' -> '.join(assignment.path)}  [{rate}]")
    print(
        f"  partitions: {statistics.num_partitions} "
        f"(re-solved {statistics.dirty_partitions}), "
        f"solver: {statistics.solver_status}, "
        f"total {statistics.total_seconds * 1000:.1f} ms"
    )


def main() -> None:
    topology = figure2_example(capacity=Bandwidth.gbps(2))
    compiler = MerlinCompiler(
        topology=topology,
        placements=PLACEMENTS,
        overlap="trust",
        add_catch_all=False,
        generate_code=False,
    )
    policy = parse_policy(GLOBAL_POLICY, topology=topology)
    result = compiler.compile(policy)
    compiler.prepare_incremental()  # pay session setup now, not on the first delta
    show(result, "Initial compile (full MIP)")

    root = Negotiator(name="administrator", policy=policy, compiler=compiler)

    refined = parse_policy(PATH_REFINEMENT, topology=topology)
    report = root.propose(refined)
    print(f"\npath refinement verified: {report.valid}")
    show(root.last_reprovision, "After path refinement (incremental recompile)")

    adapted = parse_policy(RATE_REFINEMENT, topology=topology)
    report = root.propose(adapted)
    print(f"\nrate refinement verified: {report.valid}")
    show(root.last_reprovision, "After rate adaptation (one reservation row rewritten)")

    print(
        "\nEvery result above is identical to a from-scratch compile of the "
        "same policy;\nonly the work to produce it shrank."
    )


if __name__ == "__main__":
    main()
