"""Quickstart: compile the paper's running example and inspect the output.

The policy (§2 of the paper) caps FTP data+control traffic at 50 MB/s in
aggregate, guarantees 100 MB/s to HTTP traffic, and forces FTP data and HTTP
traffic through packet-processing functions (DPI, NAT).  The network is the
tiny example of Figure 2: two hosts, two switches, and one middlebox.

Run with:  python examples/quickstart.py
"""

from repro import Bandwidth, compile_policy, figure2_example

POLICY = """
[ x : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 20) -> .* dpi .* ;
  y : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 21) -> .* ;
  z : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 80) -> .* dpi .* nat .* ],
max(x + y, 50MB/s) and min(z, 100MB/s)
"""

# DPI can run at either host or the middlebox; NAT only at the middlebox.
PLACEMENTS = {"dpi": ["h1", "h2", "m1"], "nat": ["m1"]}


def main() -> None:
    topology = figure2_example(capacity=Bandwidth.gbps(2))
    print(f"Topology: {topology}")

    result = compile_policy(POLICY, topology, PLACEMENTS)

    print("\nLocalized bandwidth allocations (the §3.1 rewrite):")
    for identifier, allocation in sorted(result.rates.items()):
        cap = allocation.cap.human() if allocation.cap else "-"
        guarantee = allocation.guarantee.human() if allocation.guarantee else "-"
        print(f"  {identifier:>8}: cap={cap:>12}  guarantee={guarantee:>12}")

    print("\nSelected forwarding paths and function placements:")
    for identifier, assignment in sorted(result.paths.items()):
        placements = ", ".join(
            f"{function}@{location}"
            for function, location in sorted(assignment.function_placements.items())
        )
        print(f"  {identifier:>8}: {' -> '.join(assignment.path)}"
              + (f"   [{placements}]" if placements else ""))

    print("\nLink reservations (Equation 2 of the MIP):")
    for link, reserved in sorted(result.link_reservations.items()):
        if reserved.bps_value > 0:
            print(f"  {link[0]:>4} -- {link[1]:<4}: {reserved.human()}")
    print(f"  max fraction reserved on any link (r_max): {result.max_link_utilization():.2f}")

    print("\nGenerated instruction counts (the Figure 4 metric):")
    for kind, count in result.instructions.counts().items():
        print(f"  {kind:>9}: {count}")

    print("\nSample of the generated device configuration:")
    for line in result.instructions.render().splitlines()[:8]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
