"""Datacenter scenario: protect a Hadoop shuffle from background traffic.

This is the workload the paper's introduction motivates and §6.2 evaluates:
a Hadoop sort job whose shuffle phase is slowed down by UDP background
traffic, and a Merlin policy that guarantees bandwidth to the shuffle flows.
The example compiles the policy for a fat-tree datacenter, then replays the
three configurations (exclusive, interference, guarantee) on the flow-level
simulator.

Run with:  python examples/datacenter_hadoop.py
"""

from repro import Bandwidth, compile_policy, fat_tree
from repro.simulator import SimulationNetwork
from repro.simulator.apps import HadoopJob
from repro.simulator.apps.hadoop import udp_interference

#: The four servers running the Hadoop job (one per pod of the fat tree).
WORKERS = ["h1", "h5", "h9", "h13"]

#: Hosts generating UDP gossip/monitoring background traffic towards workers.
INTERFERENCE = [("h2", "h1"), ("h6", "h5"), ("h10", "h9")]


def build_guarantee_policy(topology, per_pair_rate: Bandwidth) -> str:
    """One statement per worker pair, each guaranteed ``per_pair_rate``."""
    statements, clauses = [], []
    index = 0
    for source in WORKERS:
        for destination in WORKERS:
            if source == destination:
                continue
            index += 1
            statements.append(
                f"shuffle{index} : (eth.src = {topology.node(source).mac} and "
                f"eth.dst = {topology.node(destination).mac} and tcp.dst = 50010) -> .*"
            )
            clauses.append(f"min(shuffle{index}, {per_pair_rate.policy_literal()})")
    return "[ " + " ; ".join(statements) + " ],\n" + " and ".join(clauses)


def main() -> None:
    topology = fat_tree(4)
    job = HadoopJob(workers=WORKERS, data_bytes=10e9, compute_seconds=400.0)

    plain = SimulationNetwork(topology)
    baseline = job.run(plain)
    print(f"Baseline (exclusive network access): {baseline.completion_seconds:6.1f} s "
          f"(shuffle {baseline.shuffle_seconds:.1f} s)")

    interfered = job.run(
        plain,
        background_flows=udp_interference(plain, INTERFERENCE, Bandwidth.mbps(800)),
    )
    slowdown = interfered.completion_seconds / baseline.completion_seconds - 1
    print(f"With UDP background traffic:        {interfered.completion_seconds:6.1f} s "
          f"(+{slowdown:.0%})")

    policy = build_guarantee_policy(topology, Bandwidth.mbps(150))
    compiled = compile_policy(policy, topology, {}, overlap="trust")
    print(f"\nCompiled guarantee policy: {compiled.statistics.num_guaranteed_statements} "
          f"guaranteed statements, instructions = {compiled.instructions.counts()}")

    protected = SimulationNetwork(topology, compiled)
    guaranteed = job.run(
        protected,
        background_flows=udp_interference(protected, INTERFERENCE, Bandwidth.mbps(800)),
    )
    recovered = guaranteed.completion_seconds / baseline.completion_seconds - 1
    print(f"With Merlin bandwidth guarantees:    {guaranteed.completion_seconds:6.1f} s "
          f"(+{recovered:.0%} vs baseline)")


if __name__ == "__main__":
    main()
