"""Middlebox chaining on an enterprise campus network.

An enterprise (the Stanford-like campus topology of §6.1) wants:

* web traffic entering the campus to pass a DPI middlebox,
* traffic from the student-dorm subnets to the server subnets to pass a
  monitoring middlebox,
* a 1 Mbps guarantee for the emergency-notification traffic class, and
* plain connectivity for everything else.

The example shows the path-selection heuristics in action and prints where
each packet-processing function was placed.

Run with:  python examples/middlebox_chaining.py
"""

from repro import Bandwidth, MerlinCompiler, PathSelectionHeuristic
from repro.experiments.policy_builders import FIGURE4_PLACEMENTS, stanford_with_middleboxes


def build_policy(topology) -> str:
    hosts = topology.host_names()
    dorms = hosts[:4]           # subnets 1-4 are student dorms
    servers = hosts[-4:]        # the last four subnets host servers
    emergency_source, emergency_destination = hosts[4], hosts[5]

    statements = []
    clauses = []
    index = 0
    for dorm in dorms:
        for server in servers:
            index += 1
            statements.append(
                f"web{index} : (eth.src = {topology.node(dorm).mac} and "
                f"eth.dst = {topology.node(server).mac} and tcp.dst = 80) -> .* dpi .*"
            )
            index += 1
            statements.append(
                f"mon{index} : (eth.src = {topology.node(dorm).mac} and "
                f"eth.dst = {topology.node(server).mac} and tcp.dst != 80) -> .* monitor .*"
            )
    statements.append(
        f"alert : (eth.src = {topology.node(emergency_source).mac} and "
        f"eth.dst = {topology.node(emergency_destination).mac} and udp.dst = 5999) -> .*"
    )
    clauses.append("min(alert, 1Mbps)")
    return "[ " + " ;\n  ".join(statements) + " ],\n" + " and ".join(clauses)


def main() -> None:
    topology = stanford_with_middleboxes()
    policy = build_policy(topology)
    print(f"Campus topology: {topology}")
    print(f"Policy statements: {policy.count('->')}")

    for heuristic in PathSelectionHeuristic:
        compiler = MerlinCompiler(
            topology=topology,
            placements=FIGURE4_PLACEMENTS,
            heuristic=heuristic,
            overlap="trust",
        )
        result = compiler.compile(policy)
        alert_path = result.paths.get("alert")
        print(f"\n=== heuristic: {heuristic.value} ===")
        print(f"  emergency-traffic path: {' -> '.join(alert_path.path)}")
        print(f"  max link utilisation (r_max): {result.max_link_utilization():.3f}")
        print(f"  max link reservation (R_max): {result.max_link_reservation().human()}")
        print(f"  instructions: {result.instructions.counts()}")

    # Show where the packet-processing functions ended up (placements are the
    # same across heuristics because only the middleboxes can host them).
    compiler = MerlinCompiler(
        topology=topology, placements=FIGURE4_PLACEMENTS, overlap="trust"
    )
    result = compiler.compile(policy)
    placements = {}
    for assignment in result.paths.values():
        for function, location in assignment.function_placements.items():
            placements.setdefault(function, set()).add(location)
    print("\nPacket-processing function placements:")
    for function, locations in sorted(placements.items()):
        print(f"  {function}: {', '.join(sorted(locations))}")


if __name__ == "__main__":
    main()
