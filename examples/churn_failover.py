"""Surviving churn: failures, flash crowds, and self-healing slack widening.

A walkthrough of the scenario engine and the unified session API:

1. build a scenario population — an arity-4 fat tree where every pod gets
   a 5-switch backup chain (4 hops longer than the fabric paths, so the
   default footprint slack of 2 prunes it away) and a DPI middlebox —
   plus a seeded 60-event churn stream,
2. open the live session (``MerlinCompiler.session()``) after one full
   compile, and apply a hand-built failure: when a pod loses a fabric
   path, the slack-2 pruned component model turns infeasible, and the
   provisioner widens the slack geometrically (2 -> 4) until the backup
   chain is admitted — visible in ``CompilationStatistics``, not as an
   error,
3. roll the whole experiment back with an explicit checkpoint, showing
   session state is transactional at any granularity,
4. replay the full generated stream with the scenario driver, which also
   runs the fluid simulator in lockstep after every event and finally
   proves the surviving session identical to a fresh compile.

Run with:  PYTHONPATH=src python examples/churn_failover.py
"""

from repro import Bandwidth, MerlinCompiler, PolicyDelta, RateUpdate, TopologyDelta
from repro.scenarios import ScenarioConfig, generate_scenario, replay


def main() -> None:
    config = ScenarioConfig(seed=1, events=60)
    scenario = generate_scenario(config)
    population = scenario.population

    print(f"population: fat-tree k={config.arity}, "
          f"{len(population.base_rates_mbps)} guaranteed pairs, "
          f"{len(population.pods)} pods with backup chains + middleboxes")

    # -- 1+2: one compile, then a failure applied to the live session -----
    compiler = MerlinCompiler(
        topology=population.topology,
        placements=population.placements,
        overlap="trust",
        add_catch_all=False,
        generate_code=False,
    )
    compiler.compile(population.policy)

    with compiler.session() as session:
        token = session.checkpoint()

        pod = population.pods[0]
        # A flash crowd: both of pod 0's base pairs renegotiate up to
        # 225 Mbps (450 Mbps total — more than one 400 Mbps fabric path).
        session.apply(
            PolicyDelta(
                update_rates=tuple(
                    RateUpdate(identifier, guarantee=Bandwidth.mbps(225))
                    for identifier in pod.statement_ids
                )
            )
        )
        # Now kill one of the pod's two aggregation switches: the pairs no
        # longer fit the single surviving fabric path, so the slack-2
        # model is infeasible — and the session heals itself by widening
        # the slack until the backup chain is admitted.
        result = session.apply(
            TopologyDelta(fail_nodes=(pod.aggregation[0],))
        )
        statistics = result.statistics
        print(f"\nfailed {pod.aggregation[0]}: "
              f"slack_retries={statistics.slack_retries}, "
              f"widened to slack={statistics.footprint_slack_used}")
        for identifier in pod.statement_ids:
            path = result.paths[identifier].path
            via = "backup chain" if any(
                location in pod.chain for location in path
            ) else "fabric"
            print(f"  {identifier}: {' -> '.join(path)}  [{via}]")

        # -- 3: abandon the hand-built experiment ------------------------
        session.rollback(token)
        print(f"\nrolled back: failed_nodes={sorted(session.failed_nodes)}")

    # -- 4: replay the generated stream in simulator lockstep -------------
    print(f"\nreplaying the {config.events}-event seeded stream "
          f"(seed={config.seed}) ...")
    report = replay(scenario)
    print(report.summary())


if __name__ == "__main__":
    main()
