"""Shared fixtures for the Merlin reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.parser import parse_policy
from repro.topology.generators import (
    dumbbell,
    fat_tree,
    figure2_example,
    linear,
    single_switch,
    stanford_campus,
)
from repro.units import Bandwidth

#: The running example of §2 (FTP data/control capped, HTTP guaranteed).
RUNNING_EXAMPLE_SOURCE = """
[ x : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 20) -> .* dpi .* ;
  y : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 21) -> .* ;
  z : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 80) -> .* dpi .* nat .* ],
max(x + y, 50MB/s) and min(z, 100MB/s)
"""

#: The delegation example of §4.1 — the original policy...
DELEGATION_ORIGINAL_SOURCE = """
[ x : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2) -> .* ],
max(x, 100MB/s)
"""

#: ... and its tenant refinement.
DELEGATION_REFINED_SOURCE = """
[ x : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2 and tcp.dst = 80) -> .* log .* ;
  y : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2 and tcp.dst = 22) -> .* ;
  z : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2 and
       !(tcp.dst = 22 or tcp.dst = 80)) -> .* dpi .* ],
max(x, 50MB/s) and max(y, 25MB/s) and max(z, 25MB/s)
"""


@pytest.fixture
def figure2_topology():
    """The Figure 2 network with 2 Gbps links (so the running example fits)."""
    return figure2_example(capacity=Bandwidth.gbps(2))


@pytest.fixture
def figure2_placements():
    """DPI can run at h1, h2, or m1; NAT only at m1 (as in Figure 2)."""
    return {"dpi": ["h1", "h2", "m1"], "nat": ["m1"], "log": ["m1"]}


@pytest.fixture
def running_example_policy(figure2_topology):
    return parse_policy(RUNNING_EXAMPLE_SOURCE, topology=figure2_topology)


@pytest.fixture
def dumbbell_topology():
    """The Figure 3 network (two disjoint paths of different capacity)."""
    return dumbbell()


@pytest.fixture
def small_fat_tree():
    return fat_tree(4)


@pytest.fixture
def stanford_topology():
    return stanford_campus()


@pytest.fixture
def tiny_topology():
    """One switch, four hosts — the smallest useful network."""
    return single_switch(4)


@pytest.fixture
def linear_topology():
    """Three switches in a row, one host each."""
    return linear(3, hosts_per_switch=1)
