"""Tests for the topology graph, generators, traffic enumeration, and serialisation."""

import json

import pytest

from repro.errors import TopologyError
from repro.topology import (
    NodeKind,
    Topology,
    all_pairs_traffic,
    balanced_tree,
    dumbbell,
    fat_tree,
    from_json,
    linear,
    select_guaranteed,
    single_switch,
    stanford_campus,
    to_dot,
    to_json,
    topology_zoo_ensemble,
    topology_zoo_like,
)
from repro.topology.generators import figure2_example
from repro.topology.traffic import count_traffic_classes
from repro.units import Bandwidth


class TestTopologyGraph:
    def test_add_and_query_nodes(self):
        topo = Topology()
        topo.add_switch("s1")
        topo.add_host("h1", attached_switch="s1")
        topo.add_middlebox("m1", attached_switch="s1")
        assert topo.num_switches() == 1
        assert topo.num_hosts() == 1
        assert topo.node("m1").is_middlebox
        assert set(topo.locations()) == {"s1", "h1", "m1"}

    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_switch("s1")
        with pytest.raises(TopologyError):
            topo.add_switch("s1")

    def test_link_requires_existing_nodes(self):
        topo = Topology()
        topo.add_switch("s1")
        with pytest.raises(TopologyError):
            topo.add_link("s1", "s2")

    def test_self_loop_rejected(self):
        topo = Topology()
        topo.add_switch("s1")
        with pytest.raises(TopologyError):
            topo.add_link("s1", "s1")

    def test_capacity_lookup(self):
        topo = Topology()
        topo.add_switch("s1")
        topo.add_switch("s2")
        topo.add_link("s1", "s2", Bandwidth.mbps(100))
        assert topo.capacity("s1", "s2") == Bandwidth.mbps(100)
        assert topo.capacity("s2", "s1") == Bandwidth.mbps(100)

    def test_missing_link_raises(self):
        topo = single_switch(2)
        with pytest.raises(TopologyError):
            topo.link("h1", "h2")

    def test_auto_assigned_addresses_are_unique(self):
        topo = single_switch(10)
        macs = [host.mac for host in topo.hosts()]
        ips = [host.ip for host in topo.hosts()]
        assert len(set(macs)) == len(macs)
        assert len(set(ips)) == len(ips)

    def test_host_by_mac(self):
        topo = single_switch(3)
        mac = topo.node("h2").mac
        assert topo.host_by_mac(mac).name == "h2"
        assert topo.host_by_mac("ff:ff:ff:ff:ff:ff") is None

    def test_attachment_switch(self):
        topo = figure2_example()
        assert topo.attachment_switch("h1") == "s1"
        assert topo.attachment_switch("m1") == "s1"
        lonely = Topology()
        lonely.add_host("h1")
        with pytest.raises(TopologyError):
            lonely.attachment_switch("h1")

    def test_hosts_on_switch(self):
        topo = figure2_example()
        assert topo.hosts_on_switch("s1") == ["h1"]
        assert topo.hosts_on_switch("s2") == ["h2"]

    def test_switch_subgraph_excludes_hosts(self):
        topo = fat_tree(4)
        switches_only = topo.switch_subgraph()
        assert switches_only.num_hosts() == 0
        assert switches_only.num_switches() == topo.num_switches()

    def test_shortest_path(self):
        topo = linear(3)
        path = topo.shortest_path("h1", "h3")
        assert path[0] == "h1" and path[-1] == "h3"
        assert "s2" in path

    def test_no_path_raises(self):
        topo = Topology()
        topo.add_switch("s1")
        topo.add_switch("s2")
        with pytest.raises(TopologyError):
            topo.shortest_path("s1", "s2")

    def test_is_connected(self):
        assert fat_tree(4).is_connected()
        disconnected = Topology()
        disconnected.add_switch("s1")
        disconnected.add_switch("s2")
        assert not disconnected.is_connected()


class TestGenerators:
    def test_single_switch(self):
        topo = single_switch(4)
        assert topo.num_hosts() == 4
        assert topo.num_switches() == 1
        assert topo.is_connected()

    def test_linear(self):
        topo = linear(4, hosts_per_switch=2)
        assert topo.num_switches() == 4
        assert topo.num_hosts() == 8
        assert topo.is_connected()

    def test_figure2(self):
        topo = figure2_example()
        assert set(topo.locations()) == {"h1", "h2", "m1", "s1", "s2"}
        assert topo.has_link("s1", "s2")

    def test_dumbbell_capacities(self):
        topo = dumbbell()
        assert topo.capacity("h1", "sa1") == Bandwidth.mb_per_sec(400)
        assert topo.capacity("h1", "sb1") == Bandwidth.mb_per_sec(100)

    def test_fat_tree_counts(self):
        # A k-ary fat tree has 5k^2/4 switches and k^3/4 hosts.
        for k in (4, 6):
            topo = fat_tree(k)
            assert topo.num_switches() == 5 * k * k // 4
            assert topo.num_hosts() == k**3 // 4
            assert topo.is_connected()

    def test_fat_tree_odd_k_rejected(self):
        with pytest.raises(ValueError):
            fat_tree(3)

    def test_balanced_tree_counts(self):
        topo = balanced_tree(depth=2, fanout=3, hosts_per_leaf=2)
        assert topo.num_switches() == 1 + 3 + 9
        assert topo.num_hosts() == 9 * 2
        assert topo.is_connected()

    def test_stanford_campus_shape(self):
        topo = stanford_campus()
        assert topo.num_switches() == 16
        assert topo.num_hosts() == 24
        assert topo.is_connected()

    def test_topology_zoo_like_connected(self):
        for seed in range(3):
            topo = topology_zoo_like(30, seed=seed)
            assert topo.is_connected()
            assert topo.num_switches() == 30

    def test_topology_zoo_ensemble_statistics(self):
        sizes = [t.num_switches() for t in topology_zoo_ensemble(count=40, seed=7)]
        assert len(sizes) == 40
        assert max(sizes) == 754  # the forced outlier of Figure 6
        assert min(sizes) >= 4


class TestTraffic:
    def test_all_pairs_count(self):
        topo = single_switch(5)
        classes = all_pairs_traffic(topo)
        assert len(classes) == 5 * 4
        assert count_traffic_classes(topo) == 20

    def test_select_guaranteed_fraction(self):
        topo = single_switch(10)
        classes = all_pairs_traffic(topo)
        selected = select_guaranteed(classes, 0.1, Bandwidth.mbps(1), seed=3)
        guaranteed = [c for c in selected if c.is_guaranteed]
        assert len(guaranteed) == round(0.1 * len(classes))
        assert all(c.guarantee == Bandwidth.mbps(1) for c in guaranteed)
        assert len(selected) == len(classes)

    def test_select_guaranteed_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            select_guaranteed([], 1.5, Bandwidth.mbps(1))

    def test_identifier_format(self):
        topo = single_switch(2)
        classes = all_pairs_traffic(topo)
        assert classes[0].identifier().startswith("tc_")


class TestSerialisation:
    def test_json_round_trip(self):
        topo = figure2_example()
        restored = from_json(to_json(topo))
        assert set(restored.locations()) == set(topo.locations())
        assert restored.num_links() == topo.num_links()
        assert restored.capacity("s1", "s2") == topo.capacity("s1", "s2")
        assert restored.node("h1").mac == topo.node("h1").mac

    def test_from_json_accepts_dict(self):
        topo = single_switch(2)
        payload = json.loads(to_json(topo))
        assert from_json(payload).num_hosts() == 2

    def test_malformed_json_rejected(self):
        with pytest.raises(TopologyError):
            from_json({"nodes": [{"name": "x"}]})

    def test_dot_output_mentions_every_node(self):
        topo = figure2_example()
        dot = to_dot(topo)
        for name in topo.locations():
            assert name in dot
        assert dot.startswith("graph")
