"""Tests for the flow-level simulator: fair sharing, the engine, routing
through compiled policies, and the application models."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.core import compile_policy
from repro.packet import make_packet
from repro.simulator import (
    Flow,
    FlowSimulator,
    SimulationNetwork,
    allocate_rates,
    constant_bit_rate_flow,
    elastic_flow,
)
from repro.simulator.fairshare import link_utilisation
from repro.simulator.flows import path_links
from repro.simulator.apps import HadoopJob, RingPaxosExperiment, RingPaxosService
from repro.simulator.apps.hadoop import udp_interference
from repro.topology.generators import figure2_example, linear, single_switch
from repro.units import Bandwidth

GBPS = 1e9


def _link_caps(*pairs, capacity=GBPS):
    return {tuple(sorted(pair)): capacity for pair in pairs}


class TestFairShare:
    def test_single_flow_gets_link_capacity(self):
        flow = Flow("f", ("h1", "s1", "h2"))
        caps = _link_caps(("h1", "s1"), ("s1", "h2"))
        rates = allocate_rates([flow], caps)
        assert rates["f"] == pytest.approx(GBPS)

    def test_equal_split_on_shared_link(self):
        flows = [Flow(f"f{i}", ("h1", "s1", "h2")) for i in range(4)]
        caps = _link_caps(("h1", "s1"), ("s1", "h2"))
        rates = allocate_rates(flows, caps)
        for flow in flows:
            assert rates[flow.flow_id] == pytest.approx(GBPS / 4, rel=1e-3)

    def test_demand_limited_flow_releases_capacity(self):
        small = Flow("small", ("h1", "s1", "h2"), demand_bps=100e6)
        big = Flow("big", ("h1", "s1", "h2"))
        rates = allocate_rates([small, big], _link_caps(("h1", "s1"), ("s1", "h2")))
        assert rates["small"] == pytest.approx(100e6, rel=1e-3)
        assert rates["big"] == pytest.approx(900e6, rel=1e-3)

    def test_guarantee_protects_flow(self):
        protected = Flow("protected", ("h1", "s1", "h2"), guarantee_bps=800e6)
        other = [Flow(f"o{i}", ("h1", "s1", "h2")) for i in range(4)]
        rates = allocate_rates([protected, *other], _link_caps(("h1", "s1"), ("s1", "h2")))
        assert rates["protected"] >= 800e6 - 1e3

    def test_unused_guarantee_is_work_conserving(self):
        idle = Flow("idle", ("h1", "s1", "h2"), guarantee_bps=800e6, demand_bps=0.0)
        busy = Flow("busy", ("h1", "s1", "h2"))
        rates = allocate_rates([idle, busy], _link_caps(("h1", "s1"), ("s1", "h2")))
        assert rates["busy"] == pytest.approx(GBPS, rel=1e-3)

    def test_cap_enforced(self):
        capped = Flow("capped", ("h1", "s1", "h2"), cap_bps=200e6)
        rates = allocate_rates([capped], _link_caps(("h1", "s1"), ("s1", "h2")))
        assert rates["capped"] == pytest.approx(200e6, rel=1e-3)

    def test_unresponsive_flows_take_their_demand_first(self):
        udp = Flow("udp", ("h1", "s1", "h2"), demand_bps=800e6, responsive=False)
        tcp = Flow("tcp", ("h1", "s1", "h2"))
        rates = allocate_rates([udp, tcp], _link_caps(("h1", "s1"), ("s1", "h2")))
        assert rates["udp"] == pytest.approx(800e6, rel=1e-3)
        assert rates["tcp"] == pytest.approx(200e6, rel=1e-3)

    def test_oversubscribed_guarantees_rejected(self):
        flows = [
            Flow("a", ("h1", "s1", "h2"), guarantee_bps=700e6),
            Flow("b", ("h1", "s1", "h2"), guarantee_bps=700e6),
        ]
        with pytest.raises(SimulationError):
            allocate_rates(flows, _link_caps(("h1", "s1"), ("s1", "h2")))

    def test_unknown_link_rejected(self):
        with pytest.raises(SimulationError):
            allocate_rates([Flow("f", ("h1", "sX", "h2"))], _link_caps(("h1", "s1")))

    def test_bottleneck_on_different_links(self):
        # f1 crosses a 100 Mbps link; f2 only the 1 Gbps link they share.
        caps = {("a", "b"): GBPS, ("b", "c"): 100e6}
        f1 = Flow("f1", ("a", "b", "c"))
        f2 = Flow("f2", ("a", "b"))
        rates = allocate_rates([f1, f2], caps)
        assert rates["f1"] == pytest.approx(100e6, rel=1e-3)
        assert rates["f2"] == pytest.approx(GBPS - 100e6, rel=1e-3)

    def test_link_utilisation_reporting(self):
        flow = Flow("f", ("h1", "s1", "h2"), demand_bps=500e6)
        caps = _link_caps(("h1", "s1"), ("s1", "h2"))
        rates = allocate_rates([flow], caps)
        utilisation = link_utilisation([flow], rates, caps)
        assert utilisation[("h1", "s1")] == pytest.approx(0.5, rel=1e-3)

    # -- properties ------------------------------------------------------------

    @settings(max_examples=60, deadline=None)
    @given(
        demands=st.lists(
            st.floats(min_value=1e6, max_value=2e9), min_size=1, max_size=6
        ),
        guarantees=st.lists(
            st.floats(min_value=0, max_value=1.5e8), min_size=1, max_size=6
        ),
    )
    def test_invariants_on_shared_link(self, demands, guarantees):
        size = min(len(demands), len(guarantees))
        flows = [
            Flow(
                f"f{i}",
                ("h1", "s1", "h2"),
                demand_bps=demands[i],
                guarantee_bps=guarantees[i],
            )
            for i in range(size)
        ]
        caps = _link_caps(("h1", "s1"), ("s1", "h2"))
        rates = allocate_rates(flows, caps)
        total = sum(rates.values())
        # Capacity is never exceeded.
        assert total <= GBPS + 1.0
        for flow in flows:
            # No flow exceeds its demand...
            assert rates[flow.flow_id] <= flow.demand_bps + 1.0
            # ...and every flow receives min(guarantee, demand).
            assert rates[flow.flow_id] >= min(flow.guarantee_bps, flow.demand_bps) - 1.0
        # Work conservation: if someone still wants more, the link is (almost) full.
        if any(rates[f.flow_id] < f.demand_bps - 1.0 for f in flows):
            assert total == pytest.approx(GBPS, rel=1e-3)


class TestEngine:
    def test_transfer_completion_time(self):
        network = SimulationNetwork(single_switch(2))
        simulator = FlowSimulator(network)
        simulator.add_flow(elastic_flow(network, "t", "h1", "h2", size_bytes=125e6))
        simulator.run_until(100.0)
        stats = {s.flow_id: s for s in simulator.stats()}
        # 125 MB over 1 Gbps = 1 second.
        assert stats["t"].completion_time == pytest.approx(1.0, rel=1e-2)

    def test_two_transfers_share_then_speed_up(self):
        network = SimulationNetwork(single_switch(3))
        simulator = FlowSimulator(network)
        simulator.add_flow(elastic_flow(network, "a", "h1", "h3", size_bytes=125e6))
        simulator.add_flow(elastic_flow(network, "b", "h2", "h3", size_bytes=62.5e6))
        simulator.run_until(100.0)
        stats = {s.flow_id: s for s in simulator.stats()}
        # Both share h3's 1 Gbps link; b finishes first, then a speeds up.
        assert stats["b"].completion_time == pytest.approx(1.0, rel=0.05)
        assert stats["a"].completion_time == pytest.approx(1.5, rel=0.05)

    def test_scheduled_events_fire(self):
        network = SimulationNetwork(single_switch(2))
        simulator = FlowSimulator(network)
        simulator.schedule(
            1.0,
            lambda sim: sim.add_flow(
                elastic_flow(network, "late", "h1", "h2", size_bytes=125e6, start_time=1.0)
            ),
        )
        simulator.run_until(10.0)
        stats = {s.flow_id: s for s in simulator.stats()}
        assert stats["late"].completion_time == pytest.approx(2.0, rel=0.05)

    def test_run_interval_trace(self):
        network = SimulationNetwork(single_switch(2))
        simulator = FlowSimulator(network)
        simulator.add_flow(
            constant_bit_rate_flow(network, "udp", "h1", "h2", rate_bps=300e6)
        )
        trace = simulator.run_interval(duration=5.0, timestep=1.0)
        assert len(trace.times) == 5
        assert trace.series("udp")[0] == pytest.approx(300.0, rel=1e-3)
        assert trace.mean_throughput("udp") == pytest.approx(300.0, rel=1e-3)

    def test_remove_flow(self):
        network = SimulationNetwork(single_switch(2))
        simulator = FlowSimulator(network)
        simulator.add_flow(
            constant_bit_rate_flow(network, "udp", "h1", "h2", rate_bps=300e6)
        )
        simulator.run_interval(duration=1.0)
        simulator.remove_flow("udp")
        assert simulator.active_flows() == []
        assert simulator.completed_flows()[0].flow_id == "udp"

    def test_duplicate_flow_rejected(self):
        network = SimulationNetwork(single_switch(2))
        simulator = FlowSimulator(network)
        simulator.add_flow(elastic_flow(network, "x", "h1", "h2", size_bytes=1e6))
        with pytest.raises(SimulationError):
            simulator.add_flow(elastic_flow(network, "x", "h2", "h1", size_bytes=1e6))

    def test_path_links_helper(self):
        assert path_links(["h1", "s1", "s1", "h2"]) == [("h1", "s1"), ("h2", "s1")]


class TestNetworkBinding:
    def test_routes_follow_compiled_paths(self, figure2_topology, figure2_placements):
        from tests.conftest import RUNNING_EXAMPLE_SOURCE

        compiled = compile_policy(
            RUNNING_EXAMPLE_SOURCE, figure2_topology, figure2_placements
        )
        network = SimulationNetwork(figure2_topology, compiled)
        packet = make_packet(
            eth_src="00:00:00:00:00:01", eth_dst="00:00:00:00:00:02",
            ip_proto="tcp", tcp_dst=80,
        )
        statement = network.classify(packet)
        assert statement == "z"
        path = network.route("h1", "h2", statement)
        assert path == compiled.paths["z"].path
        guarantee, cap = network.rate_limits(statement)
        assert guarantee == pytest.approx(Bandwidth.mb_per_sec(100).bps_value)
        assert math.isinf(cap)

    def test_uncompiled_network_uses_shortest_path(self):
        network = SimulationNetwork(linear(3))
        path = network.route("h1", "h3")
        assert path[0] == "h1" and path[-1] == "h3"

    def test_flow_inherits_cap(self, figure2_topology, figure2_placements):
        from tests.conftest import RUNNING_EXAMPLE_SOURCE

        compiled = compile_policy(
            RUNNING_EXAMPLE_SOURCE, figure2_topology, figure2_placements
        )
        network = SimulationNetwork(figure2_topology, compiled)
        packet = make_packet(
            eth_src="00:00:00:00:00:01", eth_dst="00:00:00:00:00:02",
            ip_proto="tcp", tcp_dst=21,
        )
        flow = network.build_flow("ftp", "h1", "h2", packet=packet)
        assert flow.cap_bps == pytest.approx(Bandwidth.mb_per_sec(25).bps_value)


class TestApplications:
    def test_hadoop_interference_and_guarantee_shape(self):
        topology = single_switch(6)
        plain = SimulationNetwork(topology)
        job = HadoopJob(workers=["h1", "h2", "h3", "h4"], data_bytes=10e9,
                        compute_seconds=400.0)
        baseline = job.run(plain)

        background = udp_interference(
            plain, [("h5", "h1"), ("h6", "h2")], Bandwidth.mbps(800)
        )
        interfered = job.run(plain, background_flows=background)

        # Merlin policy guaranteeing 150 Mbps to every worker pair's shuffle flow.
        statements, clauses = [], []
        index = 0
        for src in ["h1", "h2", "h3", "h4"]:
            for dst in ["h1", "h2", "h3", "h4"]:
                if src == dst:
                    continue
                index += 1
                statements.append(
                    f"hd{index} : (eth.src = {topology.node(src).mac} and "
                    f"eth.dst = {topology.node(dst).mac} and tcp.dst = 50010) -> .*"
                )
                clauses.append(f"min(hd{index}, 150Mbps)")
        policy = "[ " + " ; ".join(statements) + " ], " + " and ".join(clauses)
        compiled = compile_policy(policy, topology, {}, overlap="trust")
        protected = SimulationNetwork(topology, compiled)
        guaranteed = job.run(
            protected,
            background_flows=udp_interference(
                protected, [("h5", "h1"), ("h6", "h2")], Bandwidth.mbps(800)
            ),
        )

        # Shape of §6.2: interference slows the job noticeably; the guarantee
        # recovers most of the loss.
        assert interfered.completion_seconds > baseline.completion_seconds * 1.1
        assert guaranteed.completion_seconds < interfered.completion_seconds
        assert guaranteed.completion_seconds < baseline.completion_seconds * 1.15

    def test_ring_paxos_guarantee_protects_service2(self):
        topology = single_switch(3)
        shared = SimulationNetwork(topology)
        service1 = RingPaxosService("ring1", "h1", "h3")
        service2 = RingPaxosService("ring2", "h2", "h3")
        experiment = RingPaxosExperiment(shared, service1, service2)
        saturated = experiment.throughput_at(60, 60)
        # Without Merlin both services get a similar share of the bottleneck.
        assert saturated["ring1"] == pytest.approx(saturated["ring2"], rel=0.1)

        policy = (
            f"[ r2 : (eth.src = {topology.node('h2').mac} and "
            f"eth.dst = {topology.node('h3').mac} and tcp.dst = 8600) -> .* ],"
            "min(r2, 700Mbps)"
        )
        compiled = compile_policy(policy, topology, {})
        protected = SimulationNetwork(topology, compiled)
        experiment2 = RingPaxosExperiment(protected, service1, service2)
        shielded = experiment2.throughput_at(60, 60)
        assert shielded["ring2"] > saturated["ring2"] * 1.3
        # Work conservation: when service 2 idles, service 1 reclaims the link.
        idle2 = experiment2.throughput_at(60, 0)
        assert idle2["ring1"] > shielded["ring1"] * 1.5
