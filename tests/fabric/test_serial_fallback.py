"""A broken pool degrades to serial solves, never to an executor error.

``solve_partition_models`` has two layers of containment: the fabric's own
respawn-then-serial handling (``test_pool.py``), and a belt-and-braces
catch around the whole ``fabric.solve`` call for pools that break during
submission.  This test drives the second layer through a real compile with
a fabric stub whose ``solve`` always raises ``BrokenProcessPool`` — the
compile must still succeed, with the same allocations as an in-process
compile.
"""

from concurrent.futures.process import BrokenProcessPool

from repro.core.compiler import MerlinCompiler
from repro.core.options import ProvisionOptions
from repro.experiments.reprovisioning import pod_tenant_scenario
from repro.incremental.solve import solve_partition_models


class AlwaysBrokenFabric:
    def __init__(self):
        self.calls = 0

    def solve(self, payloads, estimates=None, task=None):
        self.calls += 1
        raise BrokenProcessPool("every worker died")


def _compile(scenario, fabric):
    compiler = MerlinCompiler(
        topology=scenario.topology,
        overlap="trust",
        add_catch_all=False,
        generate_code=False,
        options=ProvisionOptions(fabric=fabric),
    )
    return compiler.compile(scenario.policy)


def test_compile_survives_a_pool_that_breaks_on_submission():
    scenario = pod_tenant_scenario(arity=4, pairs_per_pod=2)
    fabric = AlwaysBrokenFabric()
    broken = _compile(scenario, fabric)
    assert fabric.calls > 0  # the fabric really was asked first
    clean = _compile(scenario, None)
    assert {k: v.bps_value for k, v in broken.link_reservations.items()} == {
        k: v.bps_value for k, v in clean.link_reservations.items()
    }
    assert {k: p.path for k, p in broken.paths.items()} == {
        k: p.path for k, p in clean.paths.items()
    }


def test_solve_partition_models_reports_the_fallback(monkeypatch):
    from repro import telemetry

    seen = []
    original = telemetry.counter

    def spy(name, amount=1.0, **labels):
        seen.append(name)
        return original(name, amount, **labels)

    monkeypatch.setattr(telemetry, "counter", spy)
    scenario = pod_tenant_scenario(arity=4, pairs_per_pod=2)
    _compile(scenario, AlwaysBrokenFabric())
    assert "fabric_serial_fallbacks" in seen
