"""Control-plane ownership of the solve fabric and component cache.

The plane injects its fabric/cache into every group's compiler options
(unless the group set its own), so cache traffic shows up both in the
cache's counters and — via the plane's telemetry bundle — in
``plane.metrics()``; a plane-created fabric (``fabric_workers=...``) is
reaped by ``plane.shutdown()``.
"""

import asyncio

from repro.core.ast import Statement
from repro.core.options import ProvisionOptions
from repro.fabric import ComponentSolutionCache, SolveFabric
from repro.incremental import DeltaStatement, PolicyDelta
from repro.predicates.ast import FieldTest, pred_and
from repro.regex.parser import parse_path_expression
from repro.service import ControlPlane
from repro.topology.generators import figure2_example
from repro.units import Bandwidth

SOURCE = """
[ x : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 20) -> .* dpi .* ;
  z : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 80) -> .* dpi .* ],
min(x, 25MB/s) and min(z, 50MB/s)
"""
PLACEMENTS = {"dpi": ("h1", "h2", "m1"), "nat": ("m1",)}


def _upper(payload):
    return payload.upper()


def _add(identifier, port, guarantee=Bandwidth.mb_per_sec(5)):
    statement = Statement(
        identifier,
        pred_and(
            FieldTest("eth.src", "00:00:00:00:00:01"),
            pred_and(
                FieldTest("eth.dst", "00:00:00:00:00:02"),
                FieldTest("tcp.dst", port),
            ),
        ),
        parse_path_expression(".* dpi .*"),
    )
    return PolicyDelta(add=(DeltaStatement(statement, guarantee=guarantee),))


async def _open(plane, name="g", **overrides):
    return await plane.open_group(
        name,
        SOURCE,
        topology=figure2_example(capacity=Bandwidth.gbps(2)),
        placements=PLACEMENTS,
        overlap="trust",
        add_catch_all=False,
        generate_code=False,
        **overrides,
    )


def test_plane_cache_is_injected_and_counted_in_metrics():
    cache = ComponentSolutionCache()

    async def run():
        plane = ControlPlane(component_cache=cache)
        await _open(plane)
        ticket = plane.submit("g", _add("w", 443))
        plane.start()
        await ticket.result()
        await plane.shutdown()
        return plane.metrics()

    metrics = asyncio.run(run())
    # The group compile(s) consulted and populated the plane-level cache...
    assert cache.misses > 0 and cache.stores > 0
    # ...and the hit/miss/store counters are queryable on the plane.
    assert metrics.counter_total("component_signature_misses") == cache.misses
    assert metrics.counter_total("component_signature_stores") == cache.stores


def test_group_options_beat_the_plane_defaults():
    plane_cache = ComponentSolutionCache()
    group_cache = ComponentSolutionCache()

    async def run():
        plane = ControlPlane(component_cache=plane_cache)
        await _open(
            plane, options=ProvisionOptions(component_cache=group_cache)
        )
        await plane.shutdown()

    asyncio.run(run())
    assert group_cache.misses > 0  # the group's own cache saw the traffic
    assert plane_cache.misses == 0 and plane_cache.stores == 0


def test_plane_owned_fabric_is_reaped_on_shutdown():
    async def run():
        plane = ControlPlane(fabric_workers=2)
        fabric = plane._fabric
        assert isinstance(fabric, SolveFabric)
        await _open(plane)
        await plane.shutdown()
        return fabric

    fabric = asyncio.run(run())
    assert fabric._executor is None  # workers reaped with the plane


def test_caller_supplied_fabric_is_left_running():
    fabric = SolveFabric(max_workers=2)

    async def run():
        plane = ControlPlane(fabric=fabric)
        await _open(plane)
        await plane.shutdown()

    asyncio.run(run())
    # The plane does not own it, so shutdown() must not reap it; the owner
    # (this test) does — and it still works after the plane is gone.
    assert fabric.solve(["a", "b"], task=_upper) == ["A", "B"]
    fabric.shutdown()
