"""Canonical component signatures: what must collide, what must not.

The signature is the cache key, so these tests pin its equivalence class
directly at the :func:`canonicalize_component` level with minimal stand-in
components: renamed tenants, permuted statements, and re-ordered footprints
hash equal; changed capacities, guarantees, slack rungs, or backend limits
hash distinct.  (``test_component_cache.py`` proves the same invariances
end-to-end through real compiles.)
"""

from types import SimpleNamespace

from repro.core.provisioning import PathSelectionHeuristic
from repro.fabric import backend_fingerprint, canonicalize_component
from repro.lp.backends import create_backend
from repro.units import Bandwidth

HEURISTIC = PathSelectionHeuristic.MIN_MAX_RATIO


def _logical(*links, source="A", destination="B"):
    return SimpleNamespace(
        source_location=source,
        destination_location=destination,
        edges=[
            SimpleNamespace(
                source=(index,),
                target=(index + 1,),
                location=link[0],
                physical_link=link,
            )
            for index, link in enumerate(links)
        ],
    )


def _rates(guarantee_mbps=50.0, cap_mbps=None):
    return SimpleNamespace(
        guarantee=Bandwidth.mbps(guarantee_mbps),
        cap=Bandwidth.mbps(cap_mbps) if cap_mbps is not None else None,
    )


LINKS = (("s1", "s2"), ("s2", "s3"))
CAPACITY = {("s1", "s2"): 1000.0, ("s2", "s3"): 1000.0}


def _component(
    ids=("alice", "bob"),
    links=LINKS,
    capacity=CAPACITY,
    guarantees=(50.0, 80.0),
    slacks=(2, 2),
    solver=None,
):
    spec = SimpleNamespace(statement_ids=tuple(ids), links=tuple(links))
    tightened = {
        ids[0]: _logical(("s1", "s2")),
        ids[1]: _logical(("s2", "s3"), source="C", destination="D"),
    }
    rates = {sid: _rates(guarantee) for sid, guarantee in zip(ids, guarantees)}
    return canonicalize_component(
        spec, tightened, rates, capacity, HEURISTIC, solver, slacks
    )


class TestInvariances:
    def test_tenant_renaming_is_invisible(self):
        original = _component(ids=("alice", "bob"))
        renamed = _component(ids=("zz_t0", "zz_t1"))
        assert original.signature == renamed.signature

    def test_statement_permutation_is_invisible(self):
        forward = _component(ids=("alice", "bob"))
        spec = SimpleNamespace(statement_ids=("bob", "alice"), links=LINKS)
        tightened = {
            "alice": _logical(("s1", "s2")),
            "bob": _logical(("s2", "s3"), source="C", destination="D"),
        }
        rates = {"alice": _rates(50.0), "bob": _rates(80.0)}
        backward = canonicalize_component(
            spec, tightened, rates, CAPACITY, HEURISTIC, None, (2, 2)
        )
        assert forward.signature == backward.signature
        # The re-addressing map still routes each canonical id to the member
        # with the same content on both sides.
        assert (
            forward.to_actual.keys() == backward.to_actual.keys()
        )

    def test_footprint_reordering_is_invisible(self):
        forward = _component(links=LINKS)
        backward = _component(links=tuple(reversed(LINKS)))
        assert forward.signature == backward.signature


class TestDistinctions:
    def test_capacity_changes_the_signature(self):
        thick = _component()
        thin = _component(
            capacity={("s1", "s2"): 1000.0, ("s2", "s3"): 100.0}
        )
        assert thick.signature != thin.signature

    def test_guarantee_changes_the_signature(self):
        small = _component(guarantees=(50.0, 80.0))
        large = _component(guarantees=(50.0, 90.0))
        assert small.signature != large.signature

    def test_slack_rung_changes_the_signature(self):
        tight = _component(slacks=(2, 2))
        widened = _component(slacks=(2, 4))
        assert tight.signature != widened.signature

    def test_backend_limits_change_the_signature(self):
        default = _component(solver=create_backend("bnb"))
        limited = _component(solver=create_backend("bnb", node_limit=5))
        assert default.signature != limited.signature

    def test_backend_name_changes_the_signature(self):
        scipy = _component(solver=None)  # defaults to the scipy backend
        bnb = _component(solver=create_backend("bnb"))
        assert scipy.signature != bnb.signature


class TestBackendFingerprint:
    def test_none_means_the_default_backend(self):
        assert backend_fingerprint(None) == backend_fingerprint(
            create_backend("scipy")
        )

    def test_limits_are_part_of_the_fingerprint(self):
        assert backend_fingerprint(create_backend("bnb")) != backend_fingerprint(
            create_backend("bnb", node_limit=5)
        )

    def test_unregistered_backends_never_collide_with_registered_ones(self):
        class Homemade:
            pass

        assert backend_fingerprint(Homemade()) != backend_fingerprint(None)


class TestMapping:
    def test_canonical_ids_are_dense_and_bidirectional(self):
        canon = _component(ids=("alice", "bob"))
        assert canon.canonical_ids == ("c0000", "c0001")
        assert sorted(canon.to_canonical) == ["alice", "bob"]
        for sid, cid in canon.to_canonical.items():
            assert canon.to_actual[cid] == sid
