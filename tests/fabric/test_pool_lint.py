"""Repo lint: every process pool is the solve fabric's pool.

A bare ``ProcessPoolExecutor(...)`` anywhere in ``src/repro`` outside
:mod:`repro.fabric` would reintroduce per-call worker spin-up — the exact
overhead the fabric exists to amortize — and would dodge its crash
containment and counters.  ``make check`` greps for the same pattern
(``lint-pool``); this test keeps the rule enforced under plain pytest too.
"""

from pathlib import Path

import repro

SRC = Path(repro.__file__).resolve().parent


def test_no_bare_process_pool_outside_fabric():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        relative = path.relative_to(SRC)
        if relative.parts[0] == "fabric":
            continue
        if "ProcessPoolExecutor(" in path.read_text(encoding="utf-8"):
            offenders.append(str(relative))
    assert not offenders, (
        "bare ProcessPoolExecutor construction found (route solves through "
        "repro.fabric.SolveFabric / shared_fabric): %s" % ", ".join(offenders)
    )
