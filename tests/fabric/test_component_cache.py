"""The content-addressed component cache, end to end through real compiles.

A fat tree with one tenant per pod makes the partition decomposition
produce link-disjoint MIP components (one per guaranteed host pair at
this scale), so the cache counters are exactly predictable: a cold
compile stores one record per component, a warm
compile of the *same content* — same tenant, renamed tenants, permuted
statements — hits every one of them, skips the model build entirely, and
still reproduces the cold compile's allocations byte for byte.
"""

import pytest

from repro.core.ast import BandwidthTerm, FMin, Policy, Statement, formula_and
from repro.core.compiler import MerlinCompiler
from repro.core.options import ProvisionOptions
from repro.experiments.reprovisioning import pod_tenant_scenario
from repro.fabric import ComponentSolutionCache


@pytest.fixture(scope="module")
def scenario():
    return pod_tenant_scenario(arity=4, pairs_per_pod=2)


def _compile(scenario, cache, policy=None, **option_overrides):
    options = ProvisionOptions(component_cache=cache, **option_overrides)
    compiler = MerlinCompiler(
        topology=scenario.topology,
        overlap="trust",
        add_catch_all=False,
        generate_code=False,
        options=options,
    )
    return compiler.compile(policy if policy is not None else scenario.policy)


def _renamed(scenario, prefix):
    """The same policy under a different tenant's identifiers."""
    statements = tuple(
        Statement(prefix + statement.identifier, statement.predicate, statement.path)
        for statement in scenario.policy.statements
    )
    clauses = [
        FMin(BandwidthTerm(identifiers=(statement.identifier,)), scenario.guarantee)
        for statement in statements
    ]
    return Policy(statements=statements, formula=formula_and(*clauses))


def _permuted(scenario):
    """The same policy with its statements written in reverse order."""
    statements = tuple(reversed(scenario.policy.statements))
    clauses = [
        FMin(BandwidthTerm(identifiers=(statement.identifier,)), scenario.guarantee)
        for statement in statements
    ]
    return Policy(statements=statements, formula=formula_and(*clauses))


def _reservations(result):
    return {key: value.bps_value for key, value in result.link_reservations.items()}


def _paths(result):
    return {key: assignment.path for key, assignment in result.paths.items()}


class TestHitsAndByteIdenticalAllocations:
    def test_warm_compile_hits_every_component_and_matches_exactly(self, scenario):
        cache = ComponentSolutionCache()
        cold = _compile(scenario, cache)
        stores = cache.stores
        assert stores == len(scenario.policy.statements)  # link-disjoint pairs
        assert cache.misses == stores and cache.hits == 0

        warm = _compile(scenario, cache)
        assert cache.hits == stores
        assert cache.stores == stores  # hits are not re-stored
        # Byte-identical, not approximately-equal: the stored record is the
        # cold solve's exact variable assignment.
        assert _reservations(warm) == _reservations(cold)
        assert _paths(warm) == _paths(cold)

    def test_renamed_tenants_hit_and_get_readdressed_allocations(self, scenario):
        cache = ComponentSolutionCache()
        cold = _compile(scenario, cache)
        renamed = _compile(scenario, cache, policy=_renamed(scenario, "zz_"))
        assert cache.hits == cache.stores
        assert _reservations(renamed) == _reservations(cold)
        assert {
            "zz_" + key: path for key, path in _paths(cold).items()
        } == _paths(renamed)

    def test_permuted_statements_hit(self, scenario):
        cache = ComponentSolutionCache()
        cold = _compile(scenario, cache)
        permuted = _compile(scenario, cache, policy=_permuted(scenario))
        assert cache.hits == cache.stores
        assert _reservations(permuted) == _reservations(cold)
        assert _paths(permuted) == _paths(cold)


class TestDistinctContentMisses:
    def test_different_backend_options_miss(self, scenario):
        cache = ComponentSolutionCache()
        _compile(scenario, cache)
        _compile(scenario, cache, solver="bnb")
        # The bnb-keyed lookups all missed and stored their own records.
        assert cache.hits == 0
        assert cache.misses == cache.stores
        assert cache.stores == 2 * len(scenario.policy.statements)

    def test_different_guarantees_miss(self, scenario):
        cache = ComponentSolutionCache()
        _compile(scenario, cache)
        other = pod_tenant_scenario(
            arity=4, pairs_per_pod=2, guarantee=scenario.guarantee * 1.5
        )
        _compile(other, cache)
        assert cache.hits == 0
        assert cache.misses == 2 * len(scenario.policy.statements)


class TestSpill:
    def test_spill_file_dedupes_across_cache_instances(self, scenario, tmp_path):
        spill = tmp_path / "components.jsonl"
        first = ComponentSolutionCache(spill_path=spill)
        cold = _compile(scenario, first)
        assert first.stores > 0 and spill.exists()

        second = ComponentSolutionCache(spill_path=spill)
        assert len(second) == first.stores  # replayed, not re-solved
        warm = _compile(scenario, second)
        assert second.hits == first.stores and second.stores == 0
        assert _reservations(warm) == _reservations(cold)

    def test_replay_tolerates_garbage_and_stale_versions(self, scenario, tmp_path):
        spill = tmp_path / "components.jsonl"
        first = ComponentSolutionCache(spill_path=spill)
        _compile(scenario, first)
        stored = first.stores
        with spill.open("a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('{"signature": "s", "record": {"version": "older-v0"}}\n')
            handle.write('{"signature": "t"}\n')
        second = ComponentSolutionCache(spill_path=spill)
        assert len(second) == stored  # the garbage and stale lines were skipped


class TestBounds:
    def test_lru_eviction_keeps_the_most_recent_entries(self):
        cache = ComponentSolutionCache(limit=2)
        cache.put("a", {"version": "v"})
        cache.put("b", {"version": "v"})
        assert cache.get("a") is not None  # refreshes "a" to most-recent
        cache.put("c", {"version": "v"})  # evicts "b", the LRU entry
        assert len(cache) == 2
        assert cache.get("b") is None
        assert cache.get("a") is not None and cache.get("c") is not None

    def test_rejects_nonsense_limits(self):
        with pytest.raises(ValueError):
            ComponentSolutionCache(limit=0)
