"""SolveFabric: pool persistence, crash containment, speculation.

The fabric's contract is behavioural — workers persist across ``solve``
calls, a dying pool degrades to correct serial answers rather than
``BrokenProcessPool``, and speculative duplicates only win when the exact
solve is not already done — so these tests drive it with small picklable
fake tasks instead of real MIP payloads.
"""

import os
import time

import pytest

from repro.fabric import SolveFabric, shared_fabric
from repro.lp.backends import backend_name

PARENT_PID = os.getpid()


def _double(payload):
    return payload * 2


def _crash_in_worker(payload):
    # Crash hard (no exception the pool could catch) — but only inside a
    # worker process, so the fabric's final in-process fallback succeeds.
    if os.getpid() != PARENT_PID:
        os._exit(1)
    return payload * 2


def _sleepy_exact(payload):
    _model, solver, _warm = payload
    if backend_name(solver) == "heuristic":
        return "heuristic"
    time.sleep(1.5)
    return "exact"


def _quick_exact(payload):
    _model, solver, _warm = payload
    if backend_name(solver) == "heuristic":
        time.sleep(5.0)
        return "heuristic"
    time.sleep(0.3)
    return "exact"


class TestInProcessFastPaths:
    def test_single_payload_never_spawns_workers(self):
        with SolveFabric(max_workers=4, task=_double) as fabric:
            assert fabric.solve([21]) == [42]
            assert fabric.spawned == 0

    def test_one_worker_fabric_solves_in_process(self):
        with SolveFabric(max_workers=1, task=_double) as fabric:
            assert fabric.solve([1, 2, 3]) == [2, 4, 6]
            assert fabric.spawned == 0

    def test_empty_batch(self):
        with SolveFabric(max_workers=2, task=_double) as fabric:
            assert fabric.solve([]) == []


class TestPersistence:
    def test_pool_is_reused_across_solve_calls(self):
        with SolveFabric(max_workers=2, task=_double) as fabric:
            first = fabric.solve([1, 2, 3], estimates=[3.0, 1.0, 2.0])
            second = fabric.solve([4, 5])
            third = fabric.solve([6, 7])
            assert first == [2, 4, 6]  # input order, despite dispatch order
            assert second == [8, 10]
            assert third == [12, 14]
            assert fabric.spawned == 1  # one pool served all three calls
            assert fabric.tasks == 7

    def test_shutdown_leaves_the_fabric_usable(self):
        fabric = SolveFabric(max_workers=2, task=_double)
        assert fabric.solve([1, 2]) == [2, 4]
        fabric.shutdown()
        assert fabric.solve([3, 4]) == [6, 8]  # lazily respawned
        assert fabric.spawned == 2
        fabric.shutdown()

    def test_ensure_workers_grows_but_never_shrinks(self):
        fabric = SolveFabric(max_workers=2, task=_double)
        fabric.ensure_workers(4)
        assert fabric.max_workers == 4
        fabric.ensure_workers(1)
        assert fabric.max_workers == 4
        fabric.shutdown()

    def test_shared_fabric_is_a_growing_singleton(self):
        first = shared_fabric(2)
        second = shared_fabric(3)
        assert first is second
        assert second.max_workers >= 3

    def test_rejects_nonsense_widths(self):
        with pytest.raises(ValueError):
            SolveFabric(max_workers=0)
        with pytest.raises(ValueError):
            SolveFabric(max_workers=2, max_respawns=-1)


class TestCrashContainment:
    def test_dying_pool_degrades_to_serial_answers(self):
        fabric = SolveFabric(max_workers=2, max_respawns=1, task=_crash_in_worker)
        try:
            # Workers exit on sight of a payload; the fabric respawns, gives
            # up, and finishes in-process — the caller still gets answers.
            assert fabric.solve([1, 2, 3]) == [2, 4, 6]
            assert fabric.respawns >= 1
            assert fabric.serial_fallbacks == 1
        finally:
            fabric.shutdown(wait=False)


class TestSpeculation:
    def test_stragglers_fall_back_to_the_heuristic_duplicate(self):
        fabric = SolveFabric(
            max_workers=2, speculate_after_seconds=0.05, task=_sleepy_exact
        )
        try:
            payloads = [("m1", None, None), ("m2", None, None)]
            results = fabric.solve(payloads)
            assert results == ["heuristic", "heuristic"]
            assert fabric.speculations == 2
            assert fabric.speculation_wins == 2
        finally:
            fabric.shutdown(wait=False)

    def test_finished_exact_solve_beats_the_unproven_duplicate(self):
        fabric = SolveFabric(
            max_workers=2, speculate_after_seconds=0.05, task=_quick_exact
        )
        try:
            payloads = [("m1", None, None), ("m2", None, None)]
            results = fabric.solve(payloads)
            # Both payloads missed the deadline (so duplicates launched),
            # but the exact solves finish long before the slow heuristic —
            # proof-aware preference takes them.
            assert results == ["exact", "exact"]
            assert fabric.speculations == 2
            assert fabric.speculation_wins == 0
        finally:
            fabric.shutdown(wait=False)
