"""Transactional recompile: rollback leaves the session byte-identical.

The acceptance property of the session transaction: for *any* delta
sequence with injected post-validation failures (infeasible solves,
code-generation errors), the rolled-back session compiles byte-identically
to a session that never saw the failed deltas — same paths, same rates,
same reservations, same generated instructions, same partition-cache
behavior.
"""

import random

import pytest

import repro.core.compiler as compiler_module
from repro.core import MerlinCompiler
from repro.core.localization import localize
from repro.codegen.generator import CodeGenerator
from repro.errors import ProvisioningError
from repro.experiments.reprovisioning import (
    _pair_predicate,
    pod_tenant_scenario,
    unconstrained_statement,
)
from repro.incremental import DeltaStatement, IncrementalProvisioner, PolicyDelta
from repro.units import Bandwidth

from test_equivalence_property import _RandomPolicyChurn


def _paths(result):
    return {identifier: p.path for identifier, p in result.paths.items()}


def _rates(result):
    return {
        identifier: (
            allocation.guarantee.bps_value if allocation.guarantee else None,
            allocation.cap.bps_value if allocation.cap else None,
        )
        for identifier, allocation in result.rates.items()
    }


def _reservations(result):
    return {key: value.bps_value for key, value in result.link_reservations.items()}


def _assert_byte_identical(left, right):
    """Full CompilationResult equivalence, exact floats included."""
    assert {s.identifier: s for s in left.policy.statements} == {
        s.identifier: s for s in right.policy.statements
    }
    assert _paths(left) == _paths(right)
    assert _rates(left) == _rates(right)
    assert _reservations(left) == _reservations(right)
    assert left.instructions == right.instructions


class _FlakyGenerator:
    """A CodeGenerator stand-in that fails on demand."""

    explode = False

    def __init__(self, topology):
        self._real = CodeGenerator(topology=topology)

    def generate(self, *args, **kwargs):
        if _FlakyGenerator.explode:
            raise RuntimeError("injected codegen failure")
        return self._real.generate(*args, **kwargs)


def _infeasible_statement(churn, index):
    """A statement whose guarantee exceeds every link's capacity: it passes
    static validation (a path exists) but the component solve is
    infeasible."""
    scenario = churn.scenario
    pod = scenario.pods[index % len(scenario.pods)]
    hosts = pod["hosts"]
    predicate = _pair_predicate(
        scenario.topology, hosts[0], hosts[-1], 20_000 + index
    )
    from repro.core.ast import Statement
    from repro.regex.ast import any_path

    return Statement(f"doom{index}", predicate, any_path())


@pytest.mark.parametrize("seed", range(4))
def test_failed_deltas_leave_session_equal_to_never_seeing_them(
    seed, monkeypatch
):
    """Drive random churn through two sessions — one also receives failing
    deltas (solve + codegen failures) that must roll back — and require the
    final compiles to be byte-identical."""
    monkeypatch.setattr(compiler_module, "CodeGenerator", _FlakyGenerator)
    monkeypatch.setattr(_FlakyGenerator, "explode", False)
    rng = random.Random(seed)
    churn = _RandomPolicyChurn(seed + 500)

    def fresh_compiler():
        compiler = MerlinCompiler(
            topology=churn.scenario.topology,
            overlap="trust",
            add_catch_all=False,
            generate_code=True,
        )
        compiler.compile(churn.final_policy())
        compiler.prepare_incremental()
        return compiler

    tested = fresh_compiler()
    mirror = fresh_compiler()

    tested_result = mirror_result = None
    failures_seen = 0
    for step in range(10):
        roll = rng.random()
        if roll < 0.25:
            # Injected infeasible solve: validation passes, the component
            # solve fails, and the transaction must roll back.
            doomed = PolicyDelta(
                add=(
                    DeltaStatement(
                        _infeasible_statement(churn, step),
                        guarantee=Bandwidth.gbps(50),
                    ),
                )
            )
            with pytest.raises(ProvisioningError):
                tested.recompile(doomed)
            assert tested.has_session
            failures_seen += 1
            continue
        if roll < 0.45:
            # Injected codegen failure on an otherwise-valid delta.
            population = dict(churn.active)
            delta = _delta_for(churn.next_op())
            _FlakyGenerator.explode = True
            with pytest.raises(RuntimeError):
                tested.recompile(delta)
            _FlakyGenerator.explode = False
            assert tested.has_session
            failures_seen += 1
            # The delta failed, so the mirror must not see it either; roll
            # the churn's live population back too.
            churn.active = population
            continue
        op = churn.next_op()
        delta = _delta_for(op)
        tested_result = tested.recompile(delta)
        mirror_result = mirror.recompile(delta)

    assert failures_seen > 0, "the seed produced no injected failures"
    # A final no-op recompile re-derives each session's full result.
    _assert_byte_identical(
        tested.recompile(PolicyDelta()), mirror.recompile(PolicyDelta())
    )
    if tested_result is not None and mirror_result is not None:
        _assert_byte_identical(tested_result, mirror_result)


def _delta_for(op):
    from repro.incremental import RateUpdate

    if op[0] == "add":
        return PolicyDelta(add=(DeltaStatement(op[1], guarantee=op[2]),))
    if op[0] == "remove":
        return PolicyDelta(remove=(op[1],))
    return PolicyDelta(update_rates=(RateUpdate(op[1], guarantee=op[2]),))


class TestEngineCheckpoint:
    def test_checkpoint_restore_roundtrip(self):
        scenario = pod_tenant_scenario(arity=4, pairs_per_pod=1)
        rates = localize(scenario.policy)
        engine = IncrementalProvisioner(scenario.topology)
        for statement in scenario.policy.statements:
            engine.add_statement(statement, rates[statement.identifier].guarantee)
        before = engine.resolve()

        saved = engine.checkpoint()
        wild = unconstrained_statement(scenario)
        engine.add_statement(wild, Bandwidth.mbps(25))
        engine.update_rates("p0s0", Bandwidth.mbps(10))
        engine.remove_statement("p1s0")
        engine.resolve()

        engine.restore(saved)
        assert set(engine.statement_ids()) == {
            s.identifier for s in scenario.policy.statements
        }
        after = engine.resolve()
        # The restored session is clean: every component is a cache hit.
        assert after.solve_statistics["partitions_dirty"] == 0.0
        assert _paths(after) == _paths(before)
        assert _reservations(after) == _reservations(before)

    def test_restore_invalidates_live_model_memo(self):
        """Rollback rewinds the revision counter, so a post-rollback delta
        reuses revision numbers; a live model materialized inside the
        failed transaction must not satisfy the new population's signature
        (regression: solve_live served rolled-back rates)."""
        scenario = pod_tenant_scenario(arity=4, pairs_per_pod=1)
        rates = localize(scenario.policy)
        engine = IncrementalProvisioner(scenario.topology)
        for statement in scenario.policy.statements:
            engine.add_statement(statement, rates[statement.identifier].guarantee)

        saved = engine.checkpoint()
        engine.update_rates("p0s0", Bandwidth.mbps(30))
        engine.solve_live()  # materialized mid-transaction
        engine.restore(saved)
        engine.update_rates("p0s0", Bandwidth.mbps(40))  # same revision number
        live = engine.solve_live()
        guarantee_mbps = 40.0
        # Host access links are on every feasible path, so they must carry
        # exactly the (updated) guarantee.
        source_host = scenario.pods[0]["hosts"][0]
        (host_link,) = [
            link
            for link in engine.logical_for("p0s0").physical_links_used()
            if source_host in link
        ]
        r_uv = engine.live_model.variable(f"r__{host_link[0]}__{host_link[1]}")
        reserved_mbps = live.value_of(r_uv) * 1000.0  # 1 Gbps links
        assert reserved_mbps == pytest.approx(guarantee_mbps, abs=1e-3)

    def test_restored_revisions_reproduce_signatures(self):
        """A rolled-back engine assigns the same revisions to future deltas
        as one that never saw the failed delta, so cache signatures (and
        hence hit/miss behavior) coincide."""
        scenario = pod_tenant_scenario(arity=4, pairs_per_pod=1)
        rates = localize(scenario.policy)

        def seeded():
            engine = IncrementalProvisioner(scenario.topology)
            for statement in scenario.policy.statements:
                engine.add_statement(
                    statement, rates[statement.identifier].guarantee
                )
            return engine

        rolled = seeded()
        saved = rolled.checkpoint()
        rolled.update_rates("p0s0", Bandwidth.mbps(10))
        rolled.restore(saved)
        rolled.update_rates("p0s0", Bandwidth.mbps(30))

        straight = seeded()
        straight.update_rates("p0s0", Bandwidth.mbps(30))

        assert rolled._revisions == straight._revisions


class TestNegotiatorRollback:
    def test_failed_reprovision_keeps_session_alive(self):
        """A verified-valid refinement the network cannot carry is
        withdrawn, and — unlike the old fail-loud behavior — the next
        proposal still re-provisions through the intact session."""
        from repro.core.parser import parse_policy
        from repro.negotiator.negotiator import Negotiator
        from repro.topology.generators import dumbbell

        # The Figure 3 dumbbell: a 400 MB/s path via sa1/sa2 and a
        # 100 MB/s path via sb1.
        topology = dumbbell()
        source = """
        [ a : (eth.src = 00:00:00:00:00:01 and
               eth.dst = 00:00:00:00:00:02 and
               tcp.dst = 80) -> .* ],
        min(a, 150MB/s)
        """
        policy = parse_policy(source, topology=topology)
        compiler = MerlinCompiler(
            topology=topology,
            overlap="trust",
            add_catch_all=False,
            generate_code=False,
        )
        compiler.compile(policy)
        root = Negotiator(name="root", policy=policy, compiler=compiler)

        # Pinning the path through sb1 is a valid refinement (a subset of
        # .*), but 150 MB/s does not fit the 100 MB/s thin path: the solve
        # is infeasible and the transaction rolls back.
        pinched = parse_policy(
            source.replace("-> .*", "-> .* sb1 .*"), topology=topology
        )
        original = root.policy
        with pytest.raises(ProvisioningError):
            root.propose(pinched)
        assert root.policy is original
        assert compiler.has_session  # rolled back, not invalidated
        assert compiler.session_statement("a").path == policy.statements[0].path

        # The session keeps serving refinements without a re-seed: the
        # fat-path pin is feasible and lands incrementally.
        feasible = parse_policy(
            source.replace("-> .*", "-> .* sa1 .* sa2 .*"), topology=topology
        )
        assert root.propose(feasible).valid
        assert root.last_reprovision is not None
        assert "sa1" in root.last_reprovision.paths["a"].path
