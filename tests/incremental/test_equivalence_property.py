"""Property-style equivalence: any delta sequence == from-scratch compile.

The acceptance property of the incremental engine: after an arbitrary
sequence of add / remove / update deltas, ``resolve()`` (and the compiler's
``recompile``) must produce allocations *identical* to a from-scratch
``compile()`` of the final policy.  Identity is by construction — both
paths partition the statements the same way and solve byte-identical
canonical component models — and this test drives randomized sequences
through both layers to prove it holds across churn, cache reuse, and
component merges/splits.
"""

import random

import pytest

from repro.core import MerlinCompiler, compile_policy
from repro.core.ast import BandwidthTerm, FMin, Policy, formula_and
from repro.core.localization import localize
from repro.experiments.reprovisioning import (
    _pod_statement,
    pod_tenant_scenario,
)
from repro.incremental import (
    DeltaStatement,
    IncrementalProvisioner,
    PolicyDelta,
    RateUpdate,
)
from repro.units import Bandwidth


def _paths(result):
    return {identifier: p.path for identifier, p in result.paths.items()}


def _reservations(result):
    return {key: value.bps_value for key, value in result.link_reservations.items()}


def _assert_same_allocations(incremental, scratch):
    assert _paths(incremental) == _paths(scratch)
    left, right = _reservations(incremental), _reservations(scratch)
    assert set(left) == set(right)
    for key in left:
        assert left[key] == pytest.approx(right[key], abs=1e-3)


class _RandomPolicyChurn:
    """Shared generator of random pod-local statement churn."""

    def __init__(self, seed: int, arity: int = 4, pairs_per_pod: int = 1):
        self.rng = random.Random(seed)
        self.scenario = pod_tenant_scenario(arity=arity, pairs_per_pod=pairs_per_pod)
        rates = localize(self.scenario.policy)
        # id -> (statement, guarantee); the live population.
        self.active = {
            statement.identifier: (
                statement,
                rates[statement.identifier].guarantee,
            )
            for statement in self.scenario.policy.statements
        }
        self.counter = 0

    def _fresh_statement(self):
        self.counter += 1
        pod_index = self.rng.randrange(len(self.scenario.pods))
        pod = self.scenario.pods[pod_index]
        hosts = pod["hosts"]
        source, destination = self.rng.sample(hosts, 2)
        return _pod_statement(
            self.scenario.topology,
            pod,
            f"r{self.counter}",
            source,
            destination,
            10_000 + self.counter,
        )

    def _random_guarantee(self):
        return Bandwidth.mbps(self.rng.choice([10, 25, 50, 75]))

    def next_op(self):
        """One random delta op: ('add', stmt, g) | ('remove', id) | ('update', id, g)."""
        kinds = ["add"]
        if len(self.active) > 1:
            kinds += ["remove", "update", "update"]
        kind = self.rng.choice(kinds)
        if kind == "add":
            statement = self._fresh_statement()
            guarantee = self._random_guarantee()
            self.active[statement.identifier] = (statement, guarantee)
            return ("add", statement, guarantee)
        identifier = self.rng.choice(sorted(self.active))
        if kind == "remove":
            del self.active[identifier]
            return ("remove", identifier)
        statement, _ = self.active[identifier]
        guarantee = self._random_guarantee()
        self.active[identifier] = (statement, guarantee)
        return ("update", identifier, guarantee)

    def final_policy(self) -> Policy:
        statements = [statement for statement, _ in self.active.values()]
        clauses = [
            FMin(BandwidthTerm(identifiers=(statement.identifier,)), guarantee)
            for statement, guarantee in self.active.values()
        ]
        return Policy(statements=tuple(statements), formula=formula_and(*clauses))


@pytest.mark.parametrize("seed", range(5))
def test_engine_delta_sequences_match_from_scratch_compile(seed):
    """Engine layer: random churn + resolve == provision of the final set."""
    churn = _RandomPolicyChurn(seed)
    engine = IncrementalProvisioner(churn.scenario.topology)
    for statement, guarantee in churn.active.values():
        engine.add_statement(statement, guarantee)
    for step in range(8):
        op = churn.next_op()
        if op[0] == "add":
            engine.add_statement(op[1], op[2])
        elif op[0] == "remove":
            engine.remove_statement(op[1])
        else:
            engine.update_rates(op[1], op[2])
        if step % 3 == 0:
            engine.resolve()  # interleave resolves to exercise the cache
    incremental = engine.resolve()

    scratch = compile_policy(
        churn.final_policy(),
        churn.scenario.topology,
        {},
        overlap="trust",
        add_catch_all=False,
        generate_code=False,
    )
    _assert_same_allocations(incremental, scratch)


@pytest.mark.parametrize("seed", range(3))
def test_compiler_recompile_sequences_match_from_scratch_compile(seed):
    """Compiler layer: random recompile deltas == compile of the final policy."""
    churn = _RandomPolicyChurn(seed + 100)
    compiler = MerlinCompiler(
        topology=churn.scenario.topology,
        overlap="trust",
        add_catch_all=False,
        generate_code=False,
    )
    compiler.compile(churn.final_policy())
    for _ in range(6):
        op = churn.next_op()
        if op[0] == "add":
            delta = PolicyDelta(add=(DeltaStatement(op[1], guarantee=op[2]),))
        elif op[0] == "remove":
            delta = PolicyDelta(remove=(op[1],))
        else:
            delta = PolicyDelta(update_rates=(RateUpdate(op[1], guarantee=op[2]),))
        incremental = compiler.recompile(delta)

    scratch = compile_policy(
        churn.final_policy(),
        churn.scenario.topology,
        {},
        overlap="trust",
        add_catch_all=False,
        generate_code=False,
    )
    _assert_same_allocations(incremental, scratch)
