"""The session-lifetime tighten cache: reuse across resolves, purge on edits.

Cost-bound tightening (``prune_to_cost_bound``) used to be recomputed for
*every* statement on *every* resolve round.  The engine now keeps the
``{statement: {slack: (base, tightened, footprint)}}`` cache for the
session's lifetime, validating entries by the base topology's identity —
so a recompile that dirties one pod reuses every other statement's
tightening verbatim, while mutating a statement's logical topology (or
removing it) drops exactly that statement's entries.
"""

from repro.core.compiler import MerlinCompiler
from repro.experiments.reprovisioning import (
    pod_tenant_scenario,
    unconstrained_statement,
)
from repro.incremental import DeltaStatement, PolicyDelta


def _compiler(scenario):
    return MerlinCompiler(
        topology=scenario.topology,
        overlap="trust",
        add_catch_all=False,
        generate_code=False,
    )


def _reservations(result):
    return {key: value.bps_value for key, value in result.link_reservations.items()}


def test_tighten_entries_survive_recompiles_and_purge_on_removal():
    scenario = pod_tenant_scenario(arity=4, pairs_per_pod=2)
    compiler = _compiler(scenario)
    base = compiler.compile(scenario.policy)
    compiler.prepare_incremental()

    wild = unconstrained_statement(scenario, "wild")
    first = compiler.recompile(
        PolicyDelta(add=(DeltaStatement(wild, guarantee=scenario.guarantee),))
    )
    engine = compiler._session.engine
    cache = engine._tighten_cache
    assert set(cache) == {s.identifier for s in scenario.policy.statements} | {
        "wild"
    }
    snapshot = {
        identifier: dict(per_slack) for identifier, per_slack in cache.items()
    }

    reverted = compiler.recompile(PolicyDelta(remove=("wild",)))
    # The removed statement's entries are gone; every surviving statement's
    # entries are the *same tuples* — reused, not recomputed.
    assert "wild" not in cache
    for identifier, per_slack in snapshot.items():
        if identifier == "wild":
            continue
        for slack, entry in per_slack.items():
            assert cache[identifier][slack] is entry

    # And the reuse is sound: reverting restored the base allocations.
    assert _reservations(reverted) == _reservations(base)
    assert first.statistics.num_partitions >= base.statistics.num_partitions


def test_mutating_a_statement_drops_only_its_entries():
    scenario = pod_tenant_scenario(arity=4, pairs_per_pod=2)
    compiler = _compiler(scenario)
    compiler.compile(scenario.policy)
    compiler.prepare_incremental()

    wild = unconstrained_statement(scenario, "wild")
    compiler.recompile(
        PolicyDelta(add=(DeltaStatement(wild, guarantee=scenario.guarantee),))
    )
    engine = compiler._session.engine
    untouched = {
        identifier: dict(per_slack)
        for identifier, per_slack in engine._tighten_cache.items()
        if identifier != "wild"
    }

    engine.replace_logical("wild", engine.logical_for("wild"))
    assert "wild" not in engine._tighten_cache
    for identifier, per_slack in untouched.items():
        for slack, entry in per_slack.items():
            assert engine._tighten_cache[identifier][slack] is entry
