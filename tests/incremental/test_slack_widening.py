"""Self-healing slack widening and topology deltas (failures/recoveries).

The engineered topology makes the cost-bound tightening artifact precise:
two 2-hop branches carry two 600 Mbps statements comfortably, and a 5-switch
backup chain sits 4 hops further away — outside the default footprint slack
of 2, inside a widened slack of 4.  Failing one branch makes the slack-2
pruned model infeasible (1.2 Gbps cannot share the one surviving 1 Gbps
branch) while the network itself stays feasible, which is exactly the case
the widening ladder must recover identically in ``compile`` and
``recompile``.
"""

import pytest

from repro.core import MerlinCompiler
from repro.core.options import MAX_WIDENED_SLACK, widen_slack
from repro.errors import ProvisioningError, TopologyError
from repro.incremental import PolicyDelta, RateUpdate, TopologyDelta
from repro.scenarios import allocations_match
from repro.topology.graph import Topology
from repro.units import Bandwidth

SOURCE = """
[ x : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 80) -> .* ;
  y : (eth.src = 00:00:00:00:00:03 and
       eth.dst = 00:00:00:00:00:04 and
       tcp.dst = 81) -> .* ],
min(x, 600Mbps) and min(y, 600Mbps)
"""

CHAIN = ("c1", "c2", "c3", "c4", "c5")


def _widening_topology() -> Topology:
    topology = Topology()
    topology.add_switch("s1")
    topology.add_switch("s2")
    # Each statement gets its own host pair so access links never bind;
    # the squeeze under test is in the s1-s2 fabric.
    topology.add_host("h1", mac="00:00:00:00:00:01", attached_switch="s1")
    topology.add_host("h2", mac="00:00:00:00:00:02", attached_switch="s2")
    topology.add_host("h3", mac="00:00:00:00:00:03", attached_switch="s1")
    topology.add_host("h4", mac="00:00:00:00:00:04", attached_switch="s2")
    capacity = Bandwidth.gbps(1)
    topology.add_link("h1", "s1", capacity)
    topology.add_link("h2", "s2", capacity)
    topology.add_link("h3", "s1", capacity)
    topology.add_link("h4", "s2", capacity)
    for branch in ("a", "b"):
        topology.add_switch(branch)
        topology.add_link("s1", branch, capacity)
        topology.add_link(branch, "s2", capacity)
    # The backup chain: h1-s1-c1-...-c5-s2-h2 is 8 links against the
    # branches' 4, so it is pruned at slack 2 and admitted at slack 4.
    previous = "s1"
    for name in CHAIN:
        topology.add_switch(name)
        topology.add_link(previous, name, capacity)
        previous = name
    topology.add_link(previous, "s2", capacity)
    return topology


def _compiler(topology) -> MerlinCompiler:
    return MerlinCompiler(
        topology=topology,
        overlap="trust",
        add_catch_all=False,
        generate_code=False,
    )


class TestWideningLadder:
    def test_geometric_progression(self):
        assert widen_slack(2) == 4
        assert widen_slack(4) == 8
        assert widen_slack(MAX_WIDENED_SLACK) is None

    def test_zero_steps_to_one(self):
        assert widen_slack(0) == 1

    def test_untightened_is_terminal(self):
        assert widen_slack(None) is None


class TestTopologyDeltaWidening:
    def test_branch_failure_recovers_by_widening(self):
        topology = _widening_topology()
        compiler = _compiler(topology)
        initial = compiler.compile(SOURCE)
        assert initial.statistics.slack_retries == 0

        degraded = compiler.recompile(TopologyDelta(fail_links=(("s1", "a"),)))

        assert degraded.statistics.slack_retries >= 1
        assert degraded.statistics.footprint_slack_used == 4.0
        paths = {identifier: p.path for identifier, p in degraded.paths.items()}
        assert set(paths) == {"x", "y"}
        # One statement took the surviving branch, the other the chain.
        on_chain = [
            identifier
            for identifier, path in paths.items()
            if any(switch in path for switch in CHAIN)
        ]
        assert len(on_chain) == 1
        for assignment in degraded.paths.values():
            assert "a" not in assignment.path

    def test_recompile_matches_fresh_compile_on_degraded_topology(self):
        topology = _widening_topology()
        compiler = _compiler(topology)
        compiler.compile(SOURCE)
        degraded = compiler.recompile(TopologyDelta(fail_links=(("s1", "a"),)))

        fresh = _compiler(topology.without(links=[("s1", "a")]))
        from_scratch = fresh.compile(SOURCE)
        assert from_scratch.statistics.slack_retries >= 1
        assert allocations_match(degraded, from_scratch)

    def test_recovery_restores_original_allocation(self):
        topology = _widening_topology()
        compiler = _compiler(topology)
        initial = compiler.compile(SOURCE)
        compiler.recompile(TopologyDelta(fail_links=(("s1", "a"),)))

        recovered = compiler.recompile(
            TopologyDelta(recover_links=(("s1", "a"),))
        )

        assert recovered.statistics.slack_retries == 0
        assert allocations_match(recovered, initial)

    def test_node_failure_keeps_named_references_valid(self):
        # Failing a switch that path expressions could name must degrade
        # the product graph, not raise a placement error.
        topology = _widening_topology()
        compiler = _compiler(topology)
        compiler.compile(SOURCE)

        degraded = compiler.recompile(TopologyDelta(fail_nodes=("a",)))

        assert degraded.statistics.slack_retries >= 1
        for assignment in degraded.paths.values():
            assert "a" not in assignment.path

    def test_statistics_surface_widening_in_row(self):
        topology = _widening_topology()
        compiler = _compiler(topology)
        compiler.compile(SOURCE)
        degraded = compiler.recompile(TopologyDelta(fail_links=(("s1", "a"),)))
        row = degraded.statistics.as_row()
        assert row["slack_retries"] >= 1.0
        assert row["footprint_slack_used"] == 4.0
        assert len(degraded.statistics.component_solve_seconds) >= 1


class TestTopologyDeltaValidation:
    @pytest.fixture
    def live(self):
        compiler = _compiler(_widening_topology())
        compiler.compile(SOURCE)
        return compiler

    def test_unknown_link_rejected(self, live):
        with pytest.raises(TopologyError):
            live.recompile(TopologyDelta(fail_links=(("s1", "nope"),)))

    def test_host_failure_rejected(self, live):
        with pytest.raises(ProvisioningError, match="host"):
            live.recompile(TopologyDelta(fail_nodes=("h1",)))

    def test_double_failure_rejected(self, live):
        live.recompile(TopologyDelta(fail_links=(("s1", "a"),)))
        with pytest.raises(ProvisioningError, match="already failed"):
            live.recompile(TopologyDelta(fail_links=(("s1", "a"),)))

    def test_recovering_healthy_link_rejected(self, live):
        with pytest.raises(ProvisioningError, match="not failed"):
            live.recompile(TopologyDelta(recover_links=(("s1", "a"),)))

    def test_recovering_healthy_node_rejected(self, live):
        with pytest.raises(ProvisioningError, match="not failed"):
            live.recompile(TopologyDelta(recover_nodes=("a",)))


class TestInfeasibleRollback:
    def test_genuine_infeasibility_rolls_back_and_session_survives(self):
        topology = _widening_topology()
        compiler = _compiler(topology)
        initial = compiler.compile(SOURCE)

        # Both branches gone: only the 1 Gbps chain survives, which cannot
        # carry 1.2 Gbps at any slack — a genuine infeasibility, reported
        # after the ladder reaches the untightened model.
        with pytest.raises(ProvisioningError):
            compiler.recompile(
                TopologyDelta(fail_links=(("s1", "a"), ("s1", "b")))
            )

        assert compiler.has_session
        # The rollback restored the pristine view: no failed elements, and
        # the session still accepts further deltas.
        after = compiler.recompile(
            PolicyDelta(
                update_rates=(RateUpdate("x", guarantee=Bandwidth.mbps(500)),)
            )
        )
        assert after.rates["x"].guarantee.bps_value == pytest.approx(500e6)
        restored = compiler.recompile(
            PolicyDelta(
                update_rates=(RateUpdate("x", guarantee=Bandwidth.mbps(600)),)
            )
        )
        assert allocations_match(restored, initial)
