"""Cost-bounded footprint tightening: exactness and partition behavior.

Tightening restricts each statement's logical topology to edges on some
source-to-sink path within ``optimal hops + slack`` — both for partitioning
*and* for the component MIPs, which is what keeps the decomposition exact.
The regression contract guarded here: on workloads whose min-max optima
live within the bound (everything near-shortest-path — the fat-tree and
Figure 3 families), tightening must never change the merged allocations
(paths, reservations), only the partition counts.  Workloads needing
longer detours are the documented trade-off (raise the slack or disable
tightening), not a target of this contract.
"""

import pytest

from repro.core import MerlinCompiler
from repro.core.ast import BandwidthTerm, FMin, Policy, formula_and, formula_clauses
from repro.core.logical import (
    build_logical_topology,
    infer_endpoints,
    prune_to_cost_bound,
)
from repro.experiments.reprovisioning import (
    pod_tenant_scenario,
    unconstrained_statement,
)
from repro.incremental import DeltaStatement, PolicyDelta, tighten_logical_topologies
from repro.units import Bandwidth


def _paths(result):
    return {identifier: p.path for identifier, p in result.paths.items()}


def _reservations(result):
    return {key: value.bps_value for key, value in result.link_reservations.items()}


def _mixed_policy(scenario, wild):
    clauses = list(formula_clauses(scenario.policy.formula))
    clauses.append(
        FMin(BandwidthTerm(identifiers=(wild.identifier,)), scenario.guarantee)
    )
    return Policy(
        statements=scenario.policy.statements + (wild,),
        formula=formula_and(*clauses),
    )


def _compiler(topology, **kwargs):
    return MerlinCompiler(
        topology=topology,
        overlap="trust",
        add_catch_all=False,
        generate_code=False,
        **kwargs,
    )


class TestPruneToCostBound:
    def _wild_logical(self, scenario, slack=None):
        wild = unconstrained_statement(scenario)
        source, destination = infer_endpoints(wild, scenario.topology)
        logical = build_logical_topology(
            wild, scenario.topology, {}, source=source, destination=destination
        )
        if slack is None:
            return logical
        return prune_to_cost_bound(logical, slack)

    def test_unconstrained_footprint_shrinks_to_near_optimal_links(self):
        scenario = pod_tenant_scenario(arity=4, pairs_per_pod=1)
        unpruned = self._wild_logical(scenario)
        pruned = prune_to_cost_bound(unpruned, 2)
        # The .* statement could touch every physical link...
        assert len(unpruned.physical_links_used()) == len(
            list(scenario.topology.links())
        )
        # ...but its cost-bounded subgraph stays near the intra-rack optimum
        # (strictly fewer links, all of them a subset of the original).
        assert pruned.physical_links_used() < unpruned.physical_links_used()
        # No pruned link leaves pod 0 (core links cost 4 extra hops).
        pod = scenario.pods[0]
        allowed = set(pod["hosts"]) | set(pod["edge"]) | set(pod["aggregation"])
        for u, v in pruned.physical_links_used():
            assert u in allowed and v in allowed

    def test_optimal_path_always_survives(self):
        scenario = pod_tenant_scenario(arity=4, pairs_per_pod=1)
        for slack in (0, 1, 2):
            pruned = self._wild_logical(scenario, slack=slack)
            assert pruned.is_feasible()

    def test_zero_slack_keeps_exactly_min_hop_paths(self):
        scenario = pod_tenant_scenario(arity=4, pairs_per_pod=1)
        pruned = self._wild_logical(scenario, slack=0)
        # Same-rack pair: the only 2-hop paths go through the shared edge
        # switch, so exactly the two host access links remain.
        assert len(pruned.physical_links_used()) == 2

    def test_monotone_in_slack(self):
        scenario = pod_tenant_scenario(arity=4, pairs_per_pod=1)
        footprints = [
            frozenset(self._wild_logical(scenario, slack=s).physical_links_used())
            for s in (0, 2, 4)
        ]
        assert footprints[0] <= footprints[1] <= footprints[2]

    def test_already_tight_topology_returned_by_reference(self):
        # A pod-scoped statement over a single pair of host links has no
        # edges to prune; the shared memoized object must be returned as-is.
        scenario = pod_tenant_scenario(arity=4, pairs_per_pod=1)
        statement = scenario.policy.statements[0]
        source, destination = infer_endpoints(statement, scenario.topology)
        logical = build_logical_topology(
            statement,
            scenario.topology,
            {},
            source=source,
            destination=destination,
        )
        tightened = tighten_logical_topologies({"s": logical}, None)
        assert tightened["s"] is logical

    def test_infeasible_topology_passes_through(self):
        scenario = pod_tenant_scenario(arity=4, pairs_per_pod=1)
        logical = self._wild_logical(scenario)
        empty = type(logical)(
            statement_id="empty", source_location=None, destination_location=None
        )
        assert prune_to_cost_bound(empty, 0) is empty


class TestTighteningRegression:
    """Tightening changes partition counts, never merged allocations."""

    def test_wild_statement_keeps_partitions_and_allocations(self):
        scenario = pod_tenant_scenario(arity=4, pairs_per_pod=1)
        policy = _mixed_policy(scenario, unconstrained_statement(scenario))

        tightened = _compiler(scenario.topology).compile(policy)
        glued = _compiler(scenario.topology, footprint_slack=None).compile(policy)

        # Without tightening the .* statement glues everything into one
        # component; with it the pod tenants stay partition-parallel.
        assert glued.statistics.num_partitions == 1
        assert tightened.statistics.num_partitions > 1
        assert tightened.statistics.num_partitions >= len(scenario.pods)

        # The regression contract: identical merged allocations.
        assert _paths(tightened) == _paths(glued)
        left, right = _reservations(tightened), _reservations(glued)
        assert set(left) == set(right)
        for key in left:
            assert left[key] == pytest.approx(right[key], abs=1e-3)

    def test_recompiled_wild_delta_solves_with_multiple_partitions(self):
        """The acceptance case: adding one ``.*``-path statement to the live
        pod-tenant session still re-provisions with > 1 partition component
        and stays identical to a from-scratch compile."""
        scenario = pod_tenant_scenario(arity=4, pairs_per_pod=1)
        wild = unconstrained_statement(scenario)
        compiler = _compiler(scenario.topology)
        compiler.compile(scenario.policy)
        compiler.prepare_incremental()

        incremental = compiler.recompile(
            PolicyDelta(add=(DeltaStatement(wild, guarantee=scenario.guarantee),))
        )
        assert incremental.statistics.num_partitions > 1
        assert incremental.statistics.dirty_partitions < (
            incremental.statistics.num_partitions
        )

        scratch = _compiler(scenario.topology).compile(
            _mixed_policy(scenario, wild)
        )
        assert _paths(incremental) == _paths(scratch)
        left, right = _reservations(incremental), _reservations(scratch)
        for key in left:
            assert left[key] == pytest.approx(right[key], abs=1e-3)

    def test_figure3_spread_survives_default_tightening(self):
        """The min-max-ratio optimum on the Figure 3 dumbbell uses the
        *longer* (3-hop) path for one flow; the default slack must keep
        that detour available."""
        from repro.core import compile_policy
        from repro.topology.generators import dumbbell

        topology = dumbbell()
        source = """
        [ a : (eth.src = 00:00:00:00:00:01 and eth.dst = 00:00:00:00:00:02 and tcp.dst = 80) -> .* ;
          b : (eth.src = 00:00:00:00:00:01 and eth.dst = 00:00:00:00:00:02 and tcp.dst = 22) -> .* ],
        min(a, 50MB/s) and min(b, 50MB/s)
        """
        result = compile_policy(source, topology, {})
        assert result.max_link_utilization() == pytest.approx(0.25, abs=0.01)
