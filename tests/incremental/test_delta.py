"""Tests for PolicyDelta and policy diffing."""

from repro.core.parser import parse_policy
from repro.incremental import PolicyDelta, policy_delta
from repro.units import Bandwidth

BASE = """
[ a : tcp.dst = 80 -> .* dpi .* ;
  b : tcp.dst = 22 -> .* ],
min(a, 10Mbps) and max(b, 100Mbps)
"""


def test_empty_delta():
    policy = parse_policy(BASE)
    delta = policy_delta(policy, policy)
    assert delta.is_empty()
    assert delta.num_changes() == 0


def test_added_statement_carries_localized_rates():
    new = parse_policy(
        BASE.replace(
            "min(a, 10Mbps)", "min(a, 10Mbps) and min(c, 5Mbps)"
        ).replace("-> .* ]", "-> .* ; c : tcp.dst = 443 -> .* ]")
    )
    policy = parse_policy(BASE)
    delta = policy_delta(policy, new)
    assert [d.statement.identifier for d in delta.add] == ["c"]
    assert delta.add[0].guarantee == Bandwidth.mbps(5)
    assert not delta.remove and not delta.update_rates


def test_removed_statement():
    policy = parse_policy(BASE)
    reduced = parse_policy("[ a : tcp.dst = 80 -> .* dpi .* ], min(a, 10Mbps)")
    delta = policy_delta(policy, reduced)
    assert delta.remove == ("b",)
    assert not delta.add


def test_path_change_is_remove_plus_add():
    policy = parse_policy(BASE)
    changed = parse_policy(BASE.replace(".* dpi .*", ".* dpi .* nat .*"))
    delta = policy_delta(policy, changed)
    assert delta.remove == ("a",)
    assert [d.statement.identifier for d in delta.add] == ["a"]
    assert not delta.update_rates


def test_predicate_change_is_remove_plus_add():
    policy = parse_policy(BASE)
    changed = parse_policy(BASE.replace("tcp.dst = 22", "tcp.dst = 23"))
    delta = policy_delta(policy, changed)
    assert delta.remove == ("b",)
    assert [d.statement.identifier for d in delta.add] == ["b"]


def test_rate_only_change_is_update():
    policy = parse_policy(BASE)
    changed = parse_policy(BASE.replace("min(a, 10Mbps)", "min(a, 20Mbps)"))
    delta = policy_delta(policy, changed)
    assert not delta.remove and not delta.add
    assert [u.identifier for u in delta.update_rates] == ["a"]
    assert delta.update_rates[0].guarantee == Bandwidth.mbps(20)


def test_cap_only_change_is_update():
    policy = parse_policy(BASE)
    changed = parse_policy(BASE.replace("max(b, 100Mbps)", "max(b, 50Mbps)"))
    delta = policy_delta(policy, changed)
    assert [u.identifier for u in delta.update_rates] == ["b"]
    assert delta.update_rates[0].cap == Bandwidth.mbps(50)


def test_str_summary():
    delta = PolicyDelta(remove=("a", "b"))
    assert "-2" in str(delta)


def test_localization_weights_respected():
    source = """
    [ a : tcp.dst = 80 -> .* ; b : tcp.dst = 22 -> .* ],
    max(a + b, 100Mbps)
    """
    old = parse_policy(source)
    new = parse_policy(source.replace("100Mbps", "80Mbps"))
    weighted = policy_delta(old, new, weights={"a": 3.0, "b": 1.0})
    caps = {update.identifier: update.cap for update in weighted.update_rates}
    assert caps["a"] == Bandwidth.mbps(60)
    assert caps["b"] == Bandwidth.mbps(20)
    equal_split = policy_delta(old, new)
    caps = {update.identifier: update.cap for update in equal_split.update_rates}
    assert caps["a"] == Bandwidth.mbps(40)
