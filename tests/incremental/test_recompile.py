"""Tests for the compiler's recompile fast path and the negotiator trigger."""

import pytest

from repro.core import MerlinCompiler, compile_policy
from repro.core.ast import (
    BandwidthTerm,
    FMin,
    Policy,
    Statement,
    formula_and,
    formula_clauses,
)
from repro.core.parser import parse_policy
from repro.errors import ProvisioningError
from repro.incremental import DeltaStatement, PolicyDelta, RateUpdate
from repro.negotiator.negotiator import Negotiator
from repro.predicates.ast import FieldTest, pred_and
from repro.regex.parser import parse_path_expression
from repro.topology.generators import figure2_example
from repro.units import Bandwidth

SOURCE = """
[ x : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 20) -> .* dpi .* ;
  z : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 80) -> .* dpi .* nat .* ],
min(x, 25MB/s) and min(z, 50MB/s)
"""
PLACEMENTS = {"dpi": ("h1", "h2", "m1"), "nat": ("m1",), "log": ("m1",)}


def _pair_predicate(port):
    return pred_and(
        FieldTest("eth.src", "00:00:00:00:00:01"),
        pred_and(
            FieldTest("eth.dst", "00:00:00:00:00:02"), FieldTest("tcp.dst", port)
        ),
    )


def _compiler(topology, **kwargs):
    return MerlinCompiler(
        topology=topology,
        placements=PLACEMENTS,
        overlap="trust",
        add_catch_all=False,
        **kwargs,
    )


def _paths(result):
    return {identifier: p.path for identifier, p in result.paths.items()}


class TestRecompile:
    def test_recompile_without_session_rejected(self):
        compiler = _compiler(figure2_example(capacity=Bandwidth.gbps(2)))
        with pytest.raises(ProvisioningError):
            compiler.recompile(PolicyDelta())

    def test_add_matches_from_scratch_compile(self):
        topology = figure2_example(capacity=Bandwidth.gbps(2))
        compiler = _compiler(topology, generate_code=False)
        compiler.compile(SOURCE)

        added = Statement(
            "w", _pair_predicate(443), parse_path_expression(".* dpi .*")
        )
        guarantee = Bandwidth.mb_per_sec(10)
        incremental = compiler.recompile(
            PolicyDelta(add=(DeltaStatement(added, guarantee=guarantee),))
        )

        base = parse_policy(SOURCE, topology=topology)
        extended = Policy(
            statements=base.statements + (added,),
            formula=formula_and(
                *formula_clauses(base.formula),
                FMin(BandwidthTerm(identifiers=("w",)), guarantee),
            ),
        )
        scratch = compile_policy(
            extended, topology, PLACEMENTS, overlap="trust",
            add_catch_all=False, generate_code=False,
        )
        assert _paths(incremental) == _paths(scratch)
        assert {
            key: value.bps_value
            for key, value in incremental.link_reservations.items()
        } == {
            key: value.bps_value for key, value in scratch.link_reservations.items()
        }
        assert incremental.statistics.dirty_partitions <= incremental.statistics.num_partitions

    def test_remove_restores_base_allocations(self):
        topology = figure2_example(capacity=Bandwidth.gbps(2))
        compiler = _compiler(topology, generate_code=False)
        base = compiler.compile(SOURCE)
        added = Statement(
            "w", _pair_predicate(443), parse_path_expression(".* dpi .*")
        )
        compiler.recompile(
            PolicyDelta(
                add=(DeltaStatement(added, guarantee=Bandwidth.mb_per_sec(10)),)
            )
        )
        reverted = compiler.recompile(PolicyDelta(remove=("w",)))
        assert _paths(reverted) == _paths(base)

    def test_rate_update_reflected_in_result(self):
        topology = figure2_example(capacity=Bandwidth.gbps(2))
        compiler = _compiler(topology, generate_code=False)
        compiler.compile(SOURCE)
        result = compiler.recompile(
            PolicyDelta(
                update_rates=(
                    RateUpdate("z", guarantee=Bandwidth.mb_per_sec(40)),
                )
            )
        )
        assert result.rates["z"].guarantee == Bandwidth.mb_per_sec(40)
        assert result.paths["z"].guaranteed_rate == Bandwidth.mb_per_sec(40)

    def test_best_effort_add_and_demotion(self):
        topology = figure2_example(capacity=Bandwidth.gbps(2))
        compiler = _compiler(topology, generate_code=False)
        compiler.compile(SOURCE)
        # A best-effort statement with a path constraint takes the BFS path.
        added = Statement(
            "v", _pair_predicate(8080), parse_path_expression(".* dpi .*")
        )
        result = compiler.recompile(PolicyDelta(add=(DeltaStatement(added),)))
        assert "v" in result.paths
        assert result.rates["v"].guarantee is None
        # Promote it to guaranteed: it enters the MIP.
        promoted = compiler.recompile(
            PolicyDelta(
                update_rates=(RateUpdate("v", guarantee=Bandwidth.mb_per_sec(5)),)
            )
        )
        assert promoted.paths["v"].guaranteed_rate == Bandwidth.mb_per_sec(5)
        # Demote it again: back to best-effort.
        demoted = compiler.recompile(
            PolicyDelta(update_rates=(RateUpdate("v"),))
        )
        assert demoted.rates["v"].guarantee is None
        assert "v" in demoted.paths

    def test_recompile_regenerates_instructions(self):
        topology = figure2_example(capacity=Bandwidth.gbps(2))
        compiler = _compiler(topology)
        base = compiler.compile(SOURCE)
        assert base.instructions is not None
        result = compiler.recompile(
            PolicyDelta(
                update_rates=(RateUpdate("z", guarantee=Bandwidth.mb_per_sec(40)),)
            )
        )
        assert result.instructions is not None
        assert result.instructions.counts()["openflow"] > 0

    def test_prepare_incremental_requires_session(self):
        compiler = _compiler(figure2_example(capacity=Bandwidth.gbps(2)))
        with pytest.raises(ProvisioningError):
            compiler.prepare_incremental()

    def test_session_setup_never_builds_the_live_model(self):
        """Acceptance spy: neither engine setup nor recompiles materialize
        the spliced live model — only solve_live() ever pays for it."""
        topology = figure2_example(capacity=Bandwidth.gbps(2))
        compiler = _compiler(topology, generate_code=False)
        compiler.compile(SOURCE)
        compiler.prepare_incremental()
        engine = compiler._session.engine
        assert engine.live_materializations == 0
        compiler.recompile(
            PolicyDelta(
                update_rates=(RateUpdate("z", guarantee=Bandwidth.mb_per_sec(40)),)
            )
        )
        compiler.recompile(PolicyDelta(remove=("z",)))
        assert engine.live_materializations == 0
        engine.solve_live()
        assert engine.live_materializations == 1

    def test_unknown_removal_rejected(self):
        topology = figure2_example(capacity=Bandwidth.gbps(2))
        compiler = _compiler(topology, generate_code=False)
        compiler.compile(SOURCE)
        with pytest.raises(ProvisioningError):
            compiler.recompile(PolicyDelta(remove=("ghost",)))


class TestPreprocessorSemantics:
    """recompile() must mirror what preprocess() would do from scratch."""

    def test_catch_all_remainder_recomputed_on_add(self):
        topology = figure2_example(capacity=Bandwidth.gbps(2))
        compiler = MerlinCompiler(
            topology=topology, placements=PLACEMENTS, generate_code=False
        )
        base = compiler.compile(SOURCE)
        assert "default" in {s.identifier for s in base.policy.statements}

        added = Statement(
            "w", _pair_predicate(443), parse_path_expression(".* dpi .*")
        )
        incremental = compiler.recompile(
            PolicyDelta(
                add=(DeltaStatement(added, guarantee=Bandwidth.mb_per_sec(10)),)
            )
        )
        scratch = compile_policy(
            SOURCE.replace(
                "min(x, 25MB/s)", "min(x, 25MB/s) and min(w, 10MB/s)"
            ).replace(
                "nat .* ]",
                "nat .* ; w : (eth.src = 00:00:00:00:00:01 and "
                "eth.dst = 00:00:00:00:00:02 and tcp.dst = 443) -> .* dpi .* ]",
            ),
            topology,
            PLACEMENTS,
            generate_code=False,
        )
        by_id = {s.identifier: s for s in incremental.policy.statements}
        scratch_by_id = {s.identifier: s for s in scratch.policy.statements}
        # The catch-all's remainder now also excludes w's packets, exactly
        # as a from-scratch preprocess computes it.
        assert by_id["default"].predicate == scratch_by_id["default"].predicate
        assert _paths(incremental) == _paths(scratch)

    def test_generated_catch_all_cannot_be_removed(self):
        """The generated catch-all is not a user statement: removing it
        would silently no-op (the refresh recreates it), so it is rejected
        like any other unknown identifier."""
        topology = figure2_example(capacity=Bandwidth.gbps(2))
        compiler = MerlinCompiler(
            topology=topology, placements=PLACEMENTS, generate_code=False
        )
        base = compiler.compile(SOURCE)
        assert "default" in {s.identifier for s in base.policy.statements}
        with pytest.raises(ProvisioningError, match="unknown statement"):
            compiler.recompile(PolicyDelta(remove=("default",)))
        assert compiler.has_session

    def test_overlapping_add_rejected_in_reject_mode(self):
        from repro.errors import PolicyError

        topology = figure2_example(capacity=Bandwidth.gbps(2))
        compiler = MerlinCompiler(
            topology=topology, placements=PLACEMENTS, generate_code=False
        )
        compiler.compile(SOURCE)
        clashing = Statement(
            "w", _pair_predicate(80), parse_path_expression(".*")
        )  # same predicate shape as z
        with pytest.raises(PolicyError):
            compiler.recompile(PolicyDelta(add=(DeltaStatement(clashing),)))

    def test_priority_mode_narrows_added_statement(self):
        from repro.predicates.sat import overlaps

        topology = figure2_example(capacity=Bandwidth.gbps(2))
        compiler = MerlinCompiler(
            topology=topology,
            placements=PLACEMENTS,
            overlap="priority",
            add_catch_all=False,
            generate_code=False,
        )
        compiler.compile(SOURCE)
        # Overlaps z (tcp.dst = 80 is included in "no port constraint").
        broad = Statement(
            "w",
            pred_and(
                FieldTest("eth.src", "00:00:00:00:00:01"),
                FieldTest("eth.dst", "00:00:00:00:00:02"),
            ),
            parse_path_expression(".*"),
        )
        result = compiler.recompile(PolicyDelta(add=(DeltaStatement(broad),)))
        narrowed = next(
            s for s in result.policy.statements if s.identifier == "w"
        )
        assert narrowed.predicate != broad.predicate
        for statement in result.policy.statements:
            if statement.identifier != "w":
                assert not overlaps(narrowed.predicate, statement.predicate)

    def test_priority_mode_refuses_incremental_removal(self):
        topology = figure2_example(capacity=Bandwidth.gbps(2))
        compiler = MerlinCompiler(
            topology=topology,
            placements=PLACEMENTS,
            overlap="priority",
            add_catch_all=False,
            generate_code=False,
        )
        compiler.compile(SOURCE)
        with pytest.raises(ProvisioningError):
            compiler.recompile(PolicyDelta(remove=("x",)))


class TestSessionHygiene:
    def test_failed_compile_invalidates_previous_session(self):
        topology = figure2_example(capacity=Bandwidth.gbps(2))
        compiler = _compiler(topology, generate_code=False)
        compiler.compile(SOURCE)
        assert compiler.has_session
        infeasible = SOURCE.replace("min(z, 50MB/s)", "min(z, 900MB/s)")
        with pytest.raises(ProvisioningError):
            compiler.compile(infeasible)
        assert not compiler.has_session
        with pytest.raises(ProvisioningError):
            compiler.recompile(PolicyDelta())

    def test_rejected_delta_is_side_effect_free(self):
        """A delta that fails validation must leave the session untouched,
        even when an earlier entry of the same delta was valid."""
        topology = figure2_example(capacity=Bandwidth.gbps(2))
        compiler = MerlinCompiler(
            topology=topology, placements=PLACEMENTS, generate_code=False
        )  # overlap="reject"
        base = compiler.compile(SOURCE)
        fine = Statement("w", _pair_predicate(443), parse_path_expression(".*"))
        clashing = Statement(
            "v", _pair_predicate(80), parse_path_expression(".*")
        )  # overlaps z
        from repro.errors import PolicyError

        with pytest.raises(PolicyError):
            compiler.recompile(
                PolicyDelta(
                    add=(
                        DeltaStatement(fine, guarantee=Bandwidth.mb_per_sec(10)),
                        DeltaStatement(clashing),
                    )
                )
            )
        # Neither statement entered the session: a no-op recompile still
        # reproduces the base allocations and statement population.
        unchanged = compiler.recompile(PolicyDelta())
        assert _paths(unchanged) == _paths(base)
        assert {s.identifier for s in unchanged.policy.statements} == {
            s.identifier for s in base.policy.statements
        }

    def test_add_vs_add_overlap_within_one_delta_rejected(self):
        from repro.errors import PolicyError

        topology = figure2_example(capacity=Bandwidth.gbps(2))
        compiler = MerlinCompiler(
            topology=topology, placements=PLACEMENTS, generate_code=False
        )
        compiler.compile(SOURCE)
        first = Statement("w", _pair_predicate(443), parse_path_expression(".*"))
        duplicate = Statement(
            "v", _pair_predicate(443), parse_path_expression(".*")
        )
        with pytest.raises(PolicyError):
            compiler.recompile(
                PolicyDelta(
                    add=(DeltaStatement(first), DeltaStatement(duplicate))
                )
            )

    def test_infeasible_delta_rolls_back_the_session(self):
        """recompile() is a transaction: a solve-time failure rolls the
        session back to its exact pre-delta state instead of invalidating
        it — the error propagates, but the session stays usable."""
        topology = figure2_example(capacity=Bandwidth.gbps(2))
        compiler = _compiler(topology, generate_code=False)
        base = compiler.compile(SOURCE)
        with pytest.raises(ProvisioningError):
            compiler.recompile(
                PolicyDelta(
                    update_rates=(
                        RateUpdate("z", guarantee=Bandwidth.mb_per_sec(900)),
                    )
                )
            )
        assert compiler.has_session
        unchanged = compiler.recompile(PolicyDelta())
        assert _paths(unchanged) == _paths(base)
        assert unchanged.rates["z"].guarantee == Bandwidth.mb_per_sec(50)
        # A rollback restores the cached component solutions too: nothing
        # is dirty afterwards.
        assert unchanged.statistics.dirty_partitions == 0
        # And the session keeps accepting (feasible) deltas normally.
        result = compiler.recompile(
            PolicyDelta(
                update_rates=(RateUpdate("z", guarantee=Bandwidth.mb_per_sec(40)),)
            )
        )
        assert result.rates["z"].guarantee == Bandwidth.mb_per_sec(40)

    def test_revert_delta_is_a_cache_hit(self):
        """Oscillating deltas (add then revert) must reuse the component
        solutions cached before the add, not re-solve them."""
        topology = figure2_example(capacity=Bandwidth.gbps(2))
        compiler = _compiler(topology, generate_code=False)
        compiler.compile(SOURCE)
        added = Statement(
            "w", _pair_predicate(443), parse_path_expression(".* dpi .*")
        )
        compiler.recompile(
            PolicyDelta(
                add=(DeltaStatement(added, guarantee=Bandwidth.mb_per_sec(10)),)
            )
        )
        reverted = compiler.recompile(PolicyDelta(remove=("w",)))
        assert reverted.statistics.dirty_partitions == 0

    def test_codegen_failure_rolls_back_the_session(self, monkeypatch):
        """recompile() is atomic from the caller's view: a post-solve
        failure (code generation) rolls the session back rather than
        leaving it silently diverged from what the caller observed — and
        once codegen recovers, the same delta applies cleanly."""
        import repro.core.compiler as compiler_module

        topology = figure2_example(capacity=Bandwidth.gbps(2))
        compiler = _compiler(topology)  # generate_code=True
        base = compiler.compile(SOURCE)

        class ExplodingGenerator:
            def __init__(self, topology):
                pass

            def generate(self, *args, **kwargs):
                raise RuntimeError("codegen backend unavailable")

        delta = PolicyDelta(
            update_rates=(RateUpdate("z", guarantee=Bandwidth.mb_per_sec(40)),)
        )
        monkeypatch.setattr(compiler_module, "CodeGenerator", ExplodingGenerator)
        with pytest.raises(RuntimeError):
            compiler.recompile(delta)
        monkeypatch.undo()
        assert compiler.has_session
        unchanged = compiler.recompile(PolicyDelta())
        assert _paths(unchanged) == _paths(base)
        assert unchanged.rates["z"].guarantee == Bandwidth.mb_per_sec(50)
        retried = compiler.recompile(delta)
        assert retried.rates["z"].guarantee == Bandwidth.mb_per_sec(40)
        assert retried.instructions is not None

    def test_unprovisionable_delta_rejected_without_side_effects(self):
        """A guarantee on a statement with no inferable endpoints is
        statically rejected by validation — the session survives."""
        topology = figure2_example(capacity=Bandwidth.gbps(2))
        compiler = _compiler(topology, generate_code=False)
        base = compiler.compile(SOURCE)
        # tcp-only predicate + unconstrained path: endpoints are unknowable.
        vague = Statement(
            "vague", FieldTest("tcp.dst", 9999), parse_path_expression(".*")
        )
        with pytest.raises(ProvisioningError, match="cannot be determined"):
            compiler.recompile(
                PolicyDelta(
                    add=(DeltaStatement(vague, guarantee=Bandwidth.mb_per_sec(10)),)
                )
            )
        assert compiler.has_session
        # Same for a promotion of an endpoint-less best-effort statement.
        compiler.recompile(PolicyDelta(add=(DeltaStatement(vague),)))
        with pytest.raises(ProvisioningError, match="cannot be determined"):
            compiler.recompile(
                PolicyDelta(
                    update_rates=(
                        RateUpdate("vague", guarantee=Bandwidth.mb_per_sec(10)),
                    )
                )
            )
        assert compiler.has_session
        unchanged = compiler.recompile(PolicyDelta(remove=("vague",)))
        assert _paths(unchanged) == _paths(base)

    def test_cap_only_update_keeps_partition_clean(self):
        """The cap never enters the provisioning MIP: changing it must not
        dirty the statement's partition or discard its cached solution."""
        topology = figure2_example(capacity=Bandwidth.gbps(2))
        compiler = _compiler(topology, generate_code=False)
        compiler.compile(SOURCE)
        result = compiler.recompile(
            PolicyDelta(
                update_rates=(
                    RateUpdate(
                        "z",
                        guarantee=Bandwidth.mb_per_sec(50),
                        cap=Bandwidth.mb_per_sec(80),
                    ),
                )
            )
        )
        assert result.rates["z"].cap == Bandwidth.mb_per_sec(80)
        assert result.statistics.dirty_partitions == 0

    def test_merged_best_bound_respects_min_max_objective(self):
        """best_bound across min-max components is a max, not a sum: it can
        never exceed 1.0 for the utilization-fraction objective."""
        from repro.experiments.reprovisioning import pod_tenant_scenario

        scenario = pod_tenant_scenario(arity=4, pairs_per_pod=1)
        compiler = MerlinCompiler(
            topology=scenario.topology,
            overlap="trust",
            add_catch_all=False,
            generate_code=False,
        )
        result = compiler.compile(scenario.policy)
        assert result.statistics.num_partitions == 4
        bound = result.statistics.mip_best_bound
        if bound is not None:
            assert bound <= 1.0 + 1e-6


class TestSinkTreeMaintenance:
    """Sink trees must track the best-effort/unconstrained statement set."""

    def test_sink_trees_follow_unconstrained_best_effort(self):
        topology = figure2_example(capacity=Bandwidth.gbps(2))
        compiler = _compiler(topology, generate_code=False)
        compiler.compile(SOURCE)
        assert not compiler._session.sink_trees
        wild = Statement("w", _pair_predicate(443), parse_path_expression(".*"))
        compiler.recompile(PolicyDelta(add=(DeltaStatement(wild),)))
        assert compiler._session.sink_trees
        compiler.recompile(PolicyDelta(remove=("w",)))
        # From-scratch compile of the remaining (all-guaranteed) policy has
        # no sink trees; the session must drop them too.
        assert not compiler._session.sink_trees

    def test_demotion_to_unconstrained_restores_sink_trees(self):
        topology = figure2_example(capacity=Bandwidth.gbps(2))
        compiler = _compiler(topology, generate_code=False)
        compiler.compile(SOURCE)
        wild = Statement("w", _pair_predicate(443), parse_path_expression(".*"))
        compiler.recompile(
            PolicyDelta(
                add=(DeltaStatement(wild, guarantee=Bandwidth.mb_per_sec(5)),)
            )
        )
        assert not compiler._session.sink_trees  # guaranteed: enters the MIP
        compiler.recompile(PolicyDelta(update_rates=(RateUpdate("w"),)))
        assert compiler._session.sink_trees  # demoted: default forwarding

    def test_catch_all_reappearance_restores_sink_trees(self):
        from repro.predicates.ast import TRUE

        topology = figure2_example(capacity=Bandwidth.gbps(2))
        compiler = MerlinCompiler(
            topology=topology,
            placements=PLACEMENTS,
            overlap="trust",
            generate_code=False,
        )  # add_catch_all=True
        compiler.compile(SOURCE)
        assert compiler._session.sink_trees
        # A guaranteed statement matching all packets displaces the
        # catch-all; no unconstrained best-effort statement remains.
        blanket = Statement("w", TRUE, parse_path_expression("h1 .* h2"))
        compiler.recompile(
            PolicyDelta(
                add=(DeltaStatement(blanket, guarantee=Bandwidth.mb_per_sec(5)),)
            )
        )
        assert not compiler._session.sink_trees
        # Removing it brings the catch-all (and its sink trees) back.
        compiler.recompile(PolicyDelta(remove=("w",)))
        assert compiler._session.generated_default
        assert compiler._session.sink_trees


class TestSolverProtocolCompatibility:
    def test_custom_solver_without_warm_start_parameter(self):
        from repro.lp import ScipySolver

        class LegacySolver:
            """A backend written against the pre-warm-start protocol."""

            def solve(self, model):
                return ScipySolver().solve(model)

        topology = figure2_example(capacity=Bandwidth.gbps(2))
        compiler = _compiler(topology, generate_code=False, solver=LegacySolver())
        compiler.compile(SOURCE)
        # A rate update takes the warm-started resolve path; the warm start
        # must be dropped, not passed to the legacy backend.
        result = compiler.recompile(
            PolicyDelta(
                update_rates=(RateUpdate("z", guarantee=Bandwidth.mb_per_sec(40)),)
            )
        )
        assert result.rates["z"].guarantee == Bandwidth.mb_per_sec(40)


class TestNegotiatorTrigger:
    def _root(self, topology):
        policy = parse_policy(SOURCE, topology=topology)
        compiler = _compiler(topology, generate_code=False)
        compiler.compile(policy)
        return Negotiator(name="root", policy=policy, compiler=compiler)

    def test_path_refinement_triggers_reprovision(self):
        topology = figure2_example(capacity=Bandwidth.gbps(2))
        root = self._root(topology)
        refined = parse_policy(
            SOURCE.replace(".* dpi .* ;", ".* m1 dpi .* ;"), topology=topology
        )
        report = root.propose(refined)
        assert report.valid
        assert root.last_reprovision is not None
        assert "m1" in root.last_reprovision.paths["x"].path

    def test_rate_refinement_triggers_update(self):
        topology = figure2_example(capacity=Bandwidth.gbps(2))
        root = self._root(topology)
        refined = parse_policy(
            SOURCE.replace("min(z, 50MB/s)", "min(z, 40MB/s)"), topology=topology
        )
        assert root.propose(refined).valid
        assert root.last_reprovision.rates["z"].guarantee == Bandwidth.mb_per_sec(40)

    def test_identical_refinement_does_not_recompile(self):
        topology = figure2_example(capacity=Bandwidth.gbps(2))
        root = self._root(topology)
        assert root.propose(parse_policy(SOURCE, topology=topology)).valid
        assert root.last_reprovision is None

    def test_cap_reallocation_stays_recompile_free(self):
        topology = figure2_example(capacity=Bandwidth.gbps(2))
        root = self._root(topology)
        report = root.reallocate_caps({"x": Bandwidth.mb_per_sec(10)})
        assert report.valid
        assert root.last_reprovision is None

    def test_child_finds_compiler_at_root(self):
        topology = figure2_example(capacity=Bandwidth.gbps(2))
        root = self._root(topology)
        child = root.delegate_to("tenant", root.policy.statements[1].predicate)
        refined = child.policy.with_formula(
            formula_and(
                *[
                    clause
                    for clause in formula_clauses(child.policy.formula)
                    if not (
                        isinstance(clause, FMin)
                        and clause.term.identifiers == ("z",)
                    )
                ],
                FMin(BandwidthTerm(identifiers=("z",)), Bandwidth.mb_per_sec(30)),
            )
        )
        assert child.propose(refined).valid
        assert child.last_reprovision is not None
        assert root.last_reprovision is child.last_reprovision

    def test_child_path_refinement_keeps_global_predicate(self):
        """A delegated tenant's path refinement must not splice its
        scope-narrowed predicate into the global session."""
        topology = figure2_example(capacity=Bandwidth.gbps(2))
        root = self._root(topology)
        global_z = root.compiler.session_statement("z").predicate
        # The scope keeps z (tcp.dst = 80) and drops x (tcp.dst = 20).
        child = root.delegate_to("tenant", FieldTest("tcp.dst", 80))
        assert {s.identifier for s in child.policy.statements} == {"z"}
        refined = child.policy.with_statements(
            tuple(
                Statement(
                    s.identifier,
                    s.predicate,
                    parse_path_expression(".* m1 dpi .* nat .*"),
                )
                for s in child.policy.statements
            )
        )
        assert child.propose(refined).valid
        # The path refinement landed...
        assert "m1" in child.last_reprovision.paths["z"].path
        # ...but the session's predicate is still the root's full one, not
        # the tenant's (z AND tcp.dst=80) projection.
        assert root.compiler.session_statement("z").predicate == global_z

    def test_child_path_refinement_keeps_global_guarantee(self):
        """Delegation drops bandwidth clauses that reference out-of-scope
        identifiers, so the tenant's localized view of a statement may show
        no guarantee where the global session reserves one.  A tenant path
        refinement must not silently demote the statement to best-effort."""
        topology = figure2_example(capacity=Bandwidth.gbps(2))
        base = parse_policy(SOURCE, topology=topology)
        # One aggregate clause across both statements: localize() splits it
        # 20 MB/s each; delegation of a scope covering only z drops it.
        policy = base.with_formula(
            formula_and(
                FMin(BandwidthTerm(identifiers=("x", "z")), Bandwidth.mb_per_sec(40))
            )
        )
        compiler = _compiler(topology, generate_code=False)
        compiler.compile(policy)
        root = Negotiator(name="root", policy=policy, compiler=compiler)
        child = root.delegate_to("tenant", FieldTest("tcp.dst", 80))
        assert {s.identifier for s in child.policy.statements} == {"z"}
        assert not formula_clauses(child.policy.formula)  # clause dropped
        refined = child.policy.with_statements(
            tuple(
                Statement(
                    s.identifier,
                    s.predicate,
                    parse_path_expression(".* m1 dpi .* nat .*"),
                )
                for s in child.policy.statements
            )
        )
        assert child.propose(refined).valid
        result = child.last_reprovision
        # The refined path landed with the global 20 MB/s guarantee intact.
        assert "m1" in result.paths["z"].path
        assert result.rates["z"].guarantee == Bandwidth.mb_per_sec(20)
        assert result.paths["z"].guaranteed_rate == Bandwidth.mb_per_sec(20)

    def test_child_cap_refinement_keeps_global_guarantee(self):
        """A cap-only tenant refinement must not demote a statement whose
        guarantee clause was dropped at delegation: rates merge per field,
        so the changed cap lands while the session guarantee survives."""
        from repro.core.ast import FMax

        topology = figure2_example(capacity=Bandwidth.gbps(2))
        base = parse_policy(SOURCE, topology=topology)
        mb = Bandwidth.mb_per_sec
        policy = base.with_formula(
            formula_and(
                FMin(BandwidthTerm(identifiers=("x", "z")), mb(40)),
                FMax(BandwidthTerm(identifiers=("z",)), mb(80)),
            )
        )
        compiler = _compiler(topology, generate_code=False)
        compiler.compile(policy)
        root = Negotiator(name="root", policy=policy, compiler=compiler)
        # Scope keeps z only: the min(x+z) clause is dropped, max(z) survives.
        child = root.delegate_to("tenant", FieldTest("tcp.dst", 80))
        assert {s.identifier for s in child.policy.statements} == {"z"}
        refined = child.policy.with_formula(
            formula_and(FMax(BandwidthTerm(identifiers=("z",)), mb(60)))
        )
        assert child.propose(refined).valid
        result = child.last_reprovision
        # The cap refinement landed; the 20 MB/s guarantee (half of the
        # aggregate 40 MB/s clause) was not silently released.
        assert result.rates["z"].cap == mb(60)
        assert result.rates["z"].guarantee == mb(20)
        assert result.paths["z"].guaranteed_rate == mb(20)

    def test_child_statement_split_refused_incrementally(self):
        """A tenant splitting a statement (a verified, coverage-preserving
        refinement) cannot be applied incrementally: removing the original
        identifier would drop the traffic the global session covers beyond
        the tenant's scope-narrowed projection."""
        from repro.errors import DelegationError
        from repro.predicates.ast import pred_not

        topology = figure2_example(capacity=Bandwidth.gbps(2))
        root = self._root(topology)
        global_z = root.compiler.session_statement("z").predicate
        # A strictly narrowing scope: the child's z covers only tcp.src=7777.
        child = root.delegate_to("tenant", FieldTest("tcp.src", 7777))
        by_id = {s.identifier: s for s in child.policy.statements}
        z = by_id["z"]
        split = (
            Statement("z1", pred_and(z.predicate, FieldTest("vlan.id", 10)), z.path),
            Statement(
                "z2", pred_and(z.predicate, pred_not(FieldTest("vlan.id", 10))), z.path
            ),
        )
        mb = Bandwidth.mb_per_sec
        refined = Policy(
            statements=tuple(
                s for s in child.policy.statements if s.identifier != "z"
            )
            + split,
            formula=formula_and(
                FMin(BandwidthTerm(identifiers=("x",)), mb(25)),
                FMin(BandwidthTerm(identifiers=("z1",)), mb(25)),
                FMin(BandwidthTerm(identifiers=("z2",)), mb(25)),
            ),
        )
        original = child.policy
        with pytest.raises(DelegationError):
            child.propose(refined)
        # Withdrawn, and the global session is untouched and still active.
        assert child.policy is original
        assert root.compiler.has_session
        assert root.compiler.session_statement("z").predicate == global_z

    def test_failed_reprovision_withdraws_refinement(self, monkeypatch):
        topology = figure2_example(capacity=Bandwidth.gbps(2))
        root = self._root(topology)
        original = root.policy
        refined = parse_policy(
            SOURCE.replace("min(z, 50MB/s)", "min(z, 40MB/s)"),
            topology=topology,
        )

        def no_capacity(delta):
            raise ProvisioningError("network lacks capacity")

        monkeypatch.setattr(root.compiler, "recompile", no_capacity)
        with pytest.raises(ProvisioningError):
            root.propose(refined)
        # The refinement was withdrawn, not half-adopted.
        assert root.policy is original
        assert root.last_reprovision is None
        # Once capacity exists again the same refinement lands normally.
        monkeypatch.undo()
        assert root.propose(refined).valid
        assert root.policy is refined
        assert root.last_reprovision is not None

    def test_unattached_negotiator_skips_reprovisioning(self):
        topology = figure2_example(capacity=Bandwidth.gbps(2))
        policy = parse_policy(SOURCE, topology=topology)
        root = Negotiator(name="root", policy=policy)
        refined = parse_policy(
            SOURCE.replace("min(z, 50MB/s)", "min(z, 40MB/s)"), topology=topology
        )
        assert root.propose(refined).valid
        assert root.last_reprovision is None
