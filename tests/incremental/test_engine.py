"""Tests for the incremental re-provisioning engine (delta compilation)."""

import pytest

from repro.core.localization import localize
from repro.core.logical import build_logical_topology, infer_endpoints
from repro.core.parser import parse_policy
from repro.core.preprocessor import preprocess
from repro.core.provisioning import build_provisioning_model, provision
from repro.errors import ProvisioningError
from repro.experiments.reprovisioning import pod_tenant_scenario
from repro.incremental import IncrementalProvisioner
from repro.lp import BranchAndBoundSolver
from repro.topology.generators import figure2_example
from repro.units import Bandwidth

SOURCE = """
[ x : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 20) -> .* dpi .* ;
  z : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 80) -> .* dpi .* nat .* ],
min(x, 50MB/s) and min(z, 100MB/s)
"""
PLACEMENTS = {"dpi": ("h1", "h2", "m1"), "nat": ("m1",)}


def _figure2_inputs():
    topology = figure2_example(capacity=Bandwidth.gbps(2))
    policy = preprocess(
        parse_policy(SOURCE, topology=topology), overlap="trust", add_catch_all=False
    ).policy
    rates = localize(policy)
    logical = {}
    for statement in policy.statements:
        source, destination = infer_endpoints(statement, topology)
        logical[statement.identifier] = build_logical_topology(
            statement, topology, PLACEMENTS, source=source, destination=destination
        )
    return topology, policy, rates, logical


def _engine(topology, policy, rates, logical, **kwargs):
    engine = IncrementalProvisioner(topology, PLACEMENTS, **kwargs)
    for statement in policy.statements:
        engine.add_statement(
            statement,
            rates[statement.identifier].guarantee,
            logical=logical[statement.identifier],
        )
    return engine

def _paths(result):
    return {identifier: p.path for identifier, p in result.paths.items()}


def _reservations(result):
    return {key: value.bps_value for key, value in result.link_reservations.items()}


def _canonical(model):
    constraints = {}
    for constraint in model.constraints():
        constraints[constraint.name] = (
            tuple(
                sorted(
                    (variable.name, coefficient)
                    for variable, coefficient in constraint.expression.coefficients.items()
                )
            ),
            constraint.expression.constant,
            constraint.sense.value,
        )
    objective = tuple(
        sorted(
            (variable.name, coefficient)
            for variable, coefficient in model.objective.coefficients.items()
        )
    )
    variables = tuple(
        sorted(
            (v.name, v.lower, v.upper, v.is_integer) for v in model.variables()
        )
    )
    return constraints, objective, variables


class TestDeltaOperations:
    def test_resolve_matches_from_scratch_provision(self):
        topology, policy, rates, logical = _figure2_inputs()
        engine = _engine(topology, policy, rates, logical)
        incremental = engine.resolve()
        full = provision(policy.statements, logical, rates, topology, PLACEMENTS)
        assert _paths(incremental) == _paths(full)
        assert _reservations(incremental) == _reservations(full)

    def test_remove_then_matches_reduced_provision(self):
        topology, policy, rates, logical = _figure2_inputs()
        engine = _engine(topology, policy, rates, logical)
        engine.resolve()
        engine.remove_statement("z")
        incremental = engine.resolve()
        reduced = provision(
            policy.statements[:1], logical, rates, topology, PLACEMENTS
        )
        assert _paths(incremental) == _paths(reduced)
        assert _reservations(incremental) == _reservations(reduced)

    def test_update_rates_changes_reservation(self):
        topology, policy, rates, logical = _figure2_inputs()
        engine = _engine(topology, policy, rates, logical)
        before = engine.resolve()
        engine.update_rates("x", Bandwidth.mb_per_sec(25))
        after = engine.resolve()
        # Both statements enter at h1, so the h1-s1 reservation drops by
        # exactly the guarantee reduction (25 MB/s = 200 Mbps).
        key = ("h1", "s1")
        assert before.link_reservations[key].bps_value - after.link_reservations[
            key
        ].bps_value == pytest.approx(Bandwidth.mb_per_sec(25).bps_value)
        assert after.paths["x"].guaranteed_rate == Bandwidth.mb_per_sec(25)

    def test_readd_after_remove_reuses_identifier(self):
        topology, policy, rates, logical = _figure2_inputs()
        engine = _engine(topology, policy, rates, logical)
        engine.resolve()
        engine.remove_statement("z")
        engine.add_statement(
            policy.statements[1], rates["z"].guarantee, logical=logical["z"]
        )
        again = engine.resolve()
        full = provision(policy.statements, logical, rates, topology, PLACEMENTS)
        assert _paths(again) == _paths(full)

    def test_empty_engine_resolves_empty(self):
        topology, policy, rates, logical = _figure2_inputs()
        engine = IncrementalProvisioner(topology, PLACEMENTS)
        result = engine.resolve()
        assert result.paths == {}
        assert result.num_partitions == 0

    def test_duplicate_add_rejected(self):
        topology, policy, rates, logical = _figure2_inputs()
        engine = _engine(topology, policy, rates, logical)
        with pytest.raises(ProvisioningError):
            engine.add_statement(
                policy.statements[0], rates["x"].guarantee, logical=logical["x"]
            )

    def test_unknown_remove_and_update_rejected(self):
        topology, policy, rates, logical = _figure2_inputs()
        engine = IncrementalProvisioner(topology, PLACEMENTS)
        with pytest.raises(ProvisioningError):
            engine.remove_statement("ghost")
        with pytest.raises(ProvisioningError):
            engine.update_rates("ghost", Bandwidth.mbps(1))

    def test_non_positive_guarantee_rejected(self):
        topology, policy, rates, logical = _figure2_inputs()
        engine = IncrementalProvisioner(topology, PLACEMENTS)
        with pytest.raises(ProvisioningError):
            engine.add_statement(policy.statements[0], Bandwidth(0.0))


class TestLazyLiveModel:
    def test_live_model_equals_fresh_build(self):
        """After any delta history the (lazily materialized) live model must
        be coefficient-identical (up to row/column order) to a from-scratch
        build of the engine's current statements and topologies."""
        topology, policy, rates, logical = _figure2_inputs()
        engine = _engine(topology, policy, rates, logical)
        # Churn: remove, re-add, update rates.
        engine.remove_statement("z")
        engine.add_statement(
            policy.statements[1], rates["z"].guarantee, logical=logical["z"]
        )
        engine.update_rates("x", Bandwidth.mb_per_sec(40))

        current_rates = {
            identifier: engine.rates_for(identifier)
            for identifier in engine.statement_ids()
        }
        current_logical = {
            identifier: engine.logical_for(identifier)
            for identifier in engine.statement_ids()
        }
        fresh = build_provisioning_model(
            list(policy.statements), current_logical, current_rates, topology
        )
        assert _canonical(engine.live_model) == _canonical(fresh.model)

    def test_solve_live_agrees_with_resolve(self):
        topology, policy, rates, logical = _figure2_inputs()
        engine = _engine(topology, policy, rates, logical)
        resolved = engine.resolve()
        live = engine.solve_live()
        assert live.status.has_solution
        # The live (monolithic) model's r_max equals the merged maximum.
        assert live.value_of(
            engine.live_model.variable("r_max")
        ) == pytest.approx(resolved.max_utilization, abs=1e-6)

    def test_delta_path_never_materializes_the_live_model(self):
        """The counter/spy acceptance test: session setup and deltas are
        bookkeeping only — the spliced global model is built exactly when
        solve_live() asks for it, and memoized until the next delta."""
        topology, policy, rates, logical = _figure2_inputs()
        engine = _engine(topology, policy, rates, logical)
        assert engine.live_materializations == 0
        engine.resolve()
        engine.update_rates("x", Bandwidth.mb_per_sec(40))
        engine.remove_statement("z")
        engine.add_statement(
            policy.statements[1], rates["z"].guarantee, logical=logical["z"]
        )
        engine.resolve()
        assert engine.live_materializations == 0
        engine.solve_live()
        assert engine.live_materializations == 1
        engine.solve_live()  # no intervening delta: memoized
        assert engine.live_materializations == 1
        engine.update_rates("x", Bandwidth.mb_per_sec(30))
        engine.solve_live()  # the delta invalidated the memo
        assert engine.live_materializations == 2


class TestCachingAndPartitions:
    def test_clean_resolve_reuses_everything(self):
        scenario = pod_tenant_scenario(arity=4, pairs_per_pod=1)
        engine = IncrementalProvisioner(scenario.topology)
        rates = localize(scenario.policy)
        for statement in scenario.policy.statements:
            engine.add_statement(statement, rates[statement.identifier].guarantee)
        first = engine.resolve()
        assert first.num_partitions == 4
        assert first.solve_statistics["partitions_dirty"] == 4.0
        second = engine.resolve()
        assert second.solve_statistics["partitions_dirty"] == 0.0
        assert second.solve_statistics["partitions_reused"] == 4.0
        assert _paths(second) == _paths(first)

    def test_update_dirties_only_its_partition(self):
        scenario = pod_tenant_scenario(arity=4, pairs_per_pod=1)
        engine = IncrementalProvisioner(scenario.topology)
        rates = localize(scenario.policy)
        for statement in scenario.policy.statements:
            engine.add_statement(statement, rates[statement.identifier].guarantee)
        engine.resolve()
        engine.update_rates("p0s0", Bandwidth.mbps(25))
        result = engine.resolve()
        assert result.solve_statistics["partitions_dirty"] == 1.0
        assert result.solve_statistics["partitions_reused"] == 3.0

    def test_process_pool_matches_serial(self):
        scenario = pod_tenant_scenario(arity=4, pairs_per_pod=1)
        rates = localize(scenario.policy)
        serial = IncrementalProvisioner(scenario.topology, max_workers=0)
        pooled = IncrementalProvisioner(scenario.topology, max_workers=2)
        for statement in scenario.policy.statements:
            serial.add_statement(statement, rates[statement.identifier].guarantee)
            pooled.add_statement(statement, rates[statement.identifier].guarantee)
        serial_result = serial.resolve()
        pooled_result = pooled.resolve()
        assert _paths(pooled_result) == _paths(serial_result)
        assert _reservations(pooled_result) == _reservations(serial_result)

    def test_prime_from_full_provisioning(self):
        topology, policy, rates, logical = _figure2_inputs()
        full = provision(policy.statements, logical, rates, topology, PLACEMENTS)
        engine = _engine(topology, policy, rates, logical)
        adopted = engine.prime(full.partition_solutions)
        assert adopted == full.num_partitions
        result = engine.resolve()
        assert result.solve_statistics["partitions_dirty"] == 0.0
        assert _paths(result) == _paths(full)


class TestIncumbentHygiene:
    def test_removed_statement_values_pruned(self):
        """remove_statement drops the statement's incumbent values so a
        re-add under the same identifier can never project stale edges."""
        topology, policy, rates, logical = _figure2_inputs()
        engine = _engine(topology, policy, rates, logical)
        engine.resolve()
        assert any(name.startswith("x__z__") for name in engine._last_values)
        engine.remove_statement("z")
        assert not any(name.startswith("x__z__") for name in engine._last_values)


class TestWarmStartedResolve:
    def test_branch_and_bound_consumes_projected_incumbent(self):
        topology, policy, rates, logical = _figure2_inputs()
        engine = _engine(
            topology, policy, rates, logical, solver=BranchAndBoundSolver()
        )
        engine.resolve()
        # A rate decrease keeps the previous paths feasible: the projected
        # incumbent must be accepted by the solver.
        engine.update_rates("z", Bandwidth.mb_per_sec(80))
        result = engine.resolve()
        (solution,) = [
            s for s in result.partition_solutions if "z" in s.spec.statement_ids
        ]
        assert solution.statistics.get("warm_start_used") == 1.0
