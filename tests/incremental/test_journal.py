"""The undo journal: O(1) checkpoints proven byte-identical to shadow copies.

Three layers of coverage:

* unit tests of :class:`~repro.incremental.journal.UndoJournal` itself
  (stacked marks, stale-mark detection, truncation on release, inactive
  no-op recording, list-index-preserving undo),
* a randomized side-by-side property test running the journal *and* the
  legacy :class:`~repro.incremental.engine.EngineCheckpoint` shadow copy
  over the same random delta streams and asserting the journal rollback
  restores every engine dict byte-identical to the copies,
* nested-transaction and rollback-after-topology-delta cases through the
  compiler session / facade, where rollback must also restore statement
  *order* (sequence stamps) so regenerated instructions stay identical.
"""

import random

import pytest

from repro.core import MerlinCompiler
from repro.core.localization import localize
from repro.errors import ProvisioningError
from repro.incremental import (
    DeltaStatement,
    IncrementalProvisioner,
    JournalError,
    PolicyDelta,
    RateUpdate,
    TopologyDelta,
    UndoJournal,
)
from repro.units import Bandwidth

from test_equivalence_property import _RandomPolicyChurn


class TestUndoJournal:
    def test_mark_rollback_release_roundtrip(self):
        journal = UndoJournal()
        data = {"a": 1}
        mark = journal.mark()
        journal.set_item(data, "a", 2)
        journal.set_item(data, "b", 3)
        journal.del_item(data, "a")
        assert data == {"b": 3}
        assert journal.rollback(mark) == 3
        assert data == {"a": 1}
        journal.release(mark)
        assert len(journal) == 0

    def test_recording_is_noop_without_marks(self):
        journal = UndoJournal()
        data = {}
        journal.set_item(data, "x", 1)
        journal.del_item(data, "x")
        journal.set_attr(journal, "_serial", journal._serial)
        journal.list_append([], 1)
        assert len(journal) == 0
        assert not journal.active

    def test_stacked_marks_rollback_to_earlier_invalidates_later(self):
        journal = UndoJournal()
        data = {}
        outer = journal.mark()
        journal.set_item(data, "a", 1)
        inner = journal.mark()
        journal.set_item(data, "b", 2)
        journal.rollback(outer)
        assert data == {}
        with pytest.raises(JournalError):
            journal.rollback(inner)
        # Releasing the invalidated mark is a harmless no-op.
        journal.release(inner)
        journal.release(outer)

    def test_rolled_back_mark_stays_live_for_retry(self):
        journal = UndoJournal()
        data = {}
        mark = journal.mark()
        journal.set_item(data, "a", 1)
        journal.rollback(mark)
        journal.set_item(data, "a", 2)
        journal.rollback(mark)
        assert data == {}
        journal.release(mark)

    def test_release_truncates_only_below_outstanding_marks(self):
        journal = UndoJournal()
        data = {}
        outer = journal.mark()
        journal.set_item(data, "a", 1)
        inner = journal.mark()
        journal.set_item(data, "b", 2)
        journal.release(inner)
        # The outer mark still needs both entries.
        assert len(journal) == 2
        journal.rollback(outer)
        assert data == {}
        journal.release(outer)
        assert len(journal) == 0

    def test_list_undo_restores_position(self):
        journal = UndoJournal()
        items = ["a", "b", "c"]
        mark = journal.mark()
        journal.list_remove(items, "b")
        journal.list_append(items, "d")
        assert items == ["a", "c", "d"]
        journal.rollback(mark)
        assert items == ["a", "b", "c"]
        journal.release(mark)

    def test_update_items_bulk_undo(self):
        journal = UndoJournal()
        data = {"a": 1, "b": 2}
        mark = journal.mark()
        journal.update_items(data, {"a": 10, "c": 30})
        assert data == {"a": 10, "b": 2, "c": 30}
        # One journal entry per bulk update, not per key.
        assert len(journal) == 1
        journal.rollback(mark)
        assert data == {"a": 1, "b": 2}

    def test_set_attr_undo(self):
        class Box:
            value = 1

        box = Box()
        journal = UndoJournal()
        mark = journal.mark()
        journal.set_attr(box, "value", 2)
        journal.set_attr(box, "value", 3)
        journal.rollback(mark)
        assert box.value == 1


def _engine_state(engine):
    """Every piece of engine session state a transaction must protect."""
    return {
        "statements": dict(engine._statements),
        "logical": dict(engine._logical),
        "logical_full": dict(engine._logical_full),
        "rates": dict(engine._rates),
        "footprints": dict(engine._footprints),
        "revisions": dict(engine._revisions),
        "next_revision": engine._next_revision,
        "cache": dict(engine._cache),
        "last_values": dict(engine._last_values),
        "topology": engine.topology,
    }


def _snapshot_state(saved):
    """The same shape, from a legacy EngineCheckpoint shadow copy."""
    return {
        "statements": dict(saved.statements),
        "logical": dict(saved.logical),
        "logical_full": dict(saved.logical_full),
        "rates": dict(saved.rates),
        "footprints": dict(saved.footprints),
        "revisions": dict(saved.revisions),
        "next_revision": saved.next_revision,
        "cache": dict(saved.cache),
        "last_values": dict(saved.last_values),
        "topology": saved.topology,
    }


def _apply_engine_op(engine, op):
    kind = op[0]
    if kind == "add":
        engine.add_statement(op[1], op[2])
    elif kind == "remove":
        engine.remove_statement(op[1])
    else:
        engine.update_rates(op[1], op[2])


@pytest.mark.parametrize("seed", range(3))
def test_journal_rollback_matches_legacy_snapshot(seed):
    """Side by side: for random delta streams, a journal rollback restores
    the engine byte-identical to the legacy EngineCheckpoint shadow copy
    captured at the same instant (dict contents, revision counter, solution
    cache, and warm-start incumbents all included)."""
    rng = random.Random(seed)
    churn = _RandomPolicyChurn(seed + 900)
    scenario = churn.scenario
    rates = localize(scenario.policy)
    engine = IncrementalProvisioner(scenario.topology)
    for statement in scenario.policy.statements:
        engine.add_statement(statement, rates[statement.identifier].guarantee)
    engine.resolve()

    for _ in range(5):
        population = dict(churn.active)
        legacy = engine.snapshot()  # the old copying checkpoint
        mark = engine.checkpoint()  # the journal transaction
        for _ in range(rng.randint(1, 4)):
            _apply_engine_op(engine, churn.next_op())
        if rng.random() < 0.5:
            engine.resolve()  # touches cache + incumbents mid-transaction
        engine.restore(mark)
        engine.release(mark)
        churn.active = population
        assert _engine_state(engine) == _snapshot_state(legacy)
        # Interleave a committed op so rounds start from fresh states.
        _apply_engine_op(engine, churn.next_op())
    engine.resolve()


def test_nested_engine_transactions():
    """Inner rollback keeps outer-transaction changes; outer rollback takes
    everything back to the outer mark."""
    churn = _RandomPolicyChurn(42)
    scenario = churn.scenario
    rates = localize(scenario.policy)
    engine = IncrementalProvisioner(scenario.topology)
    for statement in scenario.policy.statements:
        engine.add_statement(statement, rates[statement.identifier].guarantee)

    base = _engine_state(engine)
    outer = engine.checkpoint()
    engine.update_rates("p0s0", Bandwidth.mbps(10))
    mid = _engine_state(engine)

    inner = engine.checkpoint()
    engine.remove_statement("p1s0")
    engine.update_rates("p0s0", Bandwidth.mbps(75))
    engine.restore(inner)
    engine.release(inner)
    assert _engine_state(engine) == mid

    # Inner commit keeps its changes through to the outer rollback.
    inner2 = engine.checkpoint()
    engine.update_rates("p0s0", Bandwidth.mbps(50))
    engine.release(inner2)
    assert engine.rates_for("p0s0").guarantee.bps_value == Bandwidth.mbps(50).bps_value

    engine.restore(outer)
    engine.release(outer)
    assert _engine_state(engine) == base


def test_legacy_snapshot_restore_invalidates_journal_marks():
    """Restoring a legacy shadow copy rebinds the dicts the journal's undo
    closures reference, so outstanding marks must go stale loudly."""
    churn = _RandomPolicyChurn(7)
    scenario = churn.scenario
    rates = localize(scenario.policy)
    engine = IncrementalProvisioner(scenario.topology)
    for statement in scenario.policy.statements:
        engine.add_statement(statement, rates[statement.identifier].guarantee)

    legacy = engine.snapshot()
    mark = engine.checkpoint()
    engine.update_rates("p0s0", Bandwidth.mbps(10))
    engine.restore(legacy)
    with pytest.raises(JournalError):
        engine.restore(mark)


def _fresh_compiler(policy, topology):
    compiler = MerlinCompiler(
        topology=topology,
        overlap="trust",
        add_catch_all=False,
        generate_code=True,
    )
    compiler.compile(policy)
    compiler.prepare_incremental()
    return compiler


def test_rollback_after_topology_delta_is_byte_identical():
    """A failing policy delta after a committed topology delta rolls back to
    exactly the degraded-topology state: a mirror session that applied only
    the topology delta produces identical instructions."""
    churn = _RandomPolicyChurn(11)
    scenario = churn.scenario
    policy = churn.final_policy()
    pod = scenario.pods[0]
    # An intra-pod edge->aggregation link: redundant (the other aggregation
    # switch survives), so the failure re-routes instead of rejecting.
    failed_link = tuple(sorted((pod["edge"][0], pod["aggregation"][0])))

    tested = _fresh_compiler(policy, scenario.topology)
    mirror = _fresh_compiler(policy, scenario.topology)

    fail = TopologyDelta(fail_links=(failed_link,))
    tested.recompile(fail)
    mirror.recompile(fail)

    # A guarantee beyond every link's capacity: validation passes, the
    # component solve is infeasible, the transaction must roll back — on
    # top of the already-failed link.
    statement, _ = next(iter(churn.active.values()))
    doomed = PolicyDelta(
        update_rates=(RateUpdate(statement.identifier, Bandwidth.gbps(50)),)
    )
    with pytest.raises(ProvisioningError):
        tested.recompile(doomed)
    assert tested.has_session
    assert tested._session.failed_links == frozenset({failed_link})

    left = tested.recompile(PolicyDelta())
    right = mirror.recompile(PolicyDelta())
    assert left.instructions == right.instructions
    assert {i: p.path for i, p in left.paths.items()} == {
        i: p.path for i, p in right.paths.items()
    }


def test_statement_order_survives_rollback():
    """Undoing a mid-dict deletion re-inserts at the dict's end; the
    sequence stamps must still regenerate instructions in the original
    statement order (VLAN/queue allocation is order-sensitive)."""
    churn = _RandomPolicyChurn(23)
    scenario = churn.scenario
    policy = churn.final_policy()
    tested = _fresh_compiler(policy, scenario.topology)
    mirror = _fresh_compiler(policy, scenario.topology)

    # Remove a statement from the *middle* of the population and add one,
    # then fail at solve time: the rollback re-inserts the removed
    # statement after the surviving ones in raw dict order.
    identifiers = list(churn.active)
    victim = identifiers[len(identifiers) // 2]
    doomed_statement = churn._fresh_statement()
    doomed = PolicyDelta(
        remove=(victim,),
        add=(DeltaStatement(doomed_statement, guarantee=Bandwidth.gbps(50)),),
    )
    with pytest.raises(ProvisioningError):
        tested.recompile(doomed)

    left = tested.recompile(PolicyDelta())
    right = mirror.recompile(PolicyDelta())
    assert tuple(s.identifier for s in left.policy.statements) == tuple(
        s.identifier for s in right.policy.statements
    )
    assert left.instructions == right.instructions


class TestNoopShortCircuit:
    def test_empty_delta_skips_checkpoint_and_solve(self):
        churn = _RandomPolicyChurn(3)
        compiler = _fresh_compiler(churn.final_policy(), churn.scenario.topology)
        session = compiler._session
        baseline = compiler.recompile(
            PolicyDelta(update_rates=(RateUpdate("p0s0", Bandwidth.mbps(25)),))
        )

        def explode():  # resolve must not be called for a no-op
            raise AssertionError("no-op delta reached the solver")

        session.engine.resolve = explode
        result = compiler.recompile(PolicyDelta())
        assert len(session.journal) == 0
        assert not session.journal.active
        assert result.statistics.dirty_partitions == 0
        assert result.statistics.total_seconds == 0.0
        assert result.instructions == baseline.instructions
        assert {i: p.path for i, p in result.paths.items()} == {
            i: p.path for i, p in baseline.paths.items()
        }

        empty_topology = compiler.recompile(TopologyDelta())
        assert empty_topology.instructions == baseline.instructions
