"""Tests for union-find partitioning of statements by link footprint."""

from repro.incremental.partition import PartitionSpec, UnionFind, partition_statements
from repro.incremental.solve import PartitionSolution, merge_partition_solutions
from repro.core.provisioning import PathSelectionHeuristic
from repro.lp.result import SolveStatus
from repro.topology.generators import figure2_example
from repro.units import Bandwidth


def _solution(name, objective, bound, status=SolveStatus.OPTIMAL.value):
    return PartitionSolution(
        spec=PartitionSpec(statement_ids=(name,), links=()),
        location_paths={},
        fractions={},
        values_by_name={},
        status=status,
        objective=objective,
        statistics={"best_bound": bound, "gap": abs(objective - bound)},
    )


class TestMergedGap:
    """The merged gap is recomputed from merged incumbent and bound, not
    max-ed across components (which misstates it in both directions)."""

    def _merge(self, solutions, heuristic):
        return merge_partition_solutions(
            solutions,
            {},
            {},
            figure2_example(capacity=Bandwidth.gbps(1)),
            {},
            lp_construction_seconds=0.0,
            lp_solve_seconds=0.0,
            heuristic=heuristic,
        )

    def test_min_max_optimal_dominant_closes_gap(self):
        # A: optimal at 0.9; B: feasible at 0.5 with bound 0.4 (gap 0.1).
        # Merged incumbent max=0.9 equals merged bound max(0.9, 0.4)=0.9:
        # the true merged gap is 0, not B's 0.1.
        merged = self._merge(
            [
                _solution("a", 0.9, 0.9),
                _solution("b", 0.5, 0.4, status=SolveStatus.FEASIBLE.value),
            ],
            PathSelectionHeuristic.MIN_MAX_RATIO,
        )
        assert merged.solve_statistics["best_bound"] == 0.9
        assert merged.solve_statistics["gap"] == 0.0

    def test_weighted_sum_gaps_accumulate(self):
        # Two components each with gap 0.1: the summed objective is 2.0
        # against a summed bound of 1.8 — the true gap is 0.2, not 0.1.
        merged = self._merge(
            [
                _solution("a", 1.0, 0.9, status=SolveStatus.FEASIBLE.value),
                _solution("b", 1.0, 0.9, status=SolveStatus.FEASIBLE.value),
            ],
            PathSelectionHeuristic.WEIGHTED_SHORTEST_PATH,
        )
        assert merged.solve_statistics["best_bound"] == 1.8
        assert abs(merged.solve_statistics["gap"] - 0.2) < 1e-12


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind()
        uf.add("a")
        uf.add("b")
        assert uf.find("a") != uf.find("b")

    def test_union_merges(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.find("a") == uf.find("c")

    def test_disjoint_groups_stay_apart(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("x", "y")
        assert uf.find("a") != uf.find("x")


class TestPartitionStatements:
    def test_disjoint_footprints_yield_separate_components(self):
        specs = partition_statements(
            {
                "s1": {("a", "b")},
                "s2": {("c", "d")},
            }
        )
        assert [spec.statement_ids for spec in specs] == [("s1",), ("s2",)]

    def test_shared_link_merges_components(self):
        specs = partition_statements(
            {
                "s1": {("a", "b"), ("b", "c")},
                "s2": {("b", "c"), ("c", "d")},
                "s3": {("x", "y")},
            }
        )
        assert [spec.statement_ids for spec in specs] == [("s1", "s2"), ("s3",)]
        merged = specs[0]
        assert merged.links == (("a", "b"), ("b", "c"), ("c", "d"))

    def test_transitive_coupling(self):
        # s1-s2 share one link, s2-s3 another: all three are one component.
        specs = partition_statements(
            {
                "s1": {("a", "b")},
                "s2": {("a", "b"), ("c", "d")},
                "s3": {("c", "d")},
            }
        )
        assert len(specs) == 1
        assert specs[0].statement_ids == ("s1", "s2", "s3")

    def test_empty_footprint_is_singleton(self):
        specs = partition_statements({"lonely": set(), "other": {("a", "b")}})
        assert [spec.statement_ids for spec in specs] == [("lonely",), ("other",)]
        assert specs[0].links == ()

    def test_canonical_order_is_input_order_independent(self):
        footprints_a = {
            "s2": {("c", "d")},
            "s1": {("a", "b")},
            "s3": {("a", "b"), ("e", "f")},
        }
        footprints_b = dict(reversed(list(footprints_a.items())))
        assert partition_statements(footprints_a) == partition_statements(footprints_b)

    def test_partition_spec_len(self):
        spec = PartitionSpec(statement_ids=("a", "b"), links=(("x", "y"),))
        assert len(spec) == 2
