"""Tests for the predicate AST, parser, evaluator, and field catalogue."""

import pytest

from repro.errors import FieldError, ParseError
from repro.packet import make_packet
from repro.predicates import (
    FIELD_CATALOG,
    And,
    FieldTest,
    Not,
    Or,
    PFalse,
    PTrue,
    matches,
    normalize_value,
    parse_predicate,
    pred_and,
    pred_not,
    pred_or,
)
from repro.predicates.ast import FALSE, TRUE
from repro.predicates.fields import domain_size, field_spec


class TestFieldCatalog:
    def test_standard_protocols_present(self):
        for name in ("eth.src", "eth.dst", "ip.src", "ip.dst", "ip.proto",
                     "tcp.src", "tcp.dst", "udp.src", "udp.dst", "payload"):
            assert name in FIELD_CATALOG

    def test_unknown_field_raises(self):
        with pytest.raises(FieldError):
            field_spec("foo.bar")

    def test_mac_normalisation(self):
        assert normalize_value("eth.src", "A:B:C:1:2:3") == "0a:0b:0c:01:02:03"

    def test_invalid_mac_rejected(self):
        with pytest.raises(FieldError):
            normalize_value("eth.src", "not-a-mac")

    def test_ip_normalisation(self):
        assert normalize_value("ip.src", "010.0.0.1") == "10.0.0.1"

    def test_invalid_ip_rejected(self):
        with pytest.raises(FieldError):
            normalize_value("ip.dst", "300.0.0.1")

    def test_port_range_enforced(self):
        assert normalize_value("tcp.dst", "80") == 80
        with pytest.raises(FieldError):
            normalize_value("tcp.dst", 70000)

    def test_protocol_names(self):
        assert normalize_value("ip.proto", "tcp") == 6
        assert normalize_value("ip.proto", "udp") == 17

    def test_ethertype_names(self):
        assert normalize_value("eth.type", "ip") == 0x0800

    def test_hex_values(self):
        assert normalize_value("eth.type", "0x0806") == 0x0806

    def test_domain_sizes(self):
        assert domain_size("tcp.dst") == 2**16
        assert domain_size("vlan.pcp") == 8
        assert domain_size("payload") is None


class TestConstructors:
    def test_and_identity(self):
        p = FieldTest("tcp.dst", 80)
        assert pred_and(TRUE, p) is p
        assert pred_and(p) is p

    def test_and_absorbs_false(self):
        assert isinstance(pred_and(FieldTest("tcp.dst", 80), FALSE), PFalse)

    def test_or_identity(self):
        p = FieldTest("tcp.dst", 80)
        assert pred_or(FALSE, p) is p

    def test_or_absorbs_true(self):
        assert isinstance(pred_or(FieldTest("tcp.dst", 80), TRUE), PTrue)

    def test_double_negation_collapses(self):
        p = FieldTest("tcp.dst", 80)
        assert pred_not(pred_not(p)) is p

    def test_not_of_constants(self):
        assert isinstance(pred_not(TRUE), PFalse)
        assert isinstance(pred_not(FALSE), PTrue)

    def test_operator_sugar(self):
        p = FieldTest("tcp.dst", 80)
        q = FieldTest("tcp.src", 1024)
        assert isinstance(p & q, And)
        assert isinstance(p | q, Or)
        assert isinstance(~p, Not)

    def test_fields_collected(self):
        p = pred_and(FieldTest("tcp.dst", 80), FieldTest("eth.src", "00:00:00:00:00:01"))
        assert p.fields() == {"tcp.dst", "eth.src"}

    def test_size_counts_nodes(self):
        p = pred_and(FieldTest("tcp.dst", 80), pred_not(FieldTest("tcp.src", 22)))
        assert p.size() == 4

    def test_value_normalised_in_field_test(self):
        assert FieldTest("tcp.dst", "80").value == 80


class TestParser:
    def test_single_test(self):
        assert parse_predicate("tcp.dst = 80") == FieldTest("tcp.dst", 80)

    def test_mac_value(self):
        p = parse_predicate("eth.src = 00:00:00:00:00:01")
        assert p == FieldTest("eth.src", "00:00:00:00:00:01")

    def test_ip_value(self):
        assert parse_predicate("ip.src = 192.168.1.1") == FieldTest("ip.src", "192.168.1.1")

    def test_symbolic_protocol(self):
        assert parse_predicate("ip.proto = tcp") == FieldTest("ip.proto", 6)

    def test_conjunction(self):
        p = parse_predicate("tcp.dst = 80 and ip.proto = tcp")
        assert isinstance(p, And)

    def test_disjunction_and_parentheses(self):
        p = parse_predicate("(tcp.dst = 80 or tcp.dst = 443) and ip.proto = tcp")
        assert isinstance(p, And)
        assert isinstance(p.left, Or)

    def test_negation(self):
        p = parse_predicate("!(tcp.dst = 80)")
        assert isinstance(p, Not)

    def test_not_equal_sugar(self):
        p = parse_predicate("tcp.dst != 80")
        assert p == Not(FieldTest("tcp.dst", 80))

    def test_constants(self):
        assert isinstance(parse_predicate("true"), PTrue)
        assert isinstance(parse_predicate("false"), PFalse)

    def test_precedence_and_binds_tighter_than_or(self):
        p = parse_predicate("tcp.dst = 80 or tcp.dst = 22 and ip.proto = tcp")
        assert isinstance(p, Or)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_predicate("tcp.dst = 80 garbage garbage")

    def test_missing_value_rejected(self):
        with pytest.raises(ParseError):
            parse_predicate("tcp.dst =")

    def test_unknown_character_rejected(self):
        with pytest.raises(ParseError):
            parse_predicate("tcp.dst = 80 $ true")


class TestEvaluator:
    def test_match_simple(self):
        p = parse_predicate("tcp.dst = 80")
        assert matches(p, make_packet(tcp_dst=80))
        assert not matches(p, make_packet(tcp_dst=22))

    def test_missing_field_does_not_match(self):
        p = parse_predicate("tcp.dst = 80")
        assert not matches(p, make_packet(udp_dst=80))

    def test_conjunction_and_negation(self):
        p = parse_predicate("ip.proto = tcp and tcp.dst != 22")
        assert matches(p, make_packet(ip_proto="tcp", tcp_dst=80))
        assert not matches(p, make_packet(ip_proto="tcp", tcp_dst=22))

    def test_disjunction(self):
        p = parse_predicate("tcp.dst = 80 or tcp.dst = 443")
        assert matches(p, make_packet(tcp_dst=443))
        assert not matches(p, make_packet(tcp_dst=8080))

    def test_true_false(self):
        packet = make_packet(tcp_dst=80)
        assert matches(TRUE, packet)
        assert not matches(FALSE, packet)

    def test_mac_match_normalised(self):
        p = parse_predicate("eth.src = 00:00:00:00:00:01")
        assert matches(p, make_packet(eth_src="0:0:0:0:0:1", eth_dst="0:0:0:0:0:2"))

    def test_running_example_statement(self):
        p = parse_predicate(
            "eth.src = 00:00:00:00:00:01 and eth.dst = 00:00:00:00:00:02 and tcp.dst = 80"
        )
        good = make_packet(
            eth_src="00:00:00:00:00:01", eth_dst="00:00:00:00:00:02", tcp_dst=80
        )
        bad = make_packet(
            eth_src="00:00:00:00:00:01", eth_dst="00:00:00:00:00:03", tcp_dst=80
        )
        assert matches(p, good)
        assert not matches(p, bad)
