"""Tests for predicate satisfiability, disjointness, implication, and partitions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.packet import make_packet
from repro.predicates import (
    FieldTest,
    equivalent,
    implies,
    is_disjoint,
    is_partition,
    is_satisfiable,
    matches,
    pairwise_disjoint,
    parse_predicate,
    pred_and,
    pred_not,
    pred_or,
    simplify,
    to_dnf,
    to_nnf,
)
from repro.predicates.ast import FALSE, TRUE
from repro.predicates.sat import covers, find_overlapping_pairs, overlaps
from repro.predicates.transform import dnf_to_predicate, subtract


class TestSatisfiability:
    def test_true_is_satisfiable(self):
        assert is_satisfiable(TRUE)

    def test_false_is_not(self):
        assert not is_satisfiable(FALSE)

    def test_conflicting_equalities(self):
        p = pred_and(FieldTest("tcp.dst", 80), FieldTest("tcp.dst", 22))
        assert not is_satisfiable(p)

    def test_equality_with_matching_exclusion(self):
        p = pred_and(FieldTest("tcp.dst", 80), pred_not(FieldTest("tcp.dst", 80)))
        assert not is_satisfiable(p)

    def test_equality_with_other_exclusion(self):
        p = pred_and(FieldTest("tcp.dst", 80), pred_not(FieldTest("tcp.dst", 22)))
        assert is_satisfiable(p)

    def test_negation_alone_satisfiable(self):
        assert is_satisfiable(parse_predicate("tcp.dst != 80"))

    def test_small_domain_exhaustion(self):
        # vlan.pcp has only 8 values; excluding all of them is unsatisfiable.
        exclusions = pred_and(*[pred_not(FieldTest("vlan.pcp", v)) for v in range(8)])
        assert not is_satisfiable(exclusions)
        seven = pred_and(*[pred_not(FieldTest("vlan.pcp", v)) for v in range(7)])
        assert is_satisfiable(seven)

    def test_disjunction_rescues(self):
        p = pred_or(
            pred_and(FieldTest("tcp.dst", 80), FieldTest("tcp.dst", 22)),
            FieldTest("tcp.dst", 443),
        )
        assert is_satisfiable(p)


class TestDisjointnessAndImplication:
    def test_different_ports_disjoint(self):
        p = parse_predicate("tcp.dst = 20")
        q = parse_predicate("tcp.dst = 21")
        assert is_disjoint(p, q)

    def test_overlapping_not_disjoint(self):
        p = parse_predicate("ip.proto = tcp")
        q = parse_predicate("tcp.dst = 80")
        assert not is_disjoint(p, q)
        assert overlaps(p, q)

    def test_implication(self):
        narrow = parse_predicate("ip.proto = tcp and tcp.dst = 80")
        wide = parse_predicate("ip.proto = tcp")
        assert implies(narrow, wide)
        assert not implies(wide, narrow)

    def test_equivalence(self):
        p = parse_predicate("tcp.dst = 80 and ip.proto = tcp")
        q = parse_predicate("ip.proto = tcp and tcp.dst = 80")
        assert equivalent(p, q)

    def test_everything_implies_true(self):
        assert implies(parse_predicate("tcp.dst = 80"), TRUE)

    def test_false_implies_everything(self):
        assert implies(FALSE, parse_predicate("tcp.dst = 80"))

    def test_running_example_statements_are_disjoint(self):
        predicates = [
            parse_predicate(f"eth.src = 00:00:00:00:00:01 and tcp.dst = {port}")
            for port in (20, 21, 80)
        ]
        assert pairwise_disjoint(predicates)
        assert find_overlapping_pairs(predicates) == []

    def test_overlapping_pairs_reported(self):
        predicates = [
            parse_predicate("ip.proto = tcp"),
            parse_predicate("tcp.dst = 80"),
            parse_predicate("udp.dst = 53"),
        ]
        assert (0, 1) in find_overlapping_pairs(predicates)


class TestPartition:
    def test_http_ssh_other_partition(self):
        # The §4.1 refinement: TCP traffic split into HTTP / SSH / the rest.
        original = parse_predicate("ip.proto = tcp")
        parts = [
            parse_predicate("ip.proto = tcp and tcp.dst = 80"),
            parse_predicate("ip.proto = tcp and tcp.dst = 22"),
            parse_predicate("ip.proto = tcp and !(tcp.dst = 22 or tcp.dst = 80)"),
        ]
        assert covers(original, parts)
        assert is_partition(original, parts)

    def test_incomplete_partition_detected(self):
        original = parse_predicate("ip.proto = tcp")
        parts = [
            parse_predicate("ip.proto = tcp and tcp.dst = 80"),
            parse_predicate("ip.proto = tcp and tcp.dst = 22"),
        ]
        assert not covers(original, parts)
        assert not is_partition(original, parts)

    def test_overlapping_parts_rejected(self):
        original = parse_predicate("ip.proto = tcp")
        parts = [
            parse_predicate("ip.proto = tcp and tcp.dst = 80"),
            parse_predicate("ip.proto = tcp"),
        ]
        assert covers(original, parts)
        assert not is_partition(original, parts)

    def test_parts_outside_original_rejected(self):
        original = parse_predicate("ip.proto = tcp")
        parts = [parse_predicate("ip.proto = tcp"), parse_predicate("ip.proto = udp")]
        assert not is_partition(original, parts)


class TestTransforms:
    def test_nnf_pushes_negation(self):
        p = pred_not(pred_and(FieldTest("tcp.dst", 80), FieldTest("tcp.src", 22)))
        nnf = to_nnf(p)
        assert equivalent(p, nnf)

    def test_dnf_equivalence(self):
        p = parse_predicate("(tcp.dst = 80 or tcp.dst = 22) and ip.proto = tcp")
        assert equivalent(p, dnf_to_predicate(to_dnf(p)))

    def test_dnf_of_false_is_empty(self):
        assert to_dnf(FALSE) == []

    def test_dnf_of_true_is_single_empty_conjunct(self):
        assert to_dnf(TRUE) == [frozenset()]

    def test_simplify_preserves_meaning(self):
        p = parse_predicate("(tcp.dst = 80 and tcp.dst = 22) or ip.proto = tcp")
        assert equivalent(p, simplify(p))

    def test_subtract(self):
        tcp = parse_predicate("ip.proto = tcp")
        http = parse_predicate("ip.proto = tcp and tcp.dst = 80")
        rest = subtract(tcp, http)
        assert is_disjoint(rest, http)
        assert equivalent(pred_or(rest, http), tcp)


# ---------------------------------------------------------------------------
# Property-based tests: the symbolic decision procedure agrees with concrete
# packet evaluation on randomly generated predicates and packets.
# ---------------------------------------------------------------------------

_PORTS = [20, 21, 22, 80, 443]
_ATOMS = st.sampled_from(
    [FieldTest("tcp.dst", port) for port in _PORTS]
    + [FieldTest("tcp.src", port) for port in _PORTS[:2]]
    + [FieldTest("ip.proto", proto) for proto in (6, 17)]
)


def _predicates(depth=3):
    return st.recursive(
        _ATOMS | st.just(TRUE) | st.just(FALSE),
        lambda children: st.one_of(
            st.tuples(children, children).map(lambda pair: pred_and(*pair)),
            st.tuples(children, children).map(lambda pair: pred_or(*pair)),
            children.map(pred_not),
        ),
        max_leaves=8,
    )


_PACKETS = st.builds(
    make_packet,
    tcp_dst=st.sampled_from(_PORTS),
    tcp_src=st.sampled_from(_PORTS),
    ip_proto=st.sampled_from([6, 17]),
)


class TestSatProperties:
    @settings(max_examples=150, deadline=None)
    @given(predicate=_predicates(), packet=_PACKETS)
    def test_matching_packet_implies_satisfiable(self, predicate, packet):
        if matches(predicate, packet):
            assert is_satisfiable(predicate)

    @settings(max_examples=100, deadline=None)
    @given(p=_predicates(), q=_predicates(), packet=_PACKETS)
    def test_disjoint_predicates_never_share_a_packet(self, p, q, packet):
        if is_disjoint(p, q):
            assert not (matches(p, packet) and matches(q, packet))

    @settings(max_examples=100, deadline=None)
    @given(p=_predicates(), q=_predicates(), packet=_PACKETS)
    def test_implication_respected_by_packets(self, p, q, packet):
        if implies(p, q) and matches(p, packet):
            assert matches(q, packet)

    @settings(max_examples=100, deadline=None)
    @given(p=_predicates(), q=_predicates())
    def test_disjointness_is_symmetric(self, p, q):
        assert is_disjoint(p, q) == is_disjoint(q, p)

    @settings(max_examples=100, deadline=None)
    @given(p=_predicates(), packet=_PACKETS)
    def test_dnf_round_trip_matches_same_packets(self, p, packet):
        rebuilt = dnf_to_predicate(to_dnf(p))
        assert matches(p, packet) == matches(rebuilt, packet)

    @settings(max_examples=100, deadline=None)
    @given(p=_predicates(), packet=_PACKETS)
    def test_negation_flips_matching(self, p, packet):
        assert matches(pred_not(p), packet) == (not matches(p, packet))
