"""The scenario generator's determinism and the replay driver's guarantees."""

import pytest

from repro.incremental import PolicyDelta, TopologyDelta
from repro.scenarios import (
    LinkFailure,
    LinkRecovery,
    MiddleboxRewrite,
    RateRenegotiation,
    ScenarioConfig,
    SwitchFailure,
    TenantJoin,
    TenantLeave,
    allocations_match,
    build_population,
    generate_scenario,
    replay,
    serialize_events,
)
from repro.core import MerlinCompiler


def _quick(seed: int = 0, events: int = 30) -> ScenarioConfig:
    return ScenarioConfig(seed=seed, events=events)


class TestDeterminism:
    def test_same_seed_byte_identical(self):
        first = generate_scenario(_quick(seed=7, events=120))
        second = generate_scenario(_quick(seed=7, events=120))
        assert serialize_events(first.events) == serialize_events(second.events)

    def test_different_seeds_differ(self):
        first = generate_scenario(_quick(seed=1))
        second = generate_scenario(_quick(seed=2))
        assert serialize_events(first.events) != serialize_events(second.events)

    def test_population_is_seed_independent(self):
        first = generate_scenario(_quick(seed=1))
        second = generate_scenario(_quick(seed=2))
        assert (
            first.population.base_rates_mbps == second.population.base_rates_mbps
        )
        assert [pod.middlebox for pod in first.population.pods] == [
            pod.middlebox for pod in second.population.pods
        ]


class TestStreamShape:
    def test_requested_event_count(self):
        scenario = generate_scenario(_quick(events=40))
        assert len(scenario.events) == 40
        assert [event.index for event in scenario.events] == list(range(40))

    def test_times_are_nondecreasing(self):
        scenario = generate_scenario(_quick(events=60))
        times = [event.time for event in scenario.events]
        assert times == sorted(times)

    def test_event_deltas_are_typed(self):
        scenario = generate_scenario(_quick(seed=3, events=120))
        kinds_seen = set()
        for event in scenario.events:
            delta = event.to_delta()
            if isinstance(
                event,
                (LinkFailure, LinkRecovery, SwitchFailure),
            ):
                assert isinstance(delta, TopologyDelta)
            elif isinstance(
                event, (TenantJoin, TenantLeave, RateRenegotiation, MiddleboxRewrite)
            ):
                assert isinstance(delta, PolicyDelta)
            kinds_seen.add(event.kind)
        assert "renegotiation" in kinds_seen
        assert "link-failure" in kinds_seen

    def test_population_compiles_standalone(self):
        population = build_population(ScenarioConfig())
        compiler = MerlinCompiler(
            topology=population.topology,
            placements=population.placements,
            overlap="trust",
            add_catch_all=False,
            generate_code=False,
        )
        result = compiler.compile(population.policy)
        assert set(result.paths) == set(population.base_rates_mbps)


class TestReplay:
    def test_stream_replays_without_invalidation(self):
        scenario = generate_scenario(_quick(seed=1, events=30))
        report = replay(scenario)
        assert report.invalidations == 0
        assert report.simulator_inconsistencies == 0
        assert report.applied + report.rejected == 30
        assert report.min_availability() == pytest.approx(1.0)

    def test_final_allocation_matches_from_scratch_compile(self):
        # The acceptance property: replaying any generated stream and then
        # compiling the final policy from scratch on the final topology
        # yields identical allocations.
        for seed in (1, 5):
            scenario = generate_scenario(_quick(seed=seed, events=25))
            report = replay(scenario)
            assert report.final_identical is True, f"seed {seed}"

    def test_summary_reports_the_headline_numbers(self):
        scenario = generate_scenario(_quick(seed=1, events=20))
        report = replay(scenario)
        text = report.summary()
        assert "invalidations=0" in text
        assert "p50=" in text and "p99=" in text
        assert "availability" in text
        assert "from-scratch compile: yes" in text

    def test_latencies_recorded_per_applied_event(self):
        scenario = generate_scenario(_quick(seed=1, events=20))
        report = replay(scenario)
        latencies = report.latencies_ms()
        assert len(latencies) == report.applied
        assert all(value > 0.0 for value in latencies)


class TestAllocationsMatch:
    def test_detects_path_difference(self):
        scenario = generate_scenario(_quick(seed=1, events=5))
        population = scenario.population
        compiler = MerlinCompiler(
            topology=population.topology,
            placements=population.placements,
            overlap="trust",
            add_catch_all=False,
            generate_code=False,
        )
        result = compiler.compile(population.policy)
        assert allocations_match(result, result)
        mutated = compiler.compile(population.policy)
        some_id = next(iter(mutated.paths))
        mutated.paths[some_id].path = mutated.paths[some_id].path[::-1]
        assert not allocations_match(result, mutated)
