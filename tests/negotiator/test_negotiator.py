"""Tests for delegation, refinement verification, the negotiator tree, and the
AIMD / max-min fair-sharing allocation schemes."""

import pytest

from repro.errors import DelegationError, VerificationError
from repro.core import parse_policy
from repro.core.ast import formula_clauses
from repro.negotiator import (
    AimdAllocator,
    MaxMinFairAllocator,
    Negotiator,
    delegate,
    max_min_fair_share,
    verify_refinement,
)
from repro.predicates import parse_predicate
from repro.regex import parse_path_expression
from repro.units import Bandwidth
from tests.conftest import DELEGATION_ORIGINAL_SOURCE, DELEGATION_REFINED_SOURCE


class TestDelegation:
    def test_projection_narrows_predicates(self):
        policy = parse_policy(
            "[ a : ip.src = 10.0.0.1 -> .* ; b : ip.src = 10.0.0.2 -> .* ],"
            "max(a, 10Mbps) and max(b, 10Mbps)"
        )
        scope = parse_predicate("ip.src = 10.0.0.1")
        projected = delegate(policy, scope)
        assert projected.statement_ids() == ["a"]
        clauses = formula_clauses(projected.formula)
        assert len(clauses) == 1
        assert clauses[0].identifiers() == {"a"}

    def test_projection_keeps_path_constraints(self):
        policy = parse_policy("[ a : ip.src = 10.0.0.1 -> .* dpi .* ]")
        projected = delegate(policy, parse_predicate("tcp.dst = 80"))
        assert str(projected.statements[0].path) == str(policy.statements[0].path)

    def test_disjoint_scope_rejected(self):
        policy = parse_policy("[ a : ip.src = 10.0.0.1 -> .* ]")
        with pytest.raises(DelegationError):
            delegate(policy, parse_predicate("ip.src = 10.0.0.2"))

    def test_scope_path_filters_statements(self):
        policy = parse_policy(
            "[ a : ip.src = 10.0.0.1 -> s1 s2 ; b : ip.src = 10.0.0.2 -> s3 s4 ]"
        )
        projected = delegate(
            policy, parse_predicate("true"), scope_path=parse_path_expression(".* s2 .*")
        )
        assert projected.statement_ids() == ["a"]


class TestVerification:
    def test_paper_refinement_accepted(self):
        original = parse_policy(DELEGATION_ORIGINAL_SOURCE)
        refined = parse_policy(DELEGATION_REFINED_SOURCE)
        report = verify_refinement(original, refined)
        assert report.valid
        assert report.checked_pairs >= 3

    def test_bandwidth_increase_rejected(self):
        original = parse_policy(DELEGATION_ORIGINAL_SOURCE)
        greedy = parse_policy(
            "[ x : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2) -> .* ],"
            "max(x, 200MB/s)"
        )
        report = verify_refinement(original, greedy)
        assert not report.valid
        assert any(v.kind == "bandwidth" for v in report.violations)

    def test_sum_exactly_at_budget_accepted(self):
        original = parse_policy(DELEGATION_ORIGINAL_SOURCE)
        split = parse_policy(
            "[ x : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2 and tcp.dst = 80) -> .* ;"
            "  y : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2 and tcp.dst != 80) -> .* ],"
            "max(x, 60MB/s) and max(y, 40MB/s)"
        )
        assert verify_refinement(original, split).valid

    def test_path_relaxation_rejected(self):
        original = parse_policy("[ x : ip.src = 10.0.0.1 -> .* log .* ]")
        relaxed = parse_policy("[ x : ip.src = 10.0.0.1 -> .* ]")
        report = verify_refinement(original, relaxed)
        assert not report.valid
        assert any(v.kind == "path" for v in report.violations)

    def test_path_tightening_accepted(self):
        original = parse_policy("[ x : ip.src = 10.0.0.1 -> .* log .* ]")
        tightened = parse_policy("[ x : ip.src = 10.0.0.1 -> .* log .* dpi .* ]")
        assert verify_refinement(original, tightened).valid

    def test_incomplete_coverage_rejected(self):
        original = parse_policy("[ x : ip.src = 10.0.0.1 -> .* ]")
        partial = parse_policy("[ x : ip.src = 10.0.0.1 and tcp.dst = 80 -> .* ]")
        report = verify_refinement(original, partial)
        assert not report.valid
        assert any(v.kind == "coverage" for v in report.violations)

    def test_out_of_scope_statement_rejected(self):
        original = parse_policy("[ x : ip.src = 10.0.0.1 -> .* ]")
        expanded = parse_policy(
            "[ x : ip.src = 10.0.0.1 -> .* ; y : ip.src = 10.0.0.9 -> .* ]"
        )
        report = verify_refinement(original, expanded)
        assert not report.valid
        assert any(v.kind == "scope" for v in report.violations)

    def test_guarantee_sum_checked(self):
        original = parse_policy(
            "[ x : ip.src = 10.0.0.1 -> .* ], min(x, 100Mbps)"
        )
        over = parse_policy(
            "[ a : ip.src = 10.0.0.1 and tcp.dst = 80 -> .* ;"
            "  b : ip.src = 10.0.0.1 and tcp.dst != 80 -> .* ],"
            "min(a, 80Mbps) and min(b, 80Mbps)"
        )
        assert not verify_refinement(original, over).valid
        under = parse_policy(
            "[ a : ip.src = 10.0.0.1 and tcp.dst = 80 -> .* ;"
            "  b : ip.src = 10.0.0.1 and tcp.dst != 80 -> .* ],"
            "min(a, 50Mbps) and min(b, 50Mbps)"
        )
        assert verify_refinement(original, under).valid


class TestNegotiatorTree:
    def test_delegate_and_refine(self):
        root = Negotiator(name="admin", policy=parse_policy(DELEGATION_ORIGINAL_SOURCE))
        tenant = root.delegate_to("tenant-a", parse_predicate("ip.src = 192.168.1.1"))
        assert tenant.parent is root
        assert tenant.depth() == 1
        tenant.propose_or_raise(parse_policy(DELEGATION_REFINED_SOURCE))
        assert len(tenant.policy.statements) == 3

    def test_invalid_refinement_raises_and_keeps_policy(self):
        root = Negotiator(name="admin", policy=parse_policy(DELEGATION_ORIGINAL_SOURCE))
        tenant = root.delegate_to("tenant-a", parse_predicate("ip.src = 192.168.1.1"))
        before = tenant.policy
        with pytest.raises(VerificationError):
            tenant.propose_or_raise(
                parse_policy(
                    "[ x : (ip.src = 192.168.1.1 and ip.dst = 192.168.1.2) -> .* ],"
                    "max(x, 500MB/s)"
                )
            )
        assert tenant.policy is before

    def test_duplicate_child_rejected(self):
        root = Negotiator(name="admin", policy=parse_policy(DELEGATION_ORIGINAL_SOURCE))
        root.delegate_to("tenant-a", parse_predicate("ip.src = 192.168.1.1"))
        with pytest.raises(DelegationError):
            root.delegate_to("tenant-a", parse_predicate("ip.src = 192.168.1.1"))

    def test_totals_and_reallocation(self):
        root = Negotiator(name="admin", policy=parse_policy(DELEGATION_ORIGINAL_SOURCE))
        tenant = root.delegate_to("tenant-a", parse_predicate("ip.src = 192.168.1.1"))
        tenant.propose_or_raise(parse_policy(DELEGATION_REFINED_SOURCE))
        assert tenant.total_cap() == Bandwidth.mb_per_sec(100)
        # Shift bandwidth from y/z to x while staying within the delegated 100 MB/s.
        report = tenant.reallocate_caps(
            {
                "x": Bandwidth.mb_per_sec(80),
                "y": Bandwidth.mb_per_sec(10),
                "z": Bandwidth.mb_per_sec(10),
            }
        )
        assert report.valid
        assert tenant.total_cap() == Bandwidth.mb_per_sec(100)
        # Exceeding the budget is rejected.
        report = tenant.reallocate_caps(
            {
                "x": Bandwidth.mb_per_sec(80),
                "y": Bandwidth.mb_per_sec(40),
                "z": Bandwidth.mb_per_sec(10),
            }
        )
        assert not report.valid

    def test_descendants_and_root(self):
        root = Negotiator(name="admin", policy=parse_policy(DELEGATION_ORIGINAL_SOURCE))
        child = root.delegate_to("tenant-a", parse_predicate("ip.src = 192.168.1.1"))
        assert child.root() is root
        assert root.descendants() == [child]


class TestAimd:
    def test_sawtooth_stays_under_capacity(self):
        allocator = AimdAllocator(capacity=Bandwidth.mbps(500))
        allocator.add_tenant("h1-h2")
        allocator.add_tenant("h3-h4")
        trace = allocator.run(steps=60)
        aggregate = trace.aggregate()
        assert max(aggregate) <= 500 + 1e-6
        # The sawtooth must actually oscillate (increase and back off).
        series = trace.series("h1-h2")
        assert max(series) > min(series[1:])

    def test_converges_towards_fair_share(self):
        allocator = AimdAllocator(capacity=Bandwidth.mbps(600))
        allocator.add_tenant("a")
        allocator.add_tenant("b")
        trace = allocator.run(steps=200)
        tail_a = trace.series("a")[-50:]
        tail_b = trace.series("b")[-50:]
        assert abs(sum(tail_a) / 50 - sum(tail_b) / 50) < 100

    def test_demand_limits_growth(self):
        allocator = AimdAllocator(capacity=Bandwidth.mbps(500))
        allocator.add_tenant("small")
        allocator.add_tenant("big")
        trace = allocator.run(
            steps=40, demands={"small": Bandwidth.mbps(50), "big": Bandwidth.gbps(1)}
        )
        assert max(trace.series("small")) <= 50 + 1e-6

    def test_duplicate_tenant_rejected(self):
        allocator = AimdAllocator(capacity=Bandwidth.mbps(100))
        allocator.add_tenant("a")
        with pytest.raises(Exception):
            allocator.add_tenant("a")


class TestMaxMinFairShare:
    def test_unsatisfiable_demands_split_equally(self):
        shares = max_min_fair_share(
            Bandwidth.mbps(900),
            {"a": Bandwidth.gbps(1), "b": Bandwidth.gbps(1), "c": Bandwidth.gbps(1)},
        )
        assert all(share == Bandwidth.mbps(300) for share in shares.values())

    def test_small_demand_satisfied_first(self):
        shares = max_min_fair_share(
            Bandwidth.mbps(900), {"small": Bandwidth.mbps(100), "big": Bandwidth.gbps(1)}
        )
        assert shares["small"] == Bandwidth.mbps(100)
        assert shares["big"] == Bandwidth.mbps(800)

    def test_capacity_never_exceeded(self):
        shares = max_min_fair_share(
            Bandwidth.mbps(100),
            {"a": Bandwidth.mbps(70), "b": Bandwidth.mbps(70), "c": Bandwidth.mbps(10)},
        )
        total = sum(share.bps_value for share in shares.values())
        assert total <= Bandwidth.mbps(100).bps_value + 1e-6

    def test_zero_demand_gets_nothing(self):
        shares = max_min_fair_share(
            Bandwidth.mbps(100), {"idle": Bandwidth(0), "busy": Bandwidth.mbps(90)}
        )
        assert shares["idle"].bps_value == 0.0
        assert shares["busy"] == Bandwidth.mbps(90)

    def test_allocator_traces_demand_changes(self):
        allocator = MaxMinFairAllocator(capacity=Bandwidth.mbps(400))
        schedule = [
            {"h1-h2": Bandwidth.mbps(400), "h3-h4": Bandwidth(0)},
            {"h3-h4": Bandwidth.mbps(400)},
            {"h1-h2": Bandwidth(0)},
        ]
        trace = allocator.run(schedule)
        assert trace.series("h1-h2")[0] == pytest.approx(400.0)
        assert trace.series("h1-h2")[1] == pytest.approx(200.0)
        assert trace.series("h3-h4")[2] == pytest.approx(400.0)


class TestAimdTraceAlignment:
    """Regression: series must stay aligned with ``times`` when tenants come
    and go mid-run (late joiners used to have short series and ``aggregate``
    raised ``IndexError``)."""

    def test_late_joiner_series_is_front_padded(self):
        from repro.negotiator.aimd import AimdTrace

        trace = AimdTrace()
        trace.record(0.0, {"a": Bandwidth.mbps(10)})
        trace.record(1.0, {"a": Bandwidth.mbps(20), "b": Bandwidth.mbps(5)})
        assert trace.series("a") == [10.0, 20.0]
        assert trace.series("b") == [0.0, 5.0]
        assert trace.aggregate() == [10.0, 25.0]

    def test_departed_tenant_series_is_back_padded(self):
        from repro.negotiator.aimd import AimdTrace

        trace = AimdTrace()
        trace.record(0.0, {"a": Bandwidth.mbps(10), "b": Bandwidth.mbps(5)})
        trace.record(1.0, {"a": Bandwidth.mbps(20)})
        assert trace.series("b") == [5.0, 0.0]
        assert trace.aggregate() == [15.0, 20.0]

    def test_allocator_run_with_mid_run_join(self):
        allocator = AimdAllocator(capacity=Bandwidth.mbps(100))
        allocator.add_tenant("a")
        trace = allocator.run(steps=3)
        allocator.add_tenant("b")
        for index in range(4, 7):
            allocator.step()
            trace.record(float(index), allocator.allocations())
        # Every series spans the whole trace and aggregation works.
        assert len(trace.series("a")) == len(trace.times)
        assert len(trace.series("b")) == len(trace.times)
        aggregate = trace.aggregate()
        assert len(aggregate) == len(trace.times)
        # The late joiner contributed nothing before it existed.
        assert all(value == 0.0 for value in trace.series("b")[:4])
