"""Control-plane telemetry: queue waits, batch spans, the metrics query.

Same driving idioms as ``test_control_plane.py`` (plain ``asyncio.run``,
submit-before-``start()`` for deterministic batching), plus the injected
clock now also feeds the plane's telemetry bundle, so queue-wait and
execution timings are exact integers under test.
"""

import asyncio

import pytest

from repro.core.ast import Statement
from repro.incremental import DeltaStatement, PolicyDelta
from repro.predicates.ast import FieldTest, pred_and
from repro.regex.parser import parse_path_expression
from repro.service import AdmissionError, AdmissionPolicy, ControlPlane
from repro.telemetry import Telemetry, to_prometheus
from repro.topology.generators import figure2_example
from repro.units import Bandwidth

SOURCE = """
[ x : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 20) -> .* dpi .* ;
  z : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 80) -> .* dpi .* ],
min(x, 25MB/s) and min(z, 50MB/s)
"""
PLACEMENTS = {"dpi": ("h1", "h2", "m1"), "nat": ("m1",)}


def _pair_predicate(port):
    return pred_and(
        FieldTest("eth.src", "00:00:00:00:00:01"),
        pred_and(
            FieldTest("eth.dst", "00:00:00:00:00:02"), FieldTest("tcp.dst", port)
        ),
    )


def _add(identifier, port, guarantee=Bandwidth.mb_per_sec(5)):
    statement = Statement(
        identifier, _pair_predicate(port), parse_path_expression(".* dpi .*")
    )
    return PolicyDelta(add=(DeltaStatement(statement, guarantee=guarantee),))


async def _open(plane, name="g"):
    return await plane.open_group(
        name,
        SOURCE,
        topology=figure2_example(capacity=Bandwidth.gbps(2)),
        placements=PLACEMENTS,
        overlap="trust",
        add_catch_all=False,
        generate_code=False,
    )


class TestQueueWaitVersusExecution:
    def test_batched_tickets_share_one_execution_with_distinct_waits(self):
        clock = {"now": 100.0}

        async def run():
            plane = ControlPlane(clock=lambda: clock["now"])
            await _open(plane)
            first = plane.submit("g", _add("w", 443), tenant="alice")
            clock["now"] += 3.0
            second = plane.submit("g", _add("v", 8080), tenant="bob")
            clock["now"] += 2.0
            plane.start()
            results = (await first.result(), await second.result())
            await plane.shutdown()
            return plane.query("g"), plane.metrics(), results

        state, metrics, (first_result, second_result) = asyncio.run(run())
        batch = state.last_batch
        assert batch.merged is True and batch.num_deltas == 2
        # One shared execution (the same transaction, one timing) but two
        # distinct queue waits: alice waited through both clock advances,
        # bob only through the second.
        assert first_result is second_result
        assert batch.queue_wait_seconds == (5.0, 2.0)
        assert batch.execute_seconds == 0.0  # nothing advanced the clock
        waits = metrics.histogram("queue_wait_seconds", group="g")
        assert waits.count == 2
        assert waits.minimum == 2.0 and waits.maximum == 5.0
        assert metrics.counter("batches_committed", group="g") == 1.0
        deltas = metrics.histogram("batch_deltas", group="g")
        assert deltas.count == 1 and deltas.maximum == 2.0

    def test_execution_time_lands_in_the_batch_record(self):
        clock = {"now": 0.0}

        def ticking():
            # Every clock read advances time, so the batch span measurably
            # brackets its execution even though nothing sleeps.
            clock["now"] += 1.0
            return clock["now"]

        async def run():
            plane = ControlPlane(clock=ticking)
            await _open(plane)
            ticket = plane.submit("g", _add("w", 443), tenant="alice")
            plane.start()
            await ticket.result()
            await plane.shutdown()
            return plane.query("g")

        state = asyncio.run(run())
        batch = state.last_batch
        assert batch.merged is False
        assert batch.execute_seconds > 0.0
        assert len(batch.queue_wait_seconds) == 1


class TestMetricsSnapshotQuery:
    def test_snapshot_matches_a_seeded_multi_tenant_churn_replay(self):
        async def run():
            plane = ControlPlane(admission=AdmissionPolicy(max_outstanding=1))
            await _open(plane)
            first = plane.submit("g", _add("w", 443), tenant="alice")
            with pytest.raises(AdmissionError):
                plane.submit("g", _add("v", 8080), tenant="alice")
            second = plane.submit("g", _add("v", 8080), tenant="bob")
            plane.start()
            await first.result()
            await second.result()
            third = plane.submit("g", PolicyDelta(remove=("w",)), tenant="alice")
            await third.result()
            await plane.shutdown()
            return plane.query("g"), plane.metrics()

        state, snapshot = asyncio.run(run())
        submitted = sum(stats.submitted for stats in state.tenants.values())
        rejected = sum(stats.rejected for stats in state.tenants.values())
        # Admission metrics agree with the per-tenant accounting.
        assert rejected == 1
        assert snapshot.counter_total("admission_rejected") == rejected
        assert snapshot.counter_total("admission_admitted") == submitted - rejected
        assert (
            snapshot.counter("admission_rejected", group="g", tenant="alice")
            == 1.0
        )
        # Every committed revision is a counted batch, and the compiler's
        # transaction counters (recorded from inside the batches' threads)
        # land in the same registry.
        assert snapshot.counter("batches_committed", group="g") == state.revision
        assert snapshot.counter_total("transactions_committed") == state.revision
        assert snapshot.counter_total("transactions_rolled_back") == 0.0
        assert snapshot.counter("groups_opened") == 1.0
        assert snapshot.histogram("batch_deltas", group="g").count == state.revision
        # The snapshot renders straight to the Prometheus exposition.
        text = to_prometheus(snapshot)
        assert "# TYPE repro_batches_committed counter" in text
        assert 'repro_batches_committed{group="g"} %d' % state.revision in text

    def test_metrics_less_plane_serves_an_empty_snapshot(self):
        async def run():
            plane = ControlPlane(telemetry=Telemetry())
            await _open(plane)
            ticket = plane.submit("g", _add("w", 443))
            plane.start()
            await ticket.result()
            await plane.shutdown()
            return plane.metrics()

        snapshot = asyncio.run(run())
        assert snapshot.counters == {}
        assert snapshot.histograms == {}
