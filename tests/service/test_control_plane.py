"""Tests for the control-plane daemon: batching, admission, isolation.

pytest-asyncio is not a dependency; each test drives the daemon with a
plain ``asyncio.run`` around an async body.  Batching is made
deterministic by submitting deltas *before* ``start()``: the worker's
first drain then sees the whole queue at once, exactly as it would when
deltas pile up behind a slow solve.
"""

import asyncio

import pytest

from repro.core.ast import Statement
from repro.errors import MerlinError, ProvisioningError
from repro.incremental import (
    DeltaStatement,
    PolicyDelta,
    RateUpdate,
    TopologyDelta,
    merge_policy_deltas,
)
from repro.predicates.ast import FieldTest, pred_and
from repro.regex.parser import parse_path_expression
from repro.service import AdmissionError, AdmissionPolicy, ControlPlane
from repro.topology.generators import dumbbell, figure2_example
from repro.units import Bandwidth

SOURCE = """
[ x : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 20) -> .* dpi .* ;
  z : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 80) -> .* dpi .* ],
min(x, 25MB/s) and min(z, 50MB/s)
"""
PLACEMENTS = {"dpi": ("h1", "h2", "m1"), "nat": ("m1",)}

DUMBBELL_SOURCE = """
[ x : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02) -> .* ],
min(x, 10MB/s)
"""


def _pair_predicate(port):
    return pred_and(
        FieldTest("eth.src", "00:00:00:00:00:01"),
        pred_and(
            FieldTest("eth.dst", "00:00:00:00:00:02"), FieldTest("tcp.dst", port)
        ),
    )


def _add(identifier, port, guarantee=Bandwidth.mb_per_sec(5)):
    statement = Statement(
        identifier, _pair_predicate(port), parse_path_expression(".* dpi .*")
    )
    return PolicyDelta(add=(DeltaStatement(statement, guarantee=guarantee),))


async def _open(plane, name="g", **kwargs):
    return await plane.open_group(
        name,
        SOURCE,
        topology=figure2_example(capacity=Bandwidth.gbps(2)),
        placements=PLACEMENTS,
        overlap="trust",
        add_catch_all=False,
        generate_code=False,
        **kwargs,
    )


class TestMergePolicyDeltas:
    def test_concatenates_disjoint_deltas(self):
        merged = merge_policy_deltas(
            [
                _add("w", 443),
                PolicyDelta(remove=("z",)),
                PolicyDelta(
                    update_rates=(
                        RateUpdate("x", guarantee=Bandwidth.mb_per_sec(30)),
                    )
                ),
            ]
        )
        assert [entry.statement.identifier for entry in merged.add] == ["w"]
        assert merged.remove == ("z",)
        assert merged.update_rates[0].identifier == "x"
        assert merged.touched_identifiers() == frozenset({"w", "x", "z"})

    def test_rejects_overlapping_deltas(self):
        with pytest.raises(ValueError, match="w"):
            merge_policy_deltas(
                [
                    _add("w", 443),
                    PolicyDelta(
                        update_rates=(
                            RateUpdate("w", guarantee=Bandwidth.mb_per_sec(9)),
                        )
                    ),
                ]
            )


class TestControlPlane:
    def test_open_group_snapshot(self):
        async def run():
            plane = ControlPlane()
            return await _open(plane)

        state = asyncio.run(run())
        assert state.group == "g"
        assert state.revision == 0
        assert set(state.statements) == {"x", "z"}
        assert state.statements["x"].is_guaranteed
        assert state.statements["x"].guarantee_bps == Bandwidth.mb_per_sec(25).bps_value
        assert state.statements["x"].path[0] == "h1"
        assert state.statements["x"].path[-1] == "h2"
        assert state.failed_links == frozenset()
        assert state.last_batch is None

    def test_batches_concurrent_deltas_into_one_recompile(self):
        async def run():
            plane = ControlPlane()
            await _open(plane)
            first = plane.submit("g", _add("w", 443), tenant="alice")
            second = plane.submit("g", _add("v", 8080), tenant="bob")
            plane.start()
            results = (await first.result(), await second.result())
            await plane.shutdown()
            return plane.query("g"), results

        state, (first_result, second_result) = asyncio.run(run())
        # One transaction served both tenants: the very same result object.
        assert first_result is second_result
        batch = state.last_batch
        assert batch.merged is True
        assert batch.num_deltas == 2
        assert batch.tenants == ("alice", "bob")
        assert state.revision == 1
        assert {"w", "v"} <= set(state.statements)
        # The single solve's statistics cover the whole merged population.
        assert batch.statistics.num_statements == 4
        assert state.tenants["alice"].committed == 1
        assert state.tenants["bob"].committed == 1

    def test_overlapping_deltas_run_as_separate_transactions(self):
        async def run():
            plane = ControlPlane()
            await _open(plane)
            first = plane.submit("g", _add("w", 443))
            second = plane.submit(
                "g",
                PolicyDelta(
                    update_rates=(
                        RateUpdate("w", guarantee=Bandwidth.mb_per_sec(7)),
                    )
                ),
            )
            plane.start()
            await first.result()
            await second.result()
            await plane.shutdown()
            return plane.query("g")

        state = asyncio.run(run())
        assert state.revision == 2
        assert state.last_batch.merged is False
        assert state.last_batch.num_deltas == 1
        assert (
            state.statements["w"].guarantee_bps
            == Bandwidth.mb_per_sec(7).bps_value
        )

    def test_admission_outstanding_limit(self):
        async def run():
            plane = ControlPlane(admission=AdmissionPolicy(max_outstanding=1))
            await _open(plane)
            before = plane.query("g")
            first = plane.submit("g", _add("w", 443), tenant="alice")
            with pytest.raises(AdmissionError):
                plane.submit("g", _add("v", 8080), tenant="alice")
            # Another tenant is unaffected by alice's limit.
            second = plane.submit("g", _add("v", 8080), tenant="bob")
            rejected_view = plane.query("g")
            plane.start()
            await first.result()
            await second.result()
            # The commit settled alice's outstanding slot: admitted again.
            third = plane.submit("g", PolicyDelta(remove=("w",)), tenant="alice")
            await third.result()
            await plane.shutdown()
            return before, rejected_view, plane.query("g")

        before, rejected_view, after = asyncio.run(run())
        # The rejection never touched committed state.
        assert rejected_view.revision == before.revision == 0
        assert set(rejected_view.statements) == set(before.statements)
        assert after.tenants["alice"].submitted == 3
        assert after.tenants["alice"].rejected == 1
        assert after.tenants["alice"].committed == 2
        assert "w" not in after.statements

    def test_admission_rate_cap_with_injected_clock(self):
        clock = {"now": 0.0}

        async def run():
            plane = ControlPlane(
                admission=AdmissionPolicy(rate_per_second=1.0, burst=1),
                clock=lambda: clock["now"],
            )
            await _open(plane)
            first = plane.submit("g", _add("w", 443), tenant="alice")
            with pytest.raises(AdmissionError):
                plane.submit("g", _add("v", 8080), tenant="alice")
            clock["now"] = 1.5  # the bucket refills one token
            second = plane.submit("g", _add("v", 8080), tenant="alice")
            plane.start()
            await first.result()
            await second.result()
            await plane.shutdown()
            return plane.query("g")

        state = asyncio.run(run())
        assert state.tenants["alice"].rejected == 1
        assert state.tenants["alice"].committed == 2
        assert {"w", "v"} <= set(state.statements)

    def test_merged_failure_retries_members_individually(self):
        async def run():
            plane = ControlPlane()
            await _open(plane)
            good = plane.submit("g", _add("w", 443), tenant="alice")
            doomed = plane.submit(
                "g",
                _add("v", 8080, guarantee=Bandwidth.gbps(50)),
                tenant="mallory",
            )
            plane.start()
            result = await good.result()
            with pytest.raises(MerlinError):
                await doomed.result()
            await plane.shutdown()
            return plane.query("g"), result

        state, result = asyncio.run(run())
        # Only the offender failed; its batch-mate committed normally.
        assert "w" in state.statements
        assert "v" not in state.statements
        assert "v" not in result.rates
        assert state.revision == 1
        assert state.last_batch.merged is False
        assert state.tenants["alice"].committed == 1
        assert state.tenants["mallory"].failed == 1

    def test_topology_delta_reroutes_and_recovers(self):
        async def run():
            plane = ControlPlane()
            await plane.open_group(
                "g",
                DUMBBELL_SOURCE,
                topology=dumbbell(),
                overlap="trust",
                add_catch_all=False,
                generate_code=False,
            )
            base = plane.query("g")
            async with plane:
                fail = plane.submit(
                    "g", TopologyDelta(fail_links=(("sa1", "sa2"),))
                )
                await fail.result()
                rerouted = plane.query("g")
                recover = plane.submit(
                    "g", TopologyDelta(recover_links=(("sa1", "sa2"),))
                )
                await recover.result()
            return base, rerouted, plane.query("g")

        base, rerouted, recovered = asyncio.run(run())
        assert base.statements["x"].path == ("h1", "sa1", "sa2", "h2")
        assert rerouted.failed_links == frozenset({("sa1", "sa2")})
        assert rerouted.statements["x"].path == ("h1", "sb1", "h2")
        assert recovered.failed_links == frozenset()
        assert recovered.statements["x"].path == base.statements["x"].path

    def test_groups_are_independent(self):
        async def run():
            plane = ControlPlane()
            await _open(plane, name="g1")
            await _open(plane, name="g2")
            async with plane:
                ticket = plane.submit("g1", _add("w", 443), tenant="alice")
                await ticket.result()
            return plane

        plane = asyncio.run(run())
        assert plane.groups() == ("g1", "g2")
        assert plane.query("g1").revision == 1
        assert plane.query("g2").revision == 0
        assert "w" in plane.query("g1").statements
        assert "w" not in plane.query("g2").statements
        assert plane.statement_state("g1", "w").is_guaranteed

    def test_unknown_group_and_statement_rejected(self):
        async def run():
            plane = ControlPlane()
            await _open(plane)
            with pytest.raises(ProvisioningError):
                plane.submit("nope", _add("w", 443))
            with pytest.raises(ProvisioningError):
                plane.statement_state("g", "nope")
            with pytest.raises(ProvisioningError):
                await _open(plane)  # duplicate group name

        asyncio.run(run())
