"""Tests for the packet model."""

import pytest

from repro.packet import Packet, make_packet


class TestMakePacket:
    def test_only_supplied_fields_present(self):
        packet = make_packet(tcp_dst=80)
        assert "tcp.dst" in packet
        assert "eth.src" not in packet

    def test_mac_normalisation(self):
        packet = make_packet(eth_src="0:0:0:0:0:1")
        assert packet.get("eth.src") == "00:00:00:00:00:01"

    def test_protocol_name_normalisation(self):
        assert make_packet(ip_proto="tcp").get("ip.proto") == 6
        assert make_packet(ip_proto="udp").get("ip.proto") == 17
        assert make_packet(ip_proto=47).get("ip.proto") == 47

    def test_extra_fields_with_underscores(self):
        packet = make_packet(ip_tos=4)
        assert packet.get("ip.tos") == 4

    def test_payload_default(self):
        assert make_packet(tcp_dst=80).payload == b""


class TestPacket:
    def test_get_default(self):
        packet = Packet(headers={"tcp.dst": 80})
        assert packet.get("udp.dst", 0) == 0

    def test_contains(self):
        packet = Packet(headers={"tcp.dst": 80})
        assert "tcp.dst" in packet
        assert "tcp.src" not in packet

    def test_with_headers_creates_modified_copy(self):
        packet = make_packet(ip_src="10.0.0.1", ip_dst="10.0.0.2")
        rewritten = packet.with_headers(**{"ip.src": "192.168.0.1"})
        assert rewritten.get("ip.src") == "192.168.0.1"
        assert rewritten.get("ip.dst") == "10.0.0.2"
        assert packet.get("ip.src") == "10.0.0.1"
