"""Tests for bandwidth values and unit parsing."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import UnitError
from repro.units import LINE_RATE, ZERO, Bandwidth, parse_rate


class TestParsing:
    def test_parse_megabytes_per_second(self):
        assert Bandwidth.parse("50MB/s").bps_value == 50 * 8e6

    def test_parse_megabits_per_second(self):
        assert Bandwidth.parse("100Mbps").bps_value == 100e6

    def test_parse_gigabits(self):
        assert Bandwidth.parse("1Gbps").bps_value == 1e9

    def test_parse_kilobits(self):
        assert Bandwidth.parse("250kbps").bps_value == 250e3

    def test_parse_with_spaces(self):
        assert Bandwidth.parse("100 Mbps").bps_value == 100e6

    def test_parse_bare_number_is_bps(self):
        assert Bandwidth.parse("42").bps_value == 42.0

    def test_parse_numeric_passthrough(self):
        assert Bandwidth.parse(1500).bps_value == 1500.0

    def test_parse_bandwidth_passthrough(self):
        original = Bandwidth.mbps(10)
        assert Bandwidth.parse(original) is original

    def test_parse_decimal_value(self):
        assert Bandwidth.parse("1.5Gbps").bps_value == pytest.approx(1.5e9)

    def test_parse_rejects_garbage(self):
        with pytest.raises(UnitError):
            Bandwidth.parse("fast")

    def test_parse_rejects_unknown_unit(self):
        with pytest.raises(UnitError):
            Bandwidth.parse("10 parsecs")

    def test_module_level_parse_rate(self):
        assert parse_rate("10Mbps") == Bandwidth.mbps(10)


class TestConstructorsAndConversions:
    def test_mb_per_sec_constructor(self):
        assert Bandwidth.mb_per_sec(100) == Bandwidth.parse("100MB/s")

    def test_mbps_value(self):
        assert Bandwidth.gbps(1).mbps_value == 1000.0

    def test_gbps_value(self):
        assert Bandwidth.mbps(500).gbps_value == pytest.approx(0.5)

    def test_mb_per_sec_value(self):
        assert Bandwidth.parse("25MB/s").mb_per_sec_value == pytest.approx(25.0)

    def test_line_rate_constant(self):
        assert LINE_RATE == Bandwidth.gbps(1)

    def test_zero_constant(self):
        assert ZERO.bps_value == 0.0


class TestArithmetic:
    def test_addition(self):
        assert Bandwidth.mbps(10) + Bandwidth.mbps(5) == Bandwidth.mbps(15)

    def test_subtraction(self):
        assert Bandwidth.mbps(10) - Bandwidth.mbps(4) == Bandwidth.mbps(6)

    def test_subtraction_clamps_at_zero(self):
        assert (Bandwidth.mbps(4) - Bandwidth.mbps(10)).bps_value == 0.0

    def test_scaling(self):
        assert Bandwidth.mbps(10) * 2 == Bandwidth.mbps(20)
        assert 0.5 * Bandwidth.mbps(10) == Bandwidth.mbps(5)

    def test_division_by_number(self):
        assert Bandwidth.mbps(10) / 2 == Bandwidth.mbps(5)

    def test_ratio_of_bandwidths(self):
        assert Bandwidth.mbps(10) / Bandwidth.mbps(40) == pytest.approx(0.25)

    def test_ratio_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Bandwidth.mbps(10) / ZERO

    def test_split_evenly(self):
        # The §3.1 default localization rule: 50 MB/s over two identifiers.
        assert Bandwidth.mb_per_sec(50).split(2) == Bandwidth.mb_per_sec(25)

    def test_split_invalid(self):
        with pytest.raises(UnitError):
            Bandwidth.mbps(10).split(0)

    def test_negative_rejected(self):
        with pytest.raises(UnitError):
            Bandwidth(-1.0)

    def test_ordering(self):
        assert Bandwidth.mbps(1) < Bandwidth.mbps(2) < Bandwidth.gbps(1)


class TestFormatting:
    def test_human_gbps(self):
        assert Bandwidth.gbps(1).human() == "1.00Gbps"

    def test_human_mbps(self):
        assert Bandwidth.mbps(400).human() == "400.00Mbps"

    def test_human_bps(self):
        assert Bandwidth(12).human() == "12.00bps"

    def test_policy_literal_round_trip(self):
        rate = Bandwidth.mbps(250)
        assert Bandwidth.parse(rate.policy_literal()) == rate

    def test_str_uses_human(self):
        assert str(Bandwidth.mbps(5)) == Bandwidth.mbps(5).human()


class TestProperties:
    @given(st.floats(min_value=0, max_value=1e12, allow_nan=False))
    def test_policy_literal_parse_round_trip_is_close(self, bps):
        rate = Bandwidth(bps)
        parsed = Bandwidth.parse(rate.policy_literal())
        assert parsed.bps_value == pytest.approx(rate.bps_value, rel=1e-6, abs=1.0)

    @given(
        st.floats(min_value=0, max_value=1e10, allow_nan=False),
        st.floats(min_value=0, max_value=1e10, allow_nan=False),
    )
    def test_addition_commutes(self, a, b):
        assert Bandwidth(a) + Bandwidth(b) == Bandwidth(b) + Bandwidth(a)

    @given(
        st.floats(min_value=0, max_value=1e10, allow_nan=False),
        st.integers(min_value=1, max_value=64),
    )
    def test_split_times_parts_recovers_total(self, bps, parts):
        rate = Bandwidth(bps)
        assert (rate.split(parts) * parts).bps_value == pytest.approx(bps, rel=1e-9, abs=1e-6)
