"""Metrics registry tests: keys, snapshots, and the Prometheus exposition."""

import pytest

from repro.analysis.reporting import percentile
from repro.analysis.stats import percentile as fraction_percentile
from repro.telemetry import (
    HistogramSummary,
    MetricsRegistry,
    MetricsSnapshot,
    metric_key,
    split_key,
    to_prometheus,
)


class TestMetricKeys:
    def test_labels_render_sorted_and_round_trip(self):
        key = metric_key("solve_seconds", {"backend": "bnb", "arity": 4})
        assert key == 'solve_seconds{arity="4",backend="bnb"}'
        name, labels = split_key(key)
        assert name == "solve_seconds"
        assert labels == (("arity", "4"), ("backend", "bnb"))

    def test_unlabelled_key_is_the_bare_name(self):
        assert metric_key("hits", {}) == "hits"
        assert split_key("hits") == ("hits", ())


class TestRegistry:
    def test_counters_accumulate_per_label_set(self):
        registry = MetricsRegistry()
        registry.counter("cache_hits")
        registry.counter("cache_hits", 2.0)
        registry.counter("cache_hits", backend="bnb")
        snapshot = registry.snapshot()
        assert snapshot.counter("cache_hits") == 3.0
        assert snapshot.counter("cache_hits", backend="bnb") == 1.0
        assert snapshot.counter_total("cache_hits") == 4.0
        assert snapshot.counter("never_recorded") == 0.0

    def test_gauges_keep_the_latest_value(self):
        registry = MetricsRegistry()
        registry.gauge("journal_depth", 3)
        registry.gauge("journal_depth", 1)
        assert registry.snapshot().gauge("journal_depth") == 1.0
        assert registry.snapshot().gauge("missing") is None

    def test_histograms_summarize_through_shared_percentile_math(self):
        registry = MetricsRegistry()
        values = [float(v) for v in range(1, 101)]
        for value in values:
            registry.observe("latency", value)
        summary = registry.snapshot().histogram("latency")
        assert summary.count == 100
        assert summary.total == sum(values)
        assert summary.minimum == 1.0
        assert summary.maximum == 100.0
        # Exactly the repo-wide percentile helper, both scales.
        assert summary.p95 == percentile(values, 95)
        assert summary.p95 == fraction_percentile(values, 0.95)
        assert summary.mean == pytest.approx(50.5)

    def test_values_returns_a_copy_and_reset_clears(self):
        registry = MetricsRegistry()
        registry.observe("x", 1.0)
        observed = registry.values("x")
        observed.append(99.0)
        assert registry.values("x") == [1.0]
        registry.reset()
        assert registry.snapshot() == MetricsSnapshot()

    def test_format_histogram_uses_the_shared_formatter(self):
        registry = MetricsRegistry()
        registry.observe("wait", 0.002)
        rendered = registry.format_histogram("wait")
        assert "p50=" in rendered and "ms" in rendered

    def test_empty_histogram_summary(self):
        summary = HistogramSummary.from_values([])
        assert summary.count == 0
        assert summary.mean == 0.0


class TestPrometheusExposition:
    def test_counters_gauges_and_summaries(self):
        registry = MetricsRegistry()
        registry.counter("admission_rejected", tenant="t1")
        registry.gauge("journal_depth", 2, group="g")
        registry.observe("queue_wait_seconds", 0.5, group="g")
        registry.observe("queue_wait_seconds", 1.5, group="g")
        text = to_prometheus(registry.snapshot())
        assert "# TYPE repro_admission_rejected counter" in text
        assert 'repro_admission_rejected{tenant="t1"} 1' in text
        assert "# TYPE repro_journal_depth gauge" in text
        assert 'repro_journal_depth{group="g"} 2' in text
        assert "# TYPE repro_queue_wait_seconds summary" in text
        assert 'repro_queue_wait_seconds{group="g",quantile="0.5"} 1' in text
        assert 'repro_queue_wait_seconds_count{group="g"} 2' in text
        assert 'repro_queue_wait_seconds_sum{group="g"} 2' in text
        assert text.endswith("\n")

    def test_empty_snapshot_renders_empty(self):
        assert to_prometheus(MetricsSnapshot()) == ""

    def test_metric_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("weird.name-here")
        text = to_prometheus(registry.snapshot())
        assert "repro_weird_name_here 1" in text
