"""End-to-end trace acceptance: one fat-tree k=4 compile, one coherent trace.

This is the issue's acceptance criterion for the tracer: compiling the
Figure-8 smoke workload (fat tree k=4, 5% guaranteed classes) with a
JSON-lines recorder must emit a *single* trace whose nested spans account
for the reported wall time, with per-component solver backend names on
the adopted ``component_solve`` spans.
"""

import pytest

from repro import telemetry
from repro.core.compiler import MerlinCompiler
from repro.experiments.policy_builders import all_pairs_policy
from repro.telemetry import Telemetry, read_trace, summarize_trace
from repro.topology.generators import fat_tree


@pytest.fixture(scope="module")
def traced_compile(tmp_path_factory):
    trace_path = tmp_path_factory.mktemp("traces") / "compile.jsonl"
    topology = fat_tree(4)
    policy = all_pairs_policy(
        topology, guarantee_fraction=0.05, max_classes=60, seed=0
    )
    compiler = MerlinCompiler(
        topology=topology,
        overlap="trust",
        add_catch_all=False,
        generate_code=False,
    )
    bundle = Telemetry.recording(trace_path=str(trace_path))
    with bundle.use():
        result = compiler.compile(policy)
    bundle.recorder.close()
    return read_trace(str(trace_path)), result, bundle


class TestCompileTrace:
    def test_single_trace_rooted_at_compile(self, traced_compile):
        spans, result, _ = traced_compile
        assert len({s.trace_id for s in spans}) == 1
        roots = [s for s in spans if s.parent_id is None]
        assert [s.name for s in roots] == ["compile"]

    def test_root_duration_is_the_reported_wall_time(self, traced_compile):
        spans, result, _ = traced_compile
        (root,) = [s for s in spans if s.parent_id is None]
        assert root.duration == result.statistics.total_seconds
        assert root.duration > 0

    def test_children_nest_inside_their_parents_and_sum_within_tolerance(
        self, traced_compile
    ):
        spans, result, _ = traced_compile
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            if span.parent_id is None:
                continue
            parent = by_id[span.parent_id]
            # Adopted worker spans are re-anchored at their receive time,
            # so containment holds with a small tolerance.
            assert span.duration <= parent.duration + 1e-6
            assert span.end <= parent.end + 1e-6
        (root,) = [s for s in spans if s.parent_id is None]
        direct = [s for s in spans if s.parent_id == root.span_id]
        covered = sum(s.duration for s in direct)
        # The phase spans account for the compile wall time: nothing
        # big happens outside them, and they never overcount.
        assert covered <= root.duration * 1.01
        assert covered >= root.duration * 0.5

    def test_component_solves_carry_backend_names(self, traced_compile):
        spans, result, _ = traced_compile
        solves = [s for s in spans if s.name == "component_solve"]
        assert solves, "partitioned compile must adopt component_solve spans"
        assert all(s.attributes.get("backend") for s in solves)
        assert all(s.attributes.get("status") for s in solves)
        # Span durations are the source of the statistics' per-component
        # timings (same count; the tuple is truncated/ordered upstream).
        assert len(solves) >= len(result.statistics.component_solve_seconds)

    def test_metrics_counted_alongside_the_trace(self, traced_compile):
        _, result, bundle = traced_compile
        snapshot = bundle.snapshot()
        assert snapshot.counter_total("solver_calls") > 0
        assert snapshot.counter_total("logical_memo_misses") > 0
        solve_summary = [
            summary
            for key, summary in snapshot.histograms.items()
            if key.startswith("solve_seconds")
        ]
        assert solve_summary and all(s.count > 0 for s in solve_summary)

    def test_trace_summary_aggregates_by_name(self, traced_compile):
        spans, _, _ = traced_compile
        summary = summarize_trace(spans)
        assert "compile" in summary and summary["compile"].count == 1
        assert "component_solve" in summary
