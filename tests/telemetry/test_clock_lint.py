"""Repo lint: all timing goes through the injectable telemetry clock.

A bare ``time.perf_counter()`` anywhere in ``src/repro`` outside the
telemetry package itself would dodge clock injection — spans and derived
statistics would disagree under a fake clock, and the overhead benchmark
would measure the wrong thing.  ``make check`` greps for the same
pattern; this test keeps the rule enforced under plain pytest too.
"""

from pathlib import Path

import repro

SRC = Path(repro.__file__).resolve().parent


def test_no_bare_perf_counter_outside_telemetry():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        relative = path.relative_to(SRC)
        if relative.parts[0] == "telemetry":
            continue
        if "time.perf_counter" in path.read_text(encoding="utf-8"):
            offenders.append(str(relative))
    assert not offenders, (
        "bare time.perf_counter() found (use repro.telemetry.clock() or an "
        "injected Telemetry clock): %s" % ", ".join(offenders)
    )
