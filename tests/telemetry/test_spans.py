"""Span tracer tests: nesting, propagation, adoption, the disabled pool."""

import asyncio
import io
import json

from repro import telemetry
from repro.telemetry import (
    DISABLED,
    InMemoryRecorder,
    JsonLinesRecorder,
    SpanRecord,
    Telemetry,
    read_trace,
    render_trace,
    summarize_trace,
)


def _fake_clock(state):
    def clock():
        return state["now"]

    return clock


class TestRecordingSpans:
    def test_nested_spans_share_a_trace_and_parent_correctly(self):
        clock = {"now": 0.0}
        bundle = Telemetry.recording(clock=_fake_clock(clock))
        with bundle.use():
            with telemetry.span("compile") as root:
                clock["now"] += 1.0
                with telemetry.span("partition"):
                    clock["now"] += 2.0
                with telemetry.span("solve", components=3):
                    clock["now"] += 4.0

        spans = bundle.recorder.spans
        assert [s.name for s in spans] == ["partition", "solve", "compile"]
        compile_record = spans[-1]
        assert compile_record.parent_id is None
        assert compile_record.duration == 7.0
        assert {s.trace_id for s in spans} == {compile_record.trace_id}
        for child in spans[:-1]:
            assert child.parent_id == compile_record.span_id
        assert spans[1].attributes == {"components": 3}
        assert root.duration == 7.0

    def test_exception_annotates_and_closes_the_span(self):
        bundle = Telemetry.recording()
        with bundle.use():
            try:
                with telemetry.span("doomed"):
                    raise ValueError("boom")
            except ValueError:
                pass
        (record,) = bundle.recorder.spans
        assert record.attributes["error"] == "ValueError"
        assert telemetry.current_span() is None

    def test_sibling_traces_get_distinct_trace_ids(self):
        bundle = Telemetry.recording()
        with bundle.use():
            with telemetry.span("first"):
                pass
            with telemetry.span("second"):
                pass
        first, second = bundle.recorder.spans
        assert first.trace_id != second.trace_id
        assert first.parent_id is None and second.parent_id is None

    def test_asyncio_tasks_inherit_the_open_parent(self):
        bundle = Telemetry.recording()

        async def child(name):
            with telemetry.span(name):
                await asyncio.sleep(0)

        async def run():
            with bundle.use():
                with telemetry.span("batch"):
                    await asyncio.gather(child("a"), child("b"))

        asyncio.run(run())
        batch = [s for s in bundle.recorder.spans if s.name == "batch"][0]
        children = [s for s in bundle.recorder.spans if s.name in ("a", "b")]
        assert len(children) == 2
        assert all(s.parent_id == batch.span_id for s in children)

    def test_adopt_reanchors_a_worker_payload_under_the_open_span(self):
        clock = {"now": 100.0}
        bundle = Telemetry.recording(clock=_fake_clock(clock))
        payload = {
            "name": "component_solve",
            "duration": 2.5,
            "attributes": {"backend": "bnb"},
        }
        with bundle.use():
            with telemetry.span("solve") as solve_span:
                telemetry.adopt(payload, end=clock["now"], members="x,y")
        adopted = [s for s in bundle.recorder.spans if s.name == "component_solve"][0]
        assert adopted.parent_id == solve_span.span_id
        assert adopted.duration == 2.5
        assert adopted.start == 100.0 - 2.5
        assert adopted.attributes == {"backend": "bnb", "members": "x,y"}


class TestDisabledSpans:
    def test_disabled_spans_still_measure_duration(self):
        clock = {"now": 0.0}
        bundle = Telemetry(clock=_fake_clock(clock))
        with bundle.use():
            with telemetry.span("anything") as span:
                clock["now"] += 3.0
        assert span.duration == 3.0

    def test_disabled_spans_are_recycled_not_recorded(self):
        with telemetry.span("one") as first:
            assert telemetry.current_span() is None  # never set when disabled
        with telemetry.span("two") as second:
            pass
        # The pool handed back the same object: zero allocations in steady state.
        assert first is second
        assert telemetry.active() is DISABLED

    def test_disabled_metric_helpers_are_noops(self):
        telemetry.counter("nope")
        telemetry.observe("nope", 1.0)
        telemetry.gauge("nope", 1.0)
        telemetry.adopt({"name": "nope", "duration": 1.0})
        assert telemetry.snapshot().counters == {}


class TestJsonLines:
    def test_round_trip_through_a_stream(self):
        stream = io.StringIO()
        bundle = Telemetry(recorder=JsonLinesRecorder(stream))
        with bundle.use():
            with telemetry.span("outer", kind="demo"):
                with telemetry.span("inner"):
                    pass
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        restored = read_trace(lines)
        assert [s.name for s in restored] == ["inner", "outer"]
        assert restored[1].attributes == {"kind": "demo"}
        assert restored[0].parent_id == restored[1].span_id
        # Every line is standalone JSON with stable keys.
        assert json.loads(lines[0])["name"] == "inner"

    def test_file_target_and_read_trace_from_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonLinesRecorder(str(path)) as recorder:
            bundle = Telemetry(recorder=recorder)
            with bundle.use():
                with telemetry.span("root"):
                    pass
        restored = read_trace(str(path))
        assert [s.name for s in restored] == ["root"]


class TestExporters:
    def test_render_trace_indents_children(self):
        records = [
            SpanRecord("compile", 1, 1, None, 0.0, 0.010),
            SpanRecord("partition", 1, 2, 1, 0.001, 0.002, {"round": 0}),
        ]
        rendered = render_trace(records)
        lines = rendered.splitlines()
        assert lines[0].startswith("compile")
        assert lines[1].startswith("  partition round=0")
        assert "10.000ms" in lines[0]

    def test_summarize_trace_groups_by_name(self):
        records = [
            SpanRecord("solve", 1, 1, None, 0.0, 1.0),
            SpanRecord("solve", 1, 2, None, 1.0, 3.0),
        ]
        summary = summarize_trace(records)
        assert summary["solve"].count == 2
        assert summary["solve"].total == 4.0
        assert summary["solve"].mean == 2.0


class TestInMemoryRecorder:
    def test_query_helpers(self):
        bundle = Telemetry.recording()
        with bundle.use():
            with telemetry.span("root") as root:
                with telemetry.span("leaf"):
                    pass
        recorder = bundle.recorder
        assert isinstance(recorder, InMemoryRecorder)
        assert [s.name for s in recorder.by_name("leaf")] == ["leaf"]
        assert [s.name for s in recorder.roots()] == ["root"]
        assert [s.name for s in recorder.children_of(root)] == ["leaf"]
        recorder.clear()
        assert recorder.spans == []
