"""The solver-backend layer: protocol, registry, primal heuristic, portfolio."""

import pytest

from repro.errors import SolverError
from repro.lp import (
    AutoSolver,
    BranchAndBoundSolver,
    LinExpr,
    Model,
    PrimalHeuristicSolver,
    ScipySolver,
    SolverBackend,
    backend_name,
    capabilities,
    create_backend,
    highs_available,
    register_backend,
    registered_backends,
    resolve_backend,
)
from repro.lp.result import SolveStatus


def _knapsack():
    """max 10a+13b+7c+8d st 3a+4b+2c+3d<=6, a+b+c+d<=3; optimum 20."""
    model = Model("knapsack")
    items = [model.add_binary(f"x{i}") for i in range(4)]
    values = [10.0, 13.0, 7.0, 8.0]
    weights = [3.0, 4.0, 2.0, 3.0]
    model.add_constraint(
        LinExpr.weighted_sum(zip(items, weights)) <= 6.0, name="weight"
    )
    model.add_constraint(LinExpr.sum_of(items) <= 3.0, name="cardinality")
    model.maximize(LinExpr.weighted_sum(zip(items, values)))
    return model


def _provisioning_model():
    """A real provisioning MIP (figure-2 topology, one guaranteed statement)."""
    from repro.core.localization import localize
    from repro.core.logical import build_logical_topology, infer_endpoints
    from repro.core.parser import parse_policy
    from repro.core.provisioning import build_provisioning_model
    from repro.topology.generators import figure2_example
    from repro.units import Bandwidth

    topology = figure2_example(capacity=Bandwidth.gbps(2))
    policy = parse_policy(
        """
        [ z : (eth.src = 00:00:00:00:00:01 and
               eth.dst = 00:00:00:00:00:02) -> .* ],
        min(z, 50MB/s)
        """,
        topology=topology,
    )
    rates = localize(policy)
    statement = policy.statements[0]
    source, destination = infer_endpoints(statement, topology)
    logical = {
        "z": build_logical_topology(
            statement, topology, {}, source=source, destination=destination
        )
    }
    return build_provisioning_model([statement], logical, rates, topology)


class TestCapabilities:
    def test_registered_backends_declare_the_protocol(self):
        for name in ("scipy", "bnb", "heuristic", "auto"):
            backend = create_backend(name)
            assert isinstance(backend, SolverBackend)
            assert capabilities(backend).name == name
            assert backend_name(backend) == name

    def test_undeclared_capability_is_absent(self):
        """The one documented default for unknown third-party backends."""

        class Mystery:
            def solve(self, model):
                raise NotImplementedError

        caps = capabilities(Mystery())
        assert caps.name == "Mystery"
        assert caps.consumes_warm_starts is False
        assert caps.supports_time_limit is False
        assert caps.supports_node_limit is False

    def test_none_reports_the_default_backend(self):
        assert capabilities(None).name == "scipy"
        assert capabilities(None).consumes_warm_starts is False


class TestRegistry:
    def test_known_names(self):
        assert set(registered_backends()) >= {
            "scipy",
            "bnb",
            "highs",
            "heuristic",
            "auto",
        }

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(SolverError, match="registered backends: .*scipy"):
            create_backend("simplex2000")

    def test_duplicate_registration_rejected_unless_replaced(self):
        from repro.lp.backends import _REGISTRY

        def factory(**kwargs):
            return ScipySolver()

        register_backend("test-dup", factory)
        try:
            with pytest.raises(SolverError, match="already registered"):
                register_backend("test-dup", factory)
            register_backend("test-dup", factory, replace=True)
        finally:
            _REGISTRY.pop("test-dup", None)

    def test_limits_reach_the_factory(self):
        backend = create_backend("bnb", time_limit_seconds=2.5, node_limit=99)
        assert backend.time_limit_seconds == 2.5
        assert backend.max_nodes == 99

    def test_resolve_defaults_follow_the_limits(self):
        assert isinstance(resolve_backend(None), ScipySolver)
        assert isinstance(resolve_backend(None, node_limit=5), BranchAndBoundSolver)

    def test_resolve_returns_instances_by_identity(self):
        backend = BranchAndBoundSolver(max_nodes=7)
        assert resolve_backend(backend, node_limit=1000) is backend

    def test_highs_unavailable_raises_clear_error(self):
        if highs_available():
            pytest.skip("highspy installed: the backend constructs fine")
        with pytest.raises(SolverError, match="highspy"):
            create_backend("highs")


@pytest.mark.skipif(not highs_available(), reason="highspy is not installed")
class TestHighsBackend:
    def test_solves_knapsack(self):
        result = create_backend("highs").solve(_knapsack())
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(20.0)

    def test_consumes_warm_start(self):
        model = _knapsack()
        start = ScipySolver().solve(model).values_by_name()
        result = create_backend("highs").solve(model, warm_start=start)
        assert result.statistics["warm_start_used"] == 1.0
        assert result.objective == pytest.approx(20.0)

    def test_rejects_infeasible_start(self):
        model = _knapsack()
        result = create_backend("highs").solve(
            model, warm_start={f"x{i}": 1.0 for i in range(4)}
        )
        assert result.statistics["warm_start_rejected"] == 1.0
        assert result.objective == pytest.approx(20.0)


class TestPrimalHeuristic:
    def test_rejects_non_provisioning_models(self):
        with pytest.raises(SolverError, match="provisioning path model"):
            PrimalHeuristicSolver().solve(_knapsack())

    def test_feasible_on_provisioning_model(self):
        built = _provisioning_model()
        result = PrimalHeuristicSolver().solve(built.model)
        assert result.status is SolveStatus.FEASIBLE
        values = result.values_by_name()
        # A full assignment: every model variable valued, one path selected.
        assert set(values) == {v.name for v in built.model.variables()}
        assert values["r_max"] <= 1.0 + 1e-9
        selected = [
            name for name, value in values.items()
            if name.startswith("x__") and value > 0.5
        ]
        assert selected

    def test_repeated_solves_are_identical(self):
        built = _provisioning_model()
        first = PrimalHeuristicSolver().solve(built.model)
        second = PrimalHeuristicSolver().solve(built.model)
        assert first.values_by_name() == second.values_by_name()
        assert first.objective == second.objective

    def test_consumes_warm_start(self):
        built = _provisioning_model()
        exact = BranchAndBoundSolver().solve(built.model)
        seeded = PrimalHeuristicSolver().solve(
            built.model, warm_start=exact.values_by_name()
        )
        assert seeded.statistics["warm_start_used"] == 1.0
        # Seeded from the optimum, the search can only keep or improve it.
        assert seeded.values_by_name()["r_max"] <= (
            exact.values_by_name()["r_max"] + 1e-9
        )

    def test_rejects_broken_warm_start(self):
        built = _provisioning_model()
        result = PrimalHeuristicSolver().solve(
            built.model, warm_start={"nonsense": 1.0}
        )
        # The start decodes to no usable path; greedy construction covers.
        assert result.statistics["warm_start_rejected"] == 1.0
        assert result.status is SolveStatus.FEASIBLE


class TestAutoSolver:
    def test_short_circuits_on_proven_optimum(self):
        result = AutoSolver().solve(_knapsack())
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(20.0)
        # scipy (first available candidate) proves optimality; no racing on.
        assert result.statistics["backend"] == (
            "highs" if highs_available() else "scipy"
        )
        assert result.statistics["auto_candidates"] == 1.0

    def test_repeated_solves_pick_identically(self):
        built = _provisioning_model()
        outcomes = [AutoSolver().solve(built.model) for _ in range(3)]
        picks = {outcome.statistics["backend"] for outcome in outcomes}
        assert len(picks) == 1
        baseline = outcomes[0].values_by_name()
        for outcome in outcomes[1:]:
            assert outcome.values_by_name() == baseline

    def test_large_models_are_heuristic_seeded(self):
        built = _provisioning_model()
        assert built.model.num_integer_variables() > 0
        driver = AutoSolver()
        driver.seed_threshold = 0  # force the seeding path
        result = driver.solve(built.model)
        assert result.status is SolveStatus.OPTIMAL
        assert result.statistics["auto_seeded"] == 1.0

    def test_node_limit_restricts_candidates(self):
        driver = AutoSolver(node_limit=50_000)
        result = driver.solve(_knapsack())
        # scipy cannot bound its search; only node-limit-capable backends run.
        assert result.statistics["backend"] in ("highs", "bnb")
        assert result.status is SolveStatus.OPTIMAL

    def test_infeasible_model_short_circuits(self):
        model = Model()
        x = model.add_binary("x")
        model.add_constraint(x.to_expr() >= 2.0)
        model.minimize(x.to_expr())
        result = AutoSolver().solve(model)
        assert result.status is SolveStatus.INFEASIBLE
        assert result.statistics["auto_candidates"] == 1.0
