"""Tests for the sparse standard form, warm starts, and model row removal."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.lp import (
    BranchAndBoundSolver,
    LinExpr,
    Model,
    ScipySolver,
    SolveStatus,
    Variable,
)


def _knapsack():
    model = Model()
    values = [10, 13, 7, 8]
    weights = [3, 4, 2, 3]
    xs = [model.add_binary(f"x{i}") for i in range(4)]
    model.add_constraint(LinExpr.sum_of(w * x for w, x in zip(weights, xs)) <= 6)
    model.add_constraint((xs[0] + xs[1] + xs[2] + xs[3]) <= 3)
    model.maximize(LinExpr.sum_of(v * x for v, x in zip(values, xs)))
    return model, xs


class TestSparseStandardForm:
    def test_sparse_matches_dense(self):
        model, _ = _knapsack()
        dense = model.to_standard_form()
        sparse = model.to_standard_form(sparse=True)
        assert not dense.is_sparse and sparse.is_sparse
        assert np.array_equal(sparse.a_ub.toarray(), dense.a_ub)
        assert np.array_equal(sparse.b_ub, dense.b_ub)
        assert np.array_equal(sparse.c, dense.c)
        assert sparse.bounds == dense.bounds

    def test_sparse_accumulates_duplicate_terms(self):
        # A variable appearing twice in one row must sum, exactly like the
        # dense np.add.at scatter.
        model = Model()
        x = model.add_continuous("x", 0, 10)
        expression = LinExpr().add_term(x, 1.0).add_term(x, 2.5)
        model.add_constraint(expression <= 7)
        model.minimize(x)
        dense = model.to_standard_form()
        sparse = model.to_standard_form(sparse=True)
        assert np.array_equal(sparse.a_ub.toarray(), dense.a_ub)
        assert dense.a_ub[0, 0] == 3.5

    def test_equality_rows_sparse(self):
        model = Model()
        x = model.add_continuous("x", 0, 10)
        y = model.add_continuous("y", 0, 10)
        model.add_constraint((x + y).equals(4))
        model.minimize(x - y)
        sparse = model.to_standard_form(sparse=True)
        assert sparse.a_eq.shape == (1, 2)
        assert np.array_equal(sparse.a_eq.toarray(), [[1.0, 1.0]])

    def test_solver_results_identical_between_layouts(self):
        model, _ = _knapsack()
        dense_result = ScipySolver(sparse=False).solve(model)
        sparse_result = ScipySolver(sparse=True).solve(model)
        assert dense_result.objective == sparse_result.objective == 20.0
        assert dense_result.values_by_name() == sparse_result.values_by_name()

    def test_branch_and_bound_consumes_sparse_form_end_to_end(self):
        """The B&B backend defaults to the sparse export for its
        relaxations (and warm-start validation); both layouts must agree."""
        model, _ = _knapsack()
        sparse_result = BranchAndBoundSolver().solve(model)
        dense_result = BranchAndBoundSolver(sparse=False).solve(model)
        assert sparse_result.objective == dense_result.objective == 20.0
        assert sparse_result.values_by_name() == dense_result.values_by_name()
        # Warm-start validation multiplies the (sparse) matrices too.
        start = {name: value for name, value in sparse_result.values_by_name().items()}
        warm = BranchAndBoundSolver().solve(model, warm_start=start)
        assert warm.statistics["warm_start_used"] == 1.0

    def test_milp_diagnostics_surfaced(self):
        model, _ = _knapsack()
        result = ScipySolver().solve(model)
        assert result.status is SolveStatus.OPTIMAL
        assert "nodes" in result.statistics
        assert result.statistics.get("best_bound") == pytest.approx(20.0)
        assert result.statistics.get("gap") == pytest.approx(0.0, abs=1e-6)


class TestWarmStart:
    def test_valid_start_seeds_incumbent(self):
        model, _ = _knapsack()
        optimal = ScipySolver().solve(model)
        start = optimal.values_by_name()
        result = BranchAndBoundSolver().solve(model, warm_start=start)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(optimal.objective)
        assert result.statistics["warm_start_used"] == 1.0

    def test_infeasible_start_rejected_not_trusted(self):
        model, _ = _knapsack()
        # Selecting every item violates the weight budget.
        bad = {f"x{i}": 1.0 for i in range(4)}
        result = BranchAndBoundSolver().solve(model, warm_start=bad)
        assert result.statistics["warm_start_rejected"] == 1.0
        assert result.objective == pytest.approx(20.0)

    def test_fractional_start_rejected_for_integers(self):
        model, _ = _knapsack()
        result = BranchAndBoundSolver().solve(
            model, warm_start={"x0": 0.5, "x1": 0.0, "x2": 0.0, "x3": 0.0}
        )
        assert result.statistics["warm_start_rejected"] == 1.0

    def test_scipy_backend_records_ignored_start(self):
        model, _ = _knapsack()
        result = ScipySolver().solve(model, warm_start={"x0": 1.0})
        assert result.statistics["warm_start_ignored"] == 1.0
        assert result.objective == pytest.approx(20.0)

    def test_scipy_backend_warns_once_per_instance_about_ignored_start(self):
        """A dropped MIP start is easy to miss in statistics alone: each
        backend instance warns the first time (and only the first time) a
        start is recorded-ignored.  The state is per-instance — not a
        module global — so the outcome never depends on which test (or
        solver) ran first.  Backends that consume starts stay silent."""
        import warnings

        model, _ = _knapsack()
        solver = ScipySolver()
        with pytest.warns(RuntimeWarning, match="NOT consumed"):
            solver.solve(model, warm_start={"x0": 1.0})
        # One-time per instance: the second ignored start is silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            solver.solve(model, warm_start={"x0": 1.0})
        # A fresh instance has not warned yet — no cross-instance bleed.
        with pytest.warns(RuntimeWarning, match="NOT consumed"):
            ScipySolver().solve(model, warm_start={"x0": 1.0})

        # A start-consuming subclass (highspy plumbing) is gated off.
        class ConsumingScipy(ScipySolver):
            consumes_warm_starts = True

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ConsumingScipy().solve(model, warm_start={"x0": 1.0})

    def test_warm_and_cold_solves_pick_identical_tiebreaker_optima(self):
        """The warm-start determinism fix: when the model declares its
        objective resolution (the tiebreaker epsilon) below the solver's
        default absolute gap, a seeded incumbent that is optimal-but-for-
        the-tiebreaker must not shadow the strictly better tie."""
        def tie_model():
            model = Model()
            x = model.add_binary("x")
            model.minimize(LinExpr.sum_of([1e-9 * x]))
            return model, x

        # Without a declared resolution, the 1e-9-worse incumbent survives
        # inside the default 1e-6 gap: warm diverges from cold.
        model, x = tie_model()
        stale = BranchAndBoundSolver().solve(model, warm_start={"x": 1.0})
        assert stale.values_by_name()["x"] == 1.0

        # With the resolution declared (as set_provisioning_objective does
        # for min-max models), the gap scales below the epsilon and the
        # warm solve finds the same optimum as a cold one.
        model, x = tie_model()
        model.objective_resolution = 1e-9
        cold = BranchAndBoundSolver().solve(model)
        warm = BranchAndBoundSolver().solve(model, warm_start={"x": 1.0})
        assert warm.statistics["warm_start_used"] == 1.0
        assert cold.values_by_name()["x"] == 0.0
        assert warm.values_by_name() == cold.values_by_name()

    def test_provisioning_models_declare_objective_resolution(self):
        """The min-max provisioning objectives publish their tiebreaker
        epsilon so gap-based solvers can scale below it."""
        from repro.core.localization import localize
        from repro.core.logical import build_logical_topology, infer_endpoints
        from repro.core.parser import parse_policy
        from repro.core.provisioning import build_provisioning_model
        from repro.topology.generators import figure2_example
        from repro.units import Bandwidth

        topology = figure2_example(capacity=Bandwidth.gbps(2))
        policy = parse_policy(
            """
            [ z : (eth.src = 00:00:00:00:00:01 and
                   eth.dst = 00:00:00:00:00:02) -> .* ],
            min(z, 50MB/s)
            """,
            topology=topology,
        )
        rates = localize(policy)
        statement = policy.statements[0]
        source, destination = infer_endpoints(statement, topology)
        logical = {
            "z": build_logical_topology(
                statement, topology, {}, source=source, destination=destination
            )
        }
        built = build_provisioning_model([statement], logical, rates, topology)
        resolution = built.model.objective_resolution
        assert resolution is not None and resolution > 0.0
        # The declared resolution IS the per-edge tiebreaker coefficient.
        tiebreaker_coefficients = {
            coefficient
            for variable, coefficient in built.model.objective.coefficients.items()
            if variable is not built.r_max
        }
        assert len(tiebreaker_coefficients) == 1
        assert next(iter(tiebreaker_coefficients)) == pytest.approx(resolution)

    def test_model_solve_passes_warm_start_through(self):
        model, _ = _knapsack()
        start = ScipySolver().solve(model).values_by_name()
        result = model.solve(BranchAndBoundSolver(), warm_start=start)
        assert result.statistics["warm_start_used"] == 1.0

    def test_start_with_unbounded_variable_rejected(self):
        """A warm start omitting a variable whose lower bound is -inf must
        be rejected, not seeded as a -inf/NaN incumbent that disables
        pruning."""
        import math

        model = Model()
        x = model.add_binary("x")
        y = model.add_continuous("y", lower=-math.inf)
        model.add_constraint(y.to_expr() >= -5.0)
        model.add_constraint(x + y <= 10.0)
        model.minimize(y + x)
        result = model.solve(BranchAndBoundSolver(), warm_start={"x": 1.0})
        assert result.statistics["warm_start_rejected"] == 1.0
        assert result.objective == pytest.approx(-5.0)

    def test_warm_start_capability_flags(self):
        """The incremental engine skips incumbent projection for backends
        that cannot consume MIP starts (the default scipy backend).  The
        one documented default for third-party backends: an undeclared
        capability is absent — declare ``consumes_warm_starts = True`` to
        receive starts."""
        from repro.incremental.solve import solver_consumes_warm_starts

        assert not solver_consumes_warm_starts(None)
        assert not solver_consumes_warm_starts(ScipySolver())
        assert solver_consumes_warm_starts(BranchAndBoundSolver())

        class UnknownBackend:  # third-party, declares nothing: no starts
            def solve(self, model):
                raise NotImplementedError

        class DeclaringBackend(UnknownBackend):
            consumes_warm_starts = True

        assert not solver_consumes_warm_starts(UnknownBackend())
        assert solver_consumes_warm_starts(DeclaringBackend())

    def test_model_solve_gates_start_on_declared_capability(self):
        """``Model.solve`` consults the same capability flag (no more
        ``inspect.signature`` probing): an undeclared backend is called
        without the keyword even when a start is supplied."""
        model, _ = _knapsack()
        calls = {}

        class ProbeBackend:  # would crash if handed warm_start
            def solve(self, solved_model):
                calls["warm_start"] = False
                return ScipySolver().solve(solved_model)

        result = model.solve(ProbeBackend(), warm_start={"x0": 1.0})
        assert calls == {"warm_start": False}
        assert result.objective == pytest.approx(20.0)


class TestRowAndVariableRemoval:
    def test_remove_constraint_by_identity(self):
        model = Model()
        x = model.add_binary("x")
        kept = model.add_constraint(x.to_expr() <= 1, name="kept")
        doomed = model.add_constraint(x.to_expr() >= 0, name="doomed")
        model.remove_constraint(doomed)
        assert model.constraints() == [kept]
        with pytest.raises(SolverError):
            model.remove_constraint(doomed)

    def test_remove_constraints_bulk(self):
        model = Model()
        x = model.add_binary("x")
        rows = [model.add_constraint(x.to_expr() <= 1) for _ in range(5)]
        model.remove_constraints(rows[1:4])
        assert model.num_constraints() == 2

    def test_remove_variable_frees_name(self):
        model = Model()
        x = model.add_binary("x")
        model.remove_variable(x)
        assert model.num_variables() == 0
        model.add_binary("x")  # the name is reusable

    def test_dangling_reference_caught_at_export(self):
        model = Model()
        x = model.add_binary("x")
        y = model.add_binary("y")
        model.add_constraint(x + y <= 1)
        model.remove_variable(y)  # constraint still references y
        with pytest.raises(SolverError):
            model.to_standard_form()

    def test_remove_unknown_variable_rejected(self):
        with pytest.raises(SolverError):
            Model().remove_variable("ghost")

    def test_dangling_objective_reference_caught_at_export(self):
        model = Model()
        x = model.add_binary("x")
        y = model.add_binary("y")
        model.minimize(x + y)
        model.remove_variable(y)  # objective still references y
        with pytest.raises(SolverError, match="objective references"):
            model.to_standard_form()


class TestInPlaceTermEditing:
    def test_set_term_overwrites(self):
        x = Variable("x")
        expression = LinExpr().add_term(x, 2.0)
        expression.set_term(x, 5.0)
        assert expression.coefficients[x] == 5.0

    def test_set_term_zero_deletes(self):
        x = Variable("x")
        expression = LinExpr().add_term(x, 2.0)
        expression.set_term(x, 0.0)
        assert x not in expression.coefficients

    def test_remove_term(self):
        x, y = Variable("x"), Variable("y")
        expression = LinExpr().add_term(x, 1.0).add_term(y, 2.0)
        expression.remove_term(x)
        assert not expression.has_term(x)
        assert expression.has_term(y)
        expression.remove_term(x)  # no-op when absent
