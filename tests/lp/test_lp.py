"""Tests for the LP/MIP modelling layer and both solver backends."""

import itertools
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SolverError
from repro.lp import (
    BranchAndBoundSolver,
    Constraint,
    LinExpr,
    Model,
    Objective,
    ScipySolver,
    Sense,
    SolveStatus,
    Variable,
    solve,
)


class TestExpressions:
    def test_variable_arithmetic(self):
        x = Variable("x")
        y = Variable("y")
        expression = 2 * x + 3 * y + 1 - x
        assert expression.coefficients[x] == 1.0
        assert expression.coefficients[y] == 3.0
        assert expression.constant == 1.0

    def test_negation_and_subtraction(self):
        x = Variable("x")
        expression = 5 - x
        assert expression.constant == 5.0
        assert expression.coefficients[x] == -1.0

    def test_sum_of(self):
        xs = [Variable(f"x{i}") for i in range(4)]
        expression = LinExpr.sum_of(xs)
        assert all(expression.coefficients[x] == 1.0 for x in xs)

    def test_value_evaluation(self):
        x, y = Variable("x"), Variable("y")
        expression = 2 * x + y + 3
        assert expression.value({x: 1.0, y: 2.0}) == 7.0

    def test_scaling_by_non_number_rejected(self):
        with pytest.raises(TypeError):
            Variable("x").to_expr() * Variable("y")

    def test_constraint_construction(self):
        x = Variable("x")
        constraint = x + 2 <= 5
        assert isinstance(constraint, Constraint)
        assert constraint.sense is Sense.LESS_EQUAL
        assert constraint.satisfied({x: 3.0})
        assert not constraint.satisfied({x: 4.0})

    def test_constraint_violation_measure(self):
        x = Variable("x")
        constraint = x >= 4
        assert constraint.violation({x: 1.0}) == pytest.approx(3.0)
        assert constraint.violation({x: 5.0}) == 0.0

    def test_equality_constraint(self):
        x = Variable("x")
        constraint = (x + 1).equals(3)
        assert constraint.sense is Sense.EQUAL
        assert constraint.satisfied({x: 2.0})


class TestModel:
    def test_duplicate_variable_rejected(self):
        model = Model()
        model.add_variable("x")
        with pytest.raises(SolverError):
            model.add_variable("x")

    def test_unknown_variable_lookup_rejected(self):
        with pytest.raises(SolverError):
            Model().variable("missing")

    def test_standard_form_shapes(self):
        model = Model()
        x = model.add_binary("x")
        y = model.add_continuous("y", 0, 10)
        model.add_constraint(x + y <= 5)
        model.add_constraint((x + y).equals(2))
        model.maximize(x + 2 * y)
        form = model.to_standard_form()
        assert form.a_ub.shape == (1, 2)
        assert form.a_eq.shape == (1, 2)
        assert list(form.integrality) == [1, 0]
        assert form.maximize

    def test_constraint_with_foreign_variable_rejected(self):
        model = Model()
        model.add_variable("x")
        stranger = Variable("y")
        model.add_constraint(stranger <= 1)
        with pytest.raises(SolverError):
            model.to_standard_form()

    def test_counts(self):
        model = Model()
        model.add_binary("x")
        model.add_continuous("y")
        model.add_constraint(model.variable("x") <= 1)
        assert model.num_variables() == 2
        assert model.num_integer_variables() == 1
        assert model.num_constraints() == 1


class TestScipySolver:
    def test_pure_lp(self):
        model = Model()
        x = model.add_continuous("x", 0, 10)
        y = model.add_continuous("y", 0, 10)
        model.add_constraint(x + y <= 8)
        model.maximize(3 * x + y)
        result = model.solve()
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(24.0)
        assert result.value_of(x) == pytest.approx(8.0)
        assert result.value_of(y) == pytest.approx(0.0)

    def test_knapsack_mip(self):
        values = [10, 13, 7, 8]
        weights = [3, 4, 2, 3]
        model = Model()
        xs = [model.add_binary(f"x{i}") for i in range(4)]
        model.add_constraint(LinExpr.sum_of(w * x for w, x in zip(weights, xs)) <= 6)
        model.maximize(LinExpr.sum_of(v * x for v, x in zip(values, xs)))
        result = model.solve()
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(20.0)  # items 1 and 2 (13 + 7)

    def test_infeasible(self):
        model = Model()
        x = model.add_continuous("x", 0, 1)
        model.add_constraint(x >= 2)
        model.minimize(x)
        assert model.solve().status is SolveStatus.INFEASIBLE

    def test_unbounded(self):
        model = Model()
        x = model.add_continuous("x", 0, math.inf)
        model.maximize(x)
        assert model.solve().status in (SolveStatus.UNBOUNDED, SolveStatus.ERROR)

    def test_minimization(self):
        model = Model()
        x = model.add_continuous("x", 2, 10)
        model.minimize(x)
        assert model.solve().objective == pytest.approx(2.0)

    def test_statistics_recorded(self):
        model = Model()
        x = model.add_binary("x")
        model.maximize(x)
        result = solve(model)
        assert "solve_seconds" in result.statistics
        assert result.statistics["num_variables"] == 1

    def test_shortest_path_as_mip(self):
        # A 4-node diamond: the MIP should pick the cheaper branch.
        edges = {("s", "a"): 1, ("a", "t"): 1, ("s", "b"): 2, ("b", "t"): 2}
        model = Model()
        xs = {edge: model.add_binary(f"x_{edge[0]}{edge[1]}") for edge in edges}
        for node in ("a", "b"):
            inflow = LinExpr.sum_of(xs[e] for e in edges if e[1] == node)
            outflow = LinExpr.sum_of(xs[e] for e in edges if e[0] == node)
            model.add_constraint((outflow - inflow).equals(0))
        model.add_constraint(
            LinExpr.sum_of(xs[e] for e in edges if e[0] == "s").equals(1)
        )
        model.add_constraint(
            LinExpr.sum_of(xs[e] for e in edges if e[1] == "t").equals(1)
        )
        model.minimize(LinExpr.sum_of(cost * xs[e] for e, cost in edges.items()))
        result = model.solve()
        assert result.objective == pytest.approx(2.0)
        assert result.value_of(xs[("s", "a")]) == 1.0


class TestBranchAndBound:
    def test_agrees_with_scipy_on_knapsack(self):
        model = Model()
        values = [6, 5, 4, 3, 2]
        weights = [4, 3, 2, 2, 1]
        xs = [model.add_binary(f"x{i}") for i in range(5)]
        model.add_constraint(LinExpr.sum_of(w * x for w, x in zip(weights, xs)) <= 7)
        model.maximize(LinExpr.sum_of(v * x for v, x in zip(values, xs)))
        scipy_result = ScipySolver().solve(model)
        bb_result = BranchAndBoundSolver().solve(model)
        assert bb_result.status is SolveStatus.OPTIMAL
        assert bb_result.objective == pytest.approx(scipy_result.objective)

    def test_integer_infeasible_detected(self):
        model = Model()
        x = model.add_variable("x", lower=0, upper=10, is_integer=True)
        model.add_constraint(2 * x >= 3)
        model.add_constraint(2 * x <= 3)
        model.minimize(x)
        assert BranchAndBoundSolver().solve(model).status is SolveStatus.INFEASIBLE

    def test_pure_lp_falls_through(self):
        model = Model()
        x = model.add_continuous("x", 0, 4)
        model.maximize(x)
        result = BranchAndBoundSolver().solve(model)
        assert result.objective == pytest.approx(4.0)

    def test_node_statistics(self):
        model = Model()
        xs = [model.add_binary(f"x{i}") for i in range(3)]
        model.add_constraint(LinExpr.sum_of(xs) <= 2)
        model.maximize(LinExpr.sum_of((i + 1) * x for i, x in enumerate(xs)))
        result = BranchAndBoundSolver().solve(model)
        assert result.statistics["nodes"] >= 1
        assert result.objective == pytest.approx(5.0)


class TestSolverCrossCheckProperties:
    """The two backends (and brute force) agree on random small knapsacks."""

    @settings(max_examples=25, deadline=None)
    @given(
        values=st.lists(st.integers(min_value=1, max_value=12), min_size=2, max_size=5),
        weights=st.lists(st.integers(min_value=1, max_value=8), min_size=2, max_size=5),
        budget=st.integers(min_value=1, max_value=16),
    )
    def test_backends_match_brute_force(self, values, weights, budget):
        size = min(len(values), len(weights))
        values, weights = values[:size], weights[:size]

        model = Model()
        xs = [model.add_binary(f"x{i}") for i in range(size)]
        model.add_constraint(
            LinExpr.sum_of(w * x for w, x in zip(weights, xs)) <= budget
        )
        model.maximize(LinExpr.sum_of(v * x for v, x in zip(values, xs)))

        brute = max(
            (
                sum(v for v, chosen in zip(values, combo) if chosen)
                for combo in itertools.product([0, 1], repeat=size)
                if sum(w for w, chosen in zip(weights, combo) if chosen) <= budget
            ),
            default=0,
        )
        scipy_result = ScipySolver().solve(model)
        bb_result = BranchAndBoundSolver().solve(model)
        assert scipy_result.objective == pytest.approx(brute)
        assert bb_result.objective == pytest.approx(brute)


class TestInPlaceAccumulation:
    """The in-place LinExpr growth API used on the MIP construction hot path."""

    def test_add_term_matches_operator_add(self):
        xs = [Variable(f"x{i}") for i in range(6)]
        grown = LinExpr()
        for i, x in enumerate(xs):
            grown.add_term(x, float(i + 1))
        operator_built = LinExpr.sum_of((i + 1) * x for i, x in enumerate(xs))
        assert grown.coefficients == operator_built.coefficients
        assert grown.constant == operator_built.constant

    def test_add_term_accumulates_duplicates(self):
        x = Variable("x")
        expression = LinExpr().add_term(x, 1.5).add_term(x, 2.5)
        assert expression.coefficients[x] == 4.0

    def test_add_term_returns_self(self):
        x = Variable("x")
        expression = LinExpr()
        assert expression.add_term(x) is expression

    def test_weighted_sum(self):
        xs = [Variable(f"x{i}") for i in range(4)]
        pairs = [(x, float(i)) for i, x in enumerate(xs)]
        expression = LinExpr.weighted_sum(pairs, constant=7.0)
        assert expression.constant == 7.0
        assert all(expression.coefficients[x] == float(i) for i, x in enumerate(xs))

    def test_add_handles_expressions_variables_and_numbers(self):
        x, y = Variable("x"), Variable("y")
        expression = LinExpr()
        expression.add(x).add(2.0).add(3 * y + 1)
        assert expression.coefficients == {x: 1.0, y: 3.0}
        assert expression.constant == 3.0

    def test_add_constant(self):
        expression = LinExpr().add_constant(2).add_constant(0.5)
        assert expression.constant == 2.5


class TestSolverInterruption:
    """Regression tests: interrupted searches must not mislabel their result."""

    @staticmethod
    def _knapsack(n=12):
        model = Model()
        weights = [3 + (i * 7) % 11 for i in range(n)]
        values = [5 + (i * 5) % 13 for i in range(n)]
        xs = [model.add_binary(f"x{i}") for i in range(n)]
        model.add_constraint(
            LinExpr.sum_of(w * x for w, x in zip(weights, xs)) <= sum(weights) // 3
        )
        model.maximize(LinExpr.sum_of(v * x for v, x in zip(values, xs)))
        return model

    def test_node_limit_with_incumbent_returns_feasible(self):
        model = self._knapsack()
        optimal = BranchAndBoundSolver().solve(model)
        assert optimal.status is SolveStatus.OPTIMAL

        limited = BranchAndBoundSolver(max_nodes=10).solve(model)
        assert limited.status is SolveStatus.FEASIBLE
        assert limited.status.has_solution
        assert limited.values, "the incumbent assignment must be returned"
        # The incumbent is genuinely feasible...
        for constraint in model.constraints():
            assert constraint.satisfied(limited.values)
        # ...and no better than the true optimum.
        assert limited.objective <= optimal.objective + 1e-6
        # The remaining best bound is surfaced and brackets the optimum
        # (an upper bound, since this model maximizes).
        assert "best_bound" in limited.statistics
        assert limited.statistics["best_bound"] >= optimal.objective - 1e-6
        assert limited.statistics["gap"] >= 0.0

    def test_node_limit_without_incumbent_raises(self):
        with pytest.raises(SolverError):
            BranchAndBoundSolver(max_nodes=2).solve(self._knapsack())

    def test_generous_node_limit_still_proves_optimality(self):
        result = BranchAndBoundSolver(max_nodes=200_000).solve(self._knapsack())
        assert result.status is SolveStatus.OPTIMAL
        assert result.statistics["best_bound"] == pytest.approx(result.objective)

    def test_time_limit_before_any_exploration_is_not_optimal(self):
        # A zero time limit interrupts before the first node: the solver
        # must not claim OPTIMAL (the old bug) nor INFEASIBLE.
        result = BranchAndBoundSolver(time_limit_seconds=0.0).solve(self._knapsack())
        assert result.status is SolveStatus.ERROR
        assert not result.status.has_solution

    def test_feasible_status_properties(self):
        assert SolveStatus.FEASIBLE.has_solution
        assert not SolveStatus.FEASIBLE.is_optimal
        assert SolveStatus.OPTIMAL.has_solution
        assert not SolveStatus.INFEASIBLE.has_solution
