"""Tests for path expressions: AST, parser, substitution, NFA/DFA, operations."""

import pytest

from repro.errors import ParseError, PlacementError
from repro.regex import (
    ANY,
    DFA,
    NFA,
    Concat,
    Dot,
    Empty,
    Epsilon,
    Negate,
    Star,
    Symbol,
    Union,
    accepts,
    concat,
    equivalent,
    included,
    intersection_empty,
    is_empty,
    parse_path_expression,
    shortest_accepted,
    star,
    substitute_functions,
    union,
)
from repro.regex.ast import DOT, any_path, literal_path
from repro.regex.minimize import minimize
from repro.regex.operations import compile_dfa, counterexample
from repro.regex.substitution import functions_used


class TestAst:
    def test_concat_identities(self):
        a = Symbol("a")
        assert concat(Epsilon(), a) is a
        assert isinstance(concat(Empty(), a), Empty)
        assert isinstance(concat(), Epsilon)

    def test_union_identities(self):
        a = Symbol("a")
        assert union(Empty(), a) is a

    def test_star_simplifications(self):
        assert isinstance(star(Empty()), Epsilon)
        inner = star(Symbol("a"))
        assert star(inner) is inner

    def test_size(self):
        expression = parse_path_expression(".* dpi .* nat .*")
        assert expression.size() >= 7

    def test_symbols(self):
        expression = parse_path_expression("h1 .* dpi .* h2")
        assert expression.symbols() == {"h1", "dpi", "h2"}

    def test_nullable(self):
        assert any_path().nullable()
        assert not Symbol("a").nullable()
        assert not parse_path_expression("h1 .*").nullable()

    def test_literal_path(self):
        assert accepts(literal_path("a", "b", "c"), ["a", "b", "c"])
        assert not accepts(literal_path("a", "b", "c"), ["a", "b"])

    def test_operator_sugar(self):
        expression = Symbol("a") + Symbol("b") | Symbol("c")
        assert accepts(expression, ["a", "b"])
        assert accepts(expression, ["c"])

    def test_str_round_trips_through_parser(self):
        expression = parse_path_expression("h1 (m1|m2)* dpi .* h2")
        assert equivalent(expression, parse_path_expression(str(expression)))


class TestParser:
    def test_dot_star(self):
        expression = parse_path_expression(".*")
        assert isinstance(expression, Star)
        assert isinstance(expression.operand, Dot)

    def test_paper_expression(self):
        expression = parse_path_expression(".* dpi .* nat .*")
        assert accepts(expression, ["h1", "dpi", "s1", "nat", "h2"])
        assert not accepts(expression, ["h1", "nat", "s1", "dpi", "h2"])

    def test_union_of_locations(self):
        expression = parse_path_expression(".* (h1|h2|m1) .*")
        assert accepts(expression, ["s1", "m1", "s2"])
        assert not accepts(expression, ["s1", "s2"])

    def test_negation(self):
        expression = parse_path_expression("!(.* dpi .*)")
        assert accepts(expression, ["h1", "s1", "h2"])
        assert not accepts(expression, ["h1", "dpi", "h2"])

    def test_empty_source_rejected(self):
        with pytest.raises(ParseError):
            parse_path_expression("   ")

    def test_unbalanced_parenthesis_rejected(self):
        with pytest.raises(ParseError):
            parse_path_expression("(h1 | h2")

    def test_bad_character_rejected(self):
        with pytest.raises(ParseError):
            parse_path_expression("h1 -> h2")


class TestSubstitution:
    LOCATIONS = ["h1", "h2", "m1", "s1", "s2"]

    def test_function_replaced_by_union(self):
        expression = parse_path_expression(".* nat .*")
        rewritten = substitute_functions(expression, {"nat": ["m1"]}, self.LOCATIONS)
        assert accepts(rewritten, ["h1", "m1", "h2"])
        assert not accepts(rewritten, ["h1", "s1", "h2"])

    def test_multi_location_function(self):
        expression = parse_path_expression(".* dpi .*")
        rewritten = substitute_functions(
            expression, {"dpi": ["h1", "h2", "m1"]}, self.LOCATIONS
        )
        for location in ("h1", "h2", "m1"):
            assert accepts(rewritten, ["s1", location, "s2"])

    def test_locations_left_alone(self):
        expression = parse_path_expression("h1 .* h2")
        rewritten = substitute_functions(expression, {}, self.LOCATIONS)
        assert equivalent(expression, rewritten)

    def test_unknown_symbol_rejected(self):
        with pytest.raises(PlacementError):
            substitute_functions(parse_path_expression(".* firewall .*"), {}, self.LOCATIONS)

    def test_empty_placement_rejected(self):
        with pytest.raises(PlacementError):
            substitute_functions(
                parse_path_expression(".* dpi .*"), {"dpi": []}, self.LOCATIONS
            )

    def test_placement_at_unknown_location_rejected(self):
        with pytest.raises(PlacementError):
            substitute_functions(
                parse_path_expression(".* dpi .*"), {"dpi": ["nowhere"]}, self.LOCATIONS
            )

    def test_functions_used(self):
        expression = parse_path_expression("h1 .* dpi .* nat .* h2")
        assert functions_used(expression, self.LOCATIONS) == {"dpi", "nat"}


class TestAutomata:
    def test_nfa_accepts(self):
        nfa = NFA.from_regex(parse_path_expression("a b* c"))
        assert nfa.accepts_sequence(["a", "c"])
        assert nfa.accepts_sequence(["a", "b", "b", "c"])
        assert not nfa.accepts_sequence(["a", "b"])

    def test_nfa_dot_matches_anything(self):
        nfa = NFA.from_regex(parse_path_expression(". ."))
        assert nfa.accepts_sequence(["x", "y"])
        assert not nfa.accepts_sequence(["x"])

    def test_epsilon_free_equivalence(self):
        expression = parse_path_expression("a (b|c)* d")
        nfa = NFA.from_regex(expression)
        eps_free = nfa.to_epsilon_free()
        assert all(not targets for targets in eps_free.epsilon.values())
        for sequence in (["a", "d"], ["a", "b", "c", "d"], ["a"], ["d"]):
            assert nfa.accepts_sequence(sequence) == eps_free.accepts_sequence(sequence)

    def test_dfa_matches_nfa(self):
        expression = parse_path_expression(".* dpi .* nat .*")
        nfa = NFA.from_regex(expression)
        dfa = DFA.from_nfa(nfa)
        for sequence in (
            ["dpi", "nat"],
            ["a", "dpi", "b", "nat", "c"],
            ["nat", "dpi"],
            [],
        ):
            assert nfa.accepts_sequence(sequence) == dfa.accepts_sequence(sequence)

    def test_dfa_complement(self):
        dfa = compile_dfa(parse_path_expression(".* dpi .*")).complement()
        assert dfa.accepts_sequence(["a", "b"])
        assert not dfa.accepts_sequence(["a", "dpi", "b"])

    def test_dfa_product_operations(self):
        a = compile_dfa(parse_path_expression(".* dpi .*"))
        b = compile_dfa(parse_path_expression(".* nat .*"))
        both = a.intersect(b)
        assert both.accepts_sequence(["dpi", "nat"])
        assert not both.accepts_sequence(["dpi"])
        either = a.union(b)
        assert either.accepts_sequence(["dpi"])
        assert either.accepts_sequence(["nat"])
        only_a = a.difference(b)
        assert only_a.accepts_sequence(["dpi"])
        assert not only_a.accepts_sequence(["dpi", "nat"])

    def test_minimization_preserves_language_and_shrinks(self):
        expression = parse_path_expression("(a|b)* c (a|b)*")
        dfa = compile_dfa(expression)
        minimal = minimize(dfa)
        assert minimal.num_states() <= dfa.num_states()
        for sequence in (["c"], ["a", "c", "b"], ["a", "b"], []):
            assert dfa.accepts_sequence(sequence) == minimal.accepts_sequence(sequence)

    def test_relevant_symbols(self):
        nfa = NFA.from_regex(parse_path_expression(".* dpi .*"))
        assert nfa.relevant_symbols() == {"dpi"}


class TestLanguageOperations:
    def test_inclusion_of_refinement(self):
        # §4.1: adding a dpi constraint refines the original log-only policy.
        original = parse_path_expression(".* log .*")
        refined = parse_path_expression(".* log .* dpi .*")
        assert included(refined, original)
        assert not included(original, refined)

    def test_inclusion_reflexive(self):
        expression = parse_path_expression("h1 .* dpi .* h2")
        assert included(expression, expression)

    def test_everything_included_in_dot_star(self):
        assert included(parse_path_expression("h1 s1 h2"), any_path())

    def test_equivalence(self):
        assert equivalent(
            parse_path_expression("(a|b) c"), parse_path_expression("a c | b c")
        )

    def test_emptiness(self):
        assert is_empty(parse_path_expression("!(.*)"))
        assert not is_empty(any_path())

    def test_shortest_accepted(self):
        assert shortest_accepted(parse_path_expression(".* dpi .* nat .*")) == ("dpi", "nat")
        assert shortest_accepted(parse_path_expression("!(.*)")) is None

    def test_counterexample(self):
        witness = counterexample(
            parse_path_expression(".*"), parse_path_expression(".* dpi .*")
        )
        assert witness is not None
        assert "dpi" not in witness

    def test_intersection_empty(self):
        assert intersection_empty(
            parse_path_expression("a b"), parse_path_expression("a c")
        )
        assert not intersection_empty(
            parse_path_expression(".* dpi .*"), parse_path_expression(".* nat .*")
        )
