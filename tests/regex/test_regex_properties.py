"""Property-based tests for the automata substrate.

The decision procedures (acceptance, inclusion, equivalence, emptiness) are
cross-checked against brute-force enumeration of all short strings over a
small alphabet, which is exactly the kind of exhaustive oracle regular
languages admit.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.regex import DFA, NFA, included, equivalent, is_empty
from repro.regex.ast import (
    DOT,
    Concat,
    Empty,
    Epsilon,
    Negate,
    Regex,
    Star,
    Symbol,
    Union,
)
from repro.regex.minimize import minimize
from repro.regex.operations import compile_dfa

_ALPHABET = ["a", "b", "c"]

_LEAVES = st.one_of(
    st.sampled_from([Symbol(symbol) for symbol in _ALPHABET]),
    st.just(DOT),
    st.just(Epsilon()),
)


def _regexes():
    return st.recursive(
        _LEAVES,
        lambda children: st.one_of(
            st.tuples(children, children).map(lambda pair: Concat(*pair)),
            st.tuples(children, children).map(lambda pair: Union(*pair)),
            children.map(Star),
        ),
        max_leaves=6,
    )


def _all_strings(max_length=4):
    for length in range(max_length + 1):
        yield from itertools.product(_ALPHABET, repeat=length)


def _language(expression: Regex, max_length=4):
    nfa = NFA.from_regex(expression)
    return {
        string for string in _all_strings(max_length) if nfa.accepts_sequence(list(string))
    }


class TestAutomataProperties:
    @settings(max_examples=60, deadline=None)
    @given(expression=_regexes())
    def test_nfa_and_dfa_agree(self, expression):
        nfa = NFA.from_regex(expression)
        dfa = DFA.from_nfa(nfa)
        for string in _all_strings(3):
            assert nfa.accepts_sequence(list(string)) == dfa.accepts_sequence(list(string))

    @settings(max_examples=60, deadline=None)
    @given(expression=_regexes())
    def test_minimization_preserves_language(self, expression):
        dfa = compile_dfa(expression)
        minimal = minimize(dfa)
        for string in _all_strings(3):
            assert dfa.accepts_sequence(list(string)) == minimal.accepts_sequence(list(string))

    @settings(max_examples=40, deadline=None)
    @given(left=_regexes(), right=_regexes())
    def test_union_is_set_union(self, left, right):
        combined = _language(Union(left, right), 3)
        assert combined == _language(left, 3) | _language(right, 3)

    @settings(max_examples=40, deadline=None)
    @given(left=_regexes(), right=_regexes())
    def test_inclusion_matches_brute_force(self, left, right):
        brute_force = _language(left, 3) <= _language(right, 3)
        decided = included(left, right)
        # Inclusion over all strings implies inclusion over short ones.
        if decided:
            assert brute_force
        # And a short-string counterexample refutes inclusion.
        if not brute_force:
            assert not decided

    @settings(max_examples=40, deadline=None)
    @given(expression=_regexes())
    def test_inclusion_is_reflexive(self, expression):
        assert included(expression, expression)

    @settings(max_examples=40, deadline=None)
    @given(expression=_regexes())
    def test_complement_is_involutive_on_samples(self, expression):
        double = Negate(Negate(expression))
        assert equivalent(expression, double)

    @settings(max_examples=40, deadline=None)
    @given(expression=_regexes())
    def test_complement_flips_membership(self, expression):
        complemented = Negate(expression)
        nfa = NFA.from_regex(expression)
        complemented_nfa = NFA.from_regex(complemented)
        for string in _all_strings(3):
            assert nfa.accepts_sequence(list(string)) != complemented_nfa.accepts_sequence(
                list(string)
            )

    @settings(max_examples=40, deadline=None)
    @given(expression=_regexes())
    def test_empty_language_has_no_short_strings(self, expression):
        if is_empty(expression):
            assert _language(expression, 4) == set()

    @settings(max_examples=40, deadline=None)
    @given(left=_regexes(), right=_regexes())
    def test_equivalence_is_symmetric(self, left, right):
        assert equivalent(left, right) == equivalent(right, left)
