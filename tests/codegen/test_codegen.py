"""Tests for code generation: VLAN allocation, OpenFlow rules, queues, tc,
iptables, Click, and the orchestrating generator."""

import pytest

from repro.codegen import VlanAllocator
from repro.codegen.click import click_for_assignments
from repro.codegen.instructions import InstructionBundle, OpenFlowRule
from repro.codegen.openflow import match_from_predicate, rules_for_path, rules_for_sink_tree
from repro.codegen.queues import QueueAllocator, queues_for_path
from repro.codegen.tc import tc_for_statement
from repro.codegen.iptables import drop_rule_for_statement
from repro.errors import CodegenError
from repro.core import compile_policy, compute_sink_trees
from repro.core.allocation import PathAssignment, RateAllocation
from repro.core.ast import Statement
from repro.predicates import parse_predicate
from repro.regex import parse_path_expression
from repro.topology.generators import figure2_example, single_switch
from repro.units import Bandwidth
from tests.conftest import RUNNING_EXAMPLE_SOURCE


class TestVlanAllocator:
    def test_unique_tags(self):
        vlans = VlanAllocator()
        tags = {vlans.tag_for_tree(f"s{i}") for i in range(10)}
        tags |= {vlans.tag_for_statement(f"x{i}") for i in range(10)}
        assert len(tags) == 20

    def test_stable_per_key(self):
        vlans = VlanAllocator()
        assert vlans.tag_for_tree("s1") == vlans.tag_for_tree("s1")

    def test_valid_vlan_range(self):
        vlans = VlanAllocator()
        tag = vlans.tag_for_tree("s1")
        assert 2 <= tag <= 4094

    def test_exhaustion(self):
        vlans = VlanAllocator()
        with pytest.raises(CodegenError):
            for index in range(5000):
                vlans.tag_for_statement(f"x{index}")

    def test_assignments_report(self):
        vlans = VlanAllocator()
        vlans.tag_for_tree("s1")
        vlans.tag_for_statement("z")
        assignments = vlans.assignments()
        assert "tree:s1" in assignments and "statement:z" in assignments


class TestOpenFlow:
    def test_match_from_predicate(self):
        predicate = parse_predicate(
            "eth.src = 00:00:00:00:00:01 and tcp.dst = 80 and ip.proto = tcp"
        )
        match = dict(match_from_predicate(predicate))
        assert match["dl_src"] == "00:00:00:00:00:01"
        assert match["tp_dst"] == "80"
        assert match["nw_proto"] == "6"

    def test_negations_ignored_in_match(self):
        predicate = parse_predicate("tcp.dst = 80 and !(tcp.src = 22)")
        match = dict(match_from_predicate(predicate))
        assert "tp_src" not in match

    def test_sink_tree_rules(self):
        topology = figure2_example()
        trees = compute_sink_trees(topology)
        vlans = VlanAllocator()
        rules = rules_for_sink_tree(topology, trees["s2"], vlans)
        switches_with_rules = {rule.switch for rule in rules}
        assert "s1" in switches_with_rules and "s2" in switches_with_rules
        # Egress rule strips the VLAN tag and delivers by MAC.
        egress = [r for r in rules if "strip_vlan" in r.actions]
        assert egress and egress[0].switch == "s2"

    def test_path_rules_tag_and_strip(self):
        topology = figure2_example()
        assignment = PathAssignment(
            statement_id="z",
            path=("h1", "s1", "m1", "s1", "s2", "h2"),
            guaranteed_rate=Bandwidth.mbps(100),
        )
        predicate = parse_predicate("tcp.dst = 80")
        rules = rules_for_path(topology, assignment, predicate, VlanAllocator())
        assert any("push_vlan" in action for rule in rules for action in rule.actions)
        assert any("strip_vlan" in rule.actions for rule in rules)
        assert all(isinstance(rule, OpenFlowRule) for rule in rules)

    def test_rule_render(self):
        rule = OpenFlowRule(
            switch="s1", match=(("dl_vlan", "2"),), actions=("output:s2",)
        )
        text = rule.render()
        assert "s1" in text and "dl_vlan=2" in text and "output:s2" in text


class TestQueuesTcIptablesClick:
    def test_queue_per_switch_hop(self):
        topology = figure2_example()
        assignment = PathAssignment(
            statement_id="z", path=("h1", "s1", "s2", "h2"),
        )
        allocation = RateAllocation(
            statement_id="z", guarantee=Bandwidth.mbps(100), cap=Bandwidth.mbps(500)
        )
        queues = queues_for_path(topology, assignment, allocation, QueueAllocator())
        assert len(queues) == 2  # s1->s2 and s2->h2
        assert all(q.min_rate == Bandwidth.mbps(100) for q in queues)
        assert all(q.max_rate == Bandwidth.mbps(500) for q in queues)

    def test_no_queues_without_guarantee(self):
        topology = figure2_example()
        assignment = PathAssignment(statement_id="y", path=("h1", "s1", "s2", "h2"))
        allocation = RateAllocation(statement_id="y", cap=Bandwidth.mbps(10))
        assert queues_for_path(topology, assignment, allocation) == []

    def test_tc_cap_and_guarantee(self):
        topology = figure2_example()
        statement = Statement(
            "x", parse_predicate("tcp.dst = 20"), parse_path_expression(".*")
        )
        allocation = RateAllocation(
            statement_id="x", cap=Bandwidth.mbps(200), guarantee=Bandwidth.mbps(50)
        )
        commands = tc_for_statement(topology, statement, allocation, "h1")
        kinds = {command.kind for command in commands}
        assert kinds == {"cap", "guarantee"}
        assert all(command.host == "h1" for command in commands)
        assert "tc class add" in commands[0].render()

    def test_tc_skipped_without_source_host(self):
        topology = figure2_example()
        statement = Statement(
            "x", parse_predicate("tcp.dst = 20"), parse_path_expression(".*")
        )
        allocation = RateAllocation(statement_id="x", cap=Bandwidth.mbps(200))
        assert tc_for_statement(topology, statement, allocation, None) == []
        assert tc_for_statement(topology, statement, allocation, "s1") == []

    def test_iptables_drop_rule(self):
        topology = figure2_example()
        statement = Statement(
            "blocked", parse_predicate("tcp.dst = 23"), parse_path_expression("!(.*)")
        )
        rules = drop_rule_for_statement(topology, statement, "h1")
        assert len(rules) == 1
        assert rules[0].action == "DROP"
        assert "iptables" in rules[0].render()

    def test_click_deduplicates_placements(self):
        assignments = {
            "a": PathAssignment("a", ("h1", "m1", "h2"), {"dpi": "m1"}),
            "b": PathAssignment("b", ("h2", "m1", "h1"), {"dpi": "m1"}),
        }
        configs = click_for_assignments(assignments)
        assert len(configs) == 1
        assert configs[0].location == "m1"
        assert "DPI" in configs[0].render()


class TestInstructionBundle:
    def test_counts_and_total(self, figure2_topology, figure2_placements):
        result = compile_policy(
            RUNNING_EXAMPLE_SOURCE, figure2_topology, figure2_placements
        )
        bundle = result.instructions
        counts = bundle.counts()
        assert bundle.total() == sum(counts.values())
        assert set(counts) == {"openflow", "queues", "tc", "iptables", "click"}

    def test_by_device_covers_all_instructions(self, figure2_topology, figure2_placements):
        result = compile_policy(
            RUNNING_EXAMPLE_SOURCE, figure2_topology, figure2_placements
        )
        bundle = result.instructions
        grouped = bundle.by_device()
        assert sum(len(items) for items in grouped.values()) == bundle.total()

    def test_for_statement_filter(self, figure2_topology, figure2_placements):
        result = compile_policy(
            RUNNING_EXAMPLE_SOURCE, figure2_topology, figure2_placements
        )
        z_bundle = result.instructions.for_statement("z")
        assert z_bundle.total() > 0
        assert all(rule.statement_id == "z" for rule in z_bundle.openflow)

    def test_merge(self):
        a = InstructionBundle(openflow=[OpenFlowRule("s1", (), ("drop",))])
        b = InstructionBundle(openflow=[OpenFlowRule("s2", (), ("drop",))])
        a.merge(b)
        assert a.counts()["openflow"] == 2

    def test_render_produces_one_line_per_instruction(
        self, figure2_topology, figure2_placements
    ):
        result = compile_policy(
            RUNNING_EXAMPLE_SOURCE, figure2_topology, figure2_placements
        )
        rendered = result.instructions.render()
        assert len(rendered.splitlines()) == result.instructions.total()
