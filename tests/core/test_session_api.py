"""The public Session facade (MerlinCompiler.session)."""

import pytest

from repro.core import MerlinCompiler, Session
from repro.errors import ProvisioningError
from repro.incremental import PolicyDelta, RateUpdate, TopologyDelta
from repro.scenarios import allocations_match
from repro.topology.generators import dumbbell, figure2_example
from repro.units import Bandwidth

PLACEMENTS = {"dpi": ("h1", "h2", "m1"), "nat": ("m1",)}

#: One guaranteed statement on the Figure 3 dumbbell, which keeps a
#: second disjoint path alive when a fabric link fails.
DUMBBELL_SOURCE = """
[ x : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 80) -> .* ],
min(x, 50MB/s)
"""


def _compiled_dumbbell():
    compiler = MerlinCompiler(
        topology=dumbbell(),
        overlap="trust",
        add_catch_all=False,
        generate_code=False,
    )
    compiler.compile(DUMBBELL_SOURCE)
    return compiler

SOURCE = """
[ x : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 20) -> .* dpi .* ;
  z : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 80) -> .* dpi .* nat .* ],
min(x, 25MB/s) and min(z, 50MB/s)
"""


def _compiled():
    compiler = MerlinCompiler(
        topology=figure2_example(capacity=Bandwidth.gbps(2)),
        placements=PLACEMENTS,
        overlap="trust",
        add_catch_all=False,
        generate_code=False,
    )
    compiler.compile(SOURCE)
    return compiler


class _FakeEvent:
    """Anything exposing to_delta() is applicable (scenario events do)."""

    def to_delta(self):
        return PolicyDelta(
            update_rates=(RateUpdate("x", guarantee=Bandwidth.mb_per_sec(30)),)
        )


class TestSessionLifecycle:
    def test_requires_compiled_policy(self):
        compiler = MerlinCompiler(
            topology=figure2_example(capacity=Bandwidth.gbps(2)),
            placements=PLACEMENTS,
        )
        with pytest.raises(ProvisioningError, match="compile"):
            compiler.session()

    def test_context_manager_scoping_keeps_compiler_session(self):
        compiler = _compiled()
        with compiler.session() as session:
            assert isinstance(session, Session)
        assert compiler.has_session
        # A later handle sees the same live state.
        assert set(compiler.session().statement_ids) == {"x", "z"}


class TestApply:
    def test_policy_delta(self):
        compiler = _compiled()
        result = compiler.session().apply(
            PolicyDelta(
                update_rates=(RateUpdate("x", guarantee=Bandwidth.mb_per_sec(30)),)
            )
        )
        assert result.rates["x"].guarantee.bps_value == pytest.approx(30 * 8e6)

    def test_topology_delta_and_introspection(self):
        compiler = _compiled_dumbbell()
        session = compiler.session()
        assert session.failed_links == frozenset()
        pristine = session.topology

        session.apply(TopologyDelta(fail_links=(("sa1", "sa2"),)))
        assert session.failed_links == {("sa1", "sa2")}
        assert session.topology is not pristine

        session.apply(TopologyDelta(recover_links=(("sa1", "sa2"),)))
        assert session.failed_links == frozenset()
        assert session.topology is pristine

    def test_event_object_via_to_delta(self):
        compiler = _compiled()
        result = compiler.session().apply(_FakeEvent())
        assert result.rates["x"].guarantee.bps_value == pytest.approx(30 * 8e6)

    def test_rejects_objects_without_to_delta(self):
        compiler = _compiled()
        with pytest.raises(TypeError, match="to_delta"):
            compiler.session().apply(42)

    def test_failed_apply_rolls_back_and_stays_usable(self):
        compiler = _compiled()
        session = compiler.session()
        baseline = compiler.recompile(PolicyDelta())
        with pytest.raises(ProvisioningError):
            session.apply(
                PolicyDelta(
                    update_rates=(
                        RateUpdate("x", guarantee=Bandwidth.gbps(100)),
                    )
                )
            )
        assert compiler.has_session
        after = session.apply(PolicyDelta())
        assert allocations_match(after, baseline)


class TestCheckpointRollback:
    def test_multi_delta_unit_of_work_abandoned(self):
        compiler = _compiled_dumbbell()
        session = compiler.session()
        baseline = compiler.recompile(PolicyDelta())

        token = session.checkpoint()
        session.apply(
            PolicyDelta(
                update_rates=(RateUpdate("x", guarantee=Bandwidth.mb_per_sec(30)),)
            )
        )
        session.apply(TopologyDelta(fail_links=(("sa1", "sa2"),)))
        session.rollback(token)

        assert session.failed_links == frozenset()
        restored = session.apply(PolicyDelta())
        assert allocations_match(restored, baseline)

    def test_earlier_token_survives_later_checkpoints(self):
        compiler = _compiled()
        session = compiler.session()
        first = session.checkpoint()
        session.apply(
            PolicyDelta(
                update_rates=(RateUpdate("x", guarantee=Bandwidth.mb_per_sec(30)),)
            )
        )
        session.checkpoint()  # a later snapshot must not invalidate `first`
        session.rollback(first)
        result = session.apply(PolicyDelta())
        assert result.rates["x"].guarantee.bps_value == pytest.approx(25 * 8e6)
