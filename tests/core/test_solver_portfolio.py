"""End-to-end backend selection: string names, `auto` determinism, heuristic.

The backend layer's contract at the compiler/service level:

* every entry point that accepts a solver instance accepts a registry name
  (``provision()`` via :class:`ProvisionOptions`, ``recompile()``,
  ``ControlPlane.submit()``);
* ``auto`` picks are deterministic — identical allocation and identical
  per-component winner across repeated runs *and* worker counts;
* the ``heuristic`` backend's allocation is feasible and its bottleneck
  utilisation is within a stated bound of the exact optimum;
* the chosen backend names surface per component in
  ``CompilationStatistics.component_backends`` and the daemon's
  ``BatchRecord.backends``.
"""

import asyncio

import pytest

from repro.core import MerlinCompiler, ProvisionOptions
from repro.core.ast import Statement
from repro.experiments.reprovisioning import pod_tenant_scenario
from repro.incremental import DeltaStatement, PolicyDelta
from repro.lp import registered_backends
from repro.predicates.ast import FieldTest, pred_and
from repro.regex.parser import parse_path_expression
from repro.service import ControlPlane
from repro.topology.generators import figure2_example
from repro.units import Bandwidth

FIG2_SOURCE = """
[ x : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 20) -> .* dpi .* ;
  z : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 80) -> .* dpi .* ],
min(x, 25MB/s) and min(z, 50MB/s)
"""
FIG2_PLACEMENTS = {"dpi": ("h1", "h2", "m1"), "nat": ("m1",)}

#: The heuristic trades optimality for latency; on these small workloads its
#: bottleneck utilisation must stay within this much of the exact optimum.
HEURISTIC_UTILIZATION_BOUND = 0.25


def _fig2_compiler(solver, **options_kwargs):
    return MerlinCompiler(
        topology=figure2_example(capacity=Bandwidth.gbps(2)),
        placements=FIG2_PLACEMENTS,
        overlap="trust",
        add_catch_all=False,
        generate_code=False,
        options=ProvisionOptions(solver=solver, **options_kwargs),
    )


def _pod_compiler(scenario, solver, **options_kwargs):
    return MerlinCompiler(
        topology=scenario.topology,
        overlap="trust",
        add_catch_all=False,
        generate_code=False,
        options=ProvisionOptions(solver=solver, **options_kwargs),
    )


def _allocation(result):
    """The allocation as comparable data: paths plus link reservations."""
    return (
        {identifier: p.path for identifier, p in result.paths.items()},
        {key: value.bps_value for key, value in result.link_reservations.items()},
    )


class TestStringBackendsEndToEnd:
    @pytest.mark.parametrize("name", ["scipy", "bnb", "heuristic", "auto"])
    def test_provision_with_each_registered_name(self, name):
        result = _fig2_compiler(name).compile(FIG2_SOURCE)
        assert result.max_link_utilization() <= 1.0 + 1e-6
        assert set(result.paths) == {"x", "z"}
        backends = result.statistics.component_backends
        assert backends, "per-component backend names must be recorded"
        assert all(backend in registered_backends() for backend in backends)
        if name != "auto":
            assert set(backends) == {name}

    def test_recompile_threads_the_backend_through(self):
        compiler = _fig2_compiler("auto")
        compiler.compile(FIG2_SOURCE)
        statement = Statement(
            "w",
            pred_and(
                FieldTest("eth.src", "00:00:00:00:00:01"),
                pred_and(
                    FieldTest("eth.dst", "00:00:00:00:00:02"),
                    FieldTest("tcp.dst", 443),
                ),
            ),
            parse_path_expression(".* dpi .*"),
        )
        delta = PolicyDelta(
            add=(DeltaStatement(statement, guarantee=Bandwidth.mb_per_sec(5)),)
        )
        result = compiler.recompile(delta)
        assert "w" in result.paths
        backends = result.statistics.component_backends
        assert backends
        assert all(backend in registered_backends() for backend in backends)

    def test_control_plane_submit_records_backends(self):
        async def run():
            plane = ControlPlane()
            await plane.open_group(
                "g",
                FIG2_SOURCE,
                topology=figure2_example(capacity=Bandwidth.gbps(2)),
                placements=FIG2_PLACEMENTS,
                overlap="trust",
                add_catch_all=False,
                generate_code=False,
                options=ProvisionOptions(solver="auto"),
            )
            statement = Statement(
                "w",
                pred_and(
                    FieldTest("eth.src", "00:00:00:00:00:01"),
                    pred_and(
                        FieldTest("eth.dst", "00:00:00:00:00:02"),
                        FieldTest("tcp.dst", 443),
                    ),
                ),
                parse_path_expression(".* dpi .*"),
            )
            ticket = plane.submit(
                "g",
                PolicyDelta(
                    add=(
                        DeltaStatement(
                            statement, guarantee=Bandwidth.mb_per_sec(5)
                        ),
                    )
                ),
                tenant="alice",
            )
            plane.start()
            await ticket.result()
            await plane.shutdown()
            return plane.query("g")

        state = asyncio.run(run())
        assert state.last_batch is not None
        backends = state.last_batch.backends
        assert backends
        assert all(backend in registered_backends() for backend in backends)


class TestAutoDeterminism:
    def test_identical_picks_across_runs_and_worker_counts(self):
        scenario = pod_tenant_scenario(arity=4, pairs_per_pod=1)
        results = []
        for max_workers in (0, 0, 2):
            compiled = _pod_compiler(
                scenario, "auto", max_workers=max_workers
            ).compile(scenario.policy)
            results.append(compiled)
        baseline = results[0]
        assert len(baseline.statistics.component_backends) >= 2
        for other in results[1:]:
            assert _allocation(other) == _allocation(baseline)
            assert (
                other.statistics.component_backends
                == baseline.statistics.component_backends
            )


class TestHeuristicAgainstExactOracle:
    @pytest.mark.parametrize("workload", ["figure2", "pod_tenant"])
    def test_feasible_and_within_bound(self, workload):
        if workload == "figure2":
            heuristic = _fig2_compiler("heuristic").compile(FIG2_SOURCE)
            exact = _fig2_compiler("bnb").compile(FIG2_SOURCE)
        else:
            scenario = pod_tenant_scenario(arity=4, pairs_per_pod=1)
            heuristic = _pod_compiler(scenario, "heuristic").compile(
                scenario.policy
            )
            exact = _pod_compiler(scenario, "bnb").compile(scenario.policy)

        # Feasibility: no oversubscribed link, every statement routed on a
        # real source-to-sink path, full guarantees reserved.
        assert heuristic.max_link_utilization() <= 1.0 + 1e-6
        assert set(heuristic.paths) == set(exact.paths)
        for identifier, assignment in heuristic.paths.items():
            oracle = exact.paths[identifier]
            assert assignment.path[0] == oracle.path[0]
            assert assignment.path[-1] == oracle.path[-1]
        total_heuristic = sum(
            value.bps_value
            for value in heuristic.link_reservations.values()
        )
        assert total_heuristic > 0.0

        # Objective bound: the heuristic bottleneck is near the optimum.
        assert heuristic.max_link_utilization() <= (
            exact.max_link_utilization() + HEURISTIC_UTILIZATION_BOUND
        )
