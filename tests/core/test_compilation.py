"""Tests for the compiler pipeline: preprocessing, localization, logical
topologies, provisioning, sink trees, and end-to-end compilation."""

import pytest

from repro.errors import PolicyError, ProvisioningError, TopologyError
from repro.core import (
    MerlinCompiler,
    PathSelectionHeuristic,
    compile_policy,
    compute_sink_tree,
    compute_sink_trees,
    localize,
    parse_policy,
    preprocess,
)
from repro.core.ast import Statement
from repro.core.localization import localized_formula
from repro.core.logical import SINK, SOURCE, build_logical_topology, infer_endpoints
from repro.core.preprocessor import DEFAULT_STATEMENT_ID
from repro.core.provisioning import provision
from repro.core.sink_tree import host_path
from repro.predicates import is_disjoint, parse_predicate
from repro.regex import accepts, parse_path_expression
from repro.regex.operations import accepts as regex_accepts
from repro.topology.generators import dumbbell, fat_tree, figure2_example, linear, single_switch
from repro.units import Bandwidth
from tests.conftest import RUNNING_EXAMPLE_SOURCE


class TestPreprocessor:
    def test_overlapping_statements_rejected(self):
        policy = parse_policy(
            "[ a : ip.proto = tcp -> .* ; b : tcp.dst = 80 -> .* ]"
        )
        with pytest.raises(PolicyError):
            preprocess(policy, overlap="reject")

    def test_priority_mode_makes_statements_disjoint(self):
        policy = parse_policy(
            "[ a : tcp.dst = 80 -> .* ; b : ip.proto = tcp -> .* ]"
        )
        result = preprocess(policy, overlap="priority")
        statements = result.policy.statements
        assert is_disjoint(statements[0].predicate, statements[1].predicate)
        assert "b" in result.rewritten_statements

    def test_priority_mode_detects_shadowed_statement(self):
        policy = parse_policy(
            "[ a : ip.proto = tcp -> .* ; b : ip.proto = tcp and tcp.dst = 80 -> .* ]"
        )
        with pytest.raises(PolicyError):
            preprocess(policy, overlap="priority")

    def test_trust_mode_skips_checks(self):
        policy = parse_policy(
            "[ a : ip.proto = tcp -> .* ; b : tcp.dst = 80 -> .* ]"
        )
        result = preprocess(policy, overlap="trust")
        assert [s.identifier for s in result.policy.statements][:2] == ["a", "b"]

    def test_catch_all_added(self):
        policy = parse_policy("[ a : tcp.dst = 80 -> .* ]")
        result = preprocess(policy)
        assert result.added_default
        assert result.policy.statements[-1].identifier == DEFAULT_STATEMENT_ID

    def test_catch_all_skipped_when_total(self):
        policy = parse_policy("[ a : true -> .* ]")
        result = preprocess(policy)
        assert not result.added_default

    def test_catch_all_can_be_disabled(self):
        policy = parse_policy("[ a : tcp.dst = 80 -> .* ]")
        result = preprocess(policy, add_catch_all=False)
        assert len(result.policy.statements) == 1

    def test_unknown_mode_rejected(self):
        policy = parse_policy("[ a : tcp.dst = 80 -> .* ]")
        with pytest.raises(PolicyError):
            preprocess(policy, overlap="whatever")


class TestLocalization:
    def test_equal_split_of_aggregate_cap(self):
        # The §3.1 example: max(x + y, 50MB/s) -> max(x, 25MB/s), max(y, 25MB/s).
        policy = parse_policy(RUNNING_EXAMPLE_SOURCE)
        rates = localize(policy)
        assert rates["x"].cap == Bandwidth.mb_per_sec(25)
        assert rates["y"].cap == Bandwidth.mb_per_sec(25)
        assert rates["x"].guarantee is None

    def test_guarantee_preserved(self):
        policy = parse_policy(RUNNING_EXAMPLE_SOURCE)
        rates = localize(policy)
        assert rates["z"].guarantee == Bandwidth.mb_per_sec(100)
        assert rates["z"].is_guaranteed

    def test_custom_weights(self):
        policy = parse_policy(RUNNING_EXAMPLE_SOURCE)
        rates = localize(policy, weights={"x": 3.0, "y": 1.0})
        assert rates["x"].cap == Bandwidth.mb_per_sec(37.5)
        assert rates["y"].cap == Bandwidth.mb_per_sec(12.5)

    def test_multiple_clauses_take_most_restrictive(self):
        policy = parse_policy(
            "[ a : tcp.dst = 80 -> .* ], max(a, 10Mbps) and max(a, 4Mbps) and min(a, 1Mbps) and min(a, 2Mbps)"
        )
        rates = localize(policy)
        assert rates["a"].cap == Bandwidth.mbps(4)
        assert rates["a"].guarantee == Bandwidth.mbps(2)

    def test_disjunctive_formula_rejected(self):
        policy = parse_policy(
            "[ a : tcp.dst = 80 -> .* ; b : tcp.dst = 22 -> .* ],"
            "max(a, 10Mbps) or max(b, 10Mbps)"
        )
        with pytest.raises(PolicyError):
            localize(policy)

    def test_localized_formula_round_trip(self):
        policy = parse_policy(RUNNING_EXAMPLE_SOURCE)
        rates = localize(policy)
        rebuilt = localized_formula(rates)
        assert rebuilt.identifiers() <= set(policy.statement_ids())


class TestLogicalTopology:
    def test_figure2_construction(self, figure2_topology, figure2_placements):
        statement = Statement(
            "z",
            parse_predicate("tcp.dst = 80"),
            parse_path_expression("h1 .* dpi .* nat .* h2"),
        )
        logical = build_logical_topology(
            statement, figure2_topology, figure2_placements
        )
        assert logical.is_feasible()
        path = logical.find_path()
        assert path[0] == "h1" and path[-1] == "h2"
        assert "m1" in path  # NAT can only run at m1.

    def test_paths_respect_regular_expression(self, figure2_topology, figure2_placements):
        statement = Statement(
            "x", parse_predicate("tcp.dst = 20"), parse_path_expression(".* nat .*")
        )
        logical = build_logical_topology(
            statement, figure2_topology, figure2_placements, source="h1", destination="h2"
        )
        path = logical.find_path()
        # Lemma 1: the extracted location sequence satisfies the rewritten regex.
        rewritten = parse_path_expression(".* m1 .*")
        assert regex_accepts(rewritten, path)

    def test_infeasible_when_function_unplaceable(self, figure2_topology):
        statement = Statement(
            "x", parse_predicate("tcp.dst = 20"), parse_path_expression(".* dpi .*")
        )
        logical = build_logical_topology(
            statement, figure2_topology, {"dpi": ["s2"]}, source="h1", destination="h1"
        )
        # source == destination == h1 and dpi only at s2: still feasible via a loop,
        # but an empty-language expression is definitely infeasible:
        empty = Statement(
            "y", parse_predicate("tcp.dst = 21"), parse_path_expression("!(.*)")
        )
        empty_logical = build_logical_topology(
            empty, figure2_topology, {}, source="h1", destination="h2"
        )
        assert not empty_logical.is_feasible()

    def test_endpoint_inference_from_predicate(self, figure2_topology):
        statement = Statement(
            "x",
            parse_predicate(
                "eth.src = 00:00:00:00:00:01 and eth.dst = 00:00:00:00:00:02"
            ),
            parse_path_expression(".*"),
        )
        assert infer_endpoints(statement, figure2_topology) == ("h1", "h2")

    def test_endpoint_inference_from_path(self, figure2_topology):
        statement = Statement(
            "x", parse_predicate("tcp.dst = 80"), parse_path_expression("h1 .* h2")
        )
        assert infer_endpoints(statement, figure2_topology) == ("h1", "h2")

    def test_edges_for_link(self, figure2_topology, figure2_placements):
        statement = Statement(
            "z", parse_predicate("tcp.dst = 80"), parse_path_expression(".* nat .*")
        )
        logical = build_logical_topology(
            statement, figure2_topology, figure2_placements, source="h1", destination="h2"
        )
        assert logical.edges_for_link("s1", "m1")
        assert logical.edges_for_link("m1", "s1") == logical.edges_for_link("s1", "m1")


class TestProvisioning:
    def _statement(self, identifier, port, path):
        return Statement(
            identifier,
            parse_predicate(
                f"eth.src = 00:00:00:00:00:01 and eth.dst = 00:00:00:00:00:02 "
                f"and tcp.dst = {port}"
            ),
            parse_path_expression(path),
        )

    def test_figure3_weighted_shortest_path(self, dumbbell_topology):
        result = self._compile_figure3(
            dumbbell_topology, PathSelectionHeuristic.WEIGHTED_SHORTEST_PATH
        )
        # Both statements take the two-hop (thin) path.
        for identifier in ("a", "b"):
            assert result.paths[identifier].hop_count() == 2

    def test_figure3_min_max_ratio(self, dumbbell_topology):
        result = self._compile_figure3(
            dumbbell_topology, PathSelectionHeuristic.MIN_MAX_RATIO
        )
        # No link is more than 25% reserved.
        assert result.max_link_utilization() == pytest.approx(0.25, abs=0.01)

    def test_figure3_min_max_reserved(self, dumbbell_topology):
        result = self._compile_figure3(
            dumbbell_topology, PathSelectionHeuristic.MIN_MAX_RESERVED
        )
        # No link carries more than 50 MB/s of reservations.
        assert result.max_link_reservation().bps_value == pytest.approx(
            Bandwidth.mb_per_sec(50).bps_value, rel=0.01
        )

    def _compile_figure3(self, topology, heuristic):
        source = """
        [ a : (eth.src = 00:00:00:00:00:01 and eth.dst = 00:00:00:00:00:02 and tcp.dst = 80) -> .* ;
          b : (eth.src = 00:00:00:00:00:01 and eth.dst = 00:00:00:00:00:02 and tcp.dst = 22) -> .* ],
        min(a, 50MB/s) and min(b, 50MB/s)
        """
        return compile_policy(source, topology, {}, heuristic=heuristic)

    def test_infeasible_guarantee_detected(self, linear_topology):
        # Two statements each demanding 800 Mbps over the same 1 Gbps chain.
        source = """
        [ a : (eth.src = 00:00:00:00:00:01 and eth.dst = 00:00:00:00:00:03 and tcp.dst = 80) -> .* ;
          b : (eth.src = 00:00:00:00:00:01 and eth.dst = 00:00:00:00:00:03 and tcp.dst = 22) -> .* ],
        min(a, 800Mbps) and min(b, 800Mbps)
        """
        with pytest.raises(ProvisioningError):
            compile_policy(source, linear_topology, {})

    def test_guarantee_without_endpoints_rejected(self, tiny_topology):
        source = "[ a : tcp.dst = 80 -> .* ], min(a, 10Mbps)"
        with pytest.raises(ProvisioningError):
            compile_policy(source, tiny_topology, {})

    def test_capacity_constraint_respected(self, dumbbell_topology):
        source = """
        [ a : (eth.src = 00:00:00:00:00:01 and eth.dst = 00:00:00:00:00:02 and tcp.dst = 80) -> .* ],
        min(a, 90MB/s)
        """
        result = compile_policy(source, dumbbell_topology, {})
        # 90 MB/s only fits on the 400 MB/s path.
        assert result.paths["a"].hop_count() == 3
        assert result.max_link_utilization() <= 1.0


class TestSinkTrees:
    def test_tree_reaches_every_switch(self, small_fat_tree):
        switches = small_fat_tree.switch_names()
        tree = compute_sink_tree(small_fat_tree, switches[0])
        assert tree.num_switches() == len(switches)
        for switch in switches:
            path = tree.path_from(switch)
            assert path[-1] == tree.root

    def test_trees_only_for_edge_switches(self, small_fat_tree):
        trees = compute_sink_trees(small_fat_tree)
        for root in trees:
            assert small_fat_tree.hosts_on_switch(root)

    def test_host_path(self, small_fat_tree):
        trees = compute_sink_trees(small_fat_tree)
        egress = small_fat_tree.attachment_switch("h2")
        path = host_path(small_fat_tree, trees[egress], "h1", "h2")
        assert path[0] == "h1" and path[-1] == "h2"

    def test_host_path_wrong_tree_rejected(self, small_fat_tree):
        trees = compute_sink_trees(small_fat_tree)
        egress_h2 = small_fat_tree.attachment_switch("h2")
        other_root = next(root for root in trees if root != egress_h2)
        with pytest.raises(TopologyError):
            host_path(small_fat_tree, trees[other_root], "h1", "h2")

    def test_non_switch_root_rejected(self, small_fat_tree):
        with pytest.raises(TopologyError):
            compute_sink_tree(small_fat_tree, "h1")

    def test_depth_positive(self, small_fat_tree):
        trees = compute_sink_trees(small_fat_tree)
        assert all(tree.depth() >= 1 for tree in trees.values())


class TestEndToEndCompilation:
    def test_running_example(self, figure2_topology, figure2_placements):
        result = compile_policy(
            RUNNING_EXAMPLE_SOURCE, figure2_topology, figure2_placements
        )
        # The guaranteed statement gets a dedicated path through the NAT box.
        z_path = result.paths["z"]
        assert z_path.path[0] == "h1" and z_path.path[-1] == "h2"
        assert z_path.function_placements["nat"] == "m1"
        assert z_path.function_placements["dpi"] in ("h1", "h2", "m1")
        # The capped statements are localized to 25 MB/s each.
        assert result.rates["x"].cap == Bandwidth.mb_per_sec(25)
        assert result.rates["y"].cap == Bandwidth.mb_per_sec(25)
        # Instructions were generated for switches, queues, hosts and middleboxes.
        counts = result.instructions.counts()
        assert counts["openflow"] > 0
        assert counts["queues"] > 0
        assert counts["tc"] > 0
        assert counts["click"] > 0
        # Statistics are recorded for the scalability tables.
        assert result.statistics.lp_solve_seconds >= 0.0
        assert result.statistics.num_guaranteed_statements == 1

    def test_selected_path_satisfies_statement_regex(
        self, figure2_topology, figure2_placements
    ):
        result = compile_policy(
            RUNNING_EXAMPLE_SOURCE, figure2_topology, figure2_placements
        )
        z_path = list(result.paths["z"].path)
        # After substituting placements, the path must contain a dpi-capable
        # location followed (not necessarily immediately) by m1.
        dpi_positions = [
            index for index, loc in enumerate(z_path) if loc in ("h1", "h2", "m1")
        ]
        nat_positions = [index for index, loc in enumerate(z_path) if loc == "m1"]
        assert dpi_positions and nat_positions
        assert min(dpi_positions) <= max(nat_positions)

    def test_best_effort_with_path_constraint(self, figure2_topology, figure2_placements):
        source = """
        [ w : (eth.src = 00:00:00:00:00:01 and eth.dst = 00:00:00:00:00:02) -> .* dpi .* ]
        """
        result = compile_policy(source, figure2_topology, figure2_placements)
        assert "w" in result.paths
        assert result.rates["w"].guarantee is None

    def test_catch_all_generates_sink_trees(self, tiny_topology):
        result = compile_policy("[ a : tcp.dst = 80 -> .* ]", tiny_topology, {})
        assert result.sink_trees  # the catch-all needs sink trees
        assert result.instructions.counts()["openflow"] > 0

    def test_generate_code_can_be_disabled(self, figure2_topology, figure2_placements):
        compiler = MerlinCompiler(
            topology=figure2_topology,
            placements=figure2_placements,
            generate_code=False,
        )
        result = compiler.compile(RUNNING_EXAMPLE_SOURCE)
        assert result.instructions is None

    def test_compile_accepts_policy_object(self, figure2_topology, figure2_placements):
        policy = parse_policy(RUNNING_EXAMPLE_SOURCE, topology=figure2_topology)
        result = compile_policy(policy, figure2_topology, figure2_placements)
        assert set(result.rates) >= {"x", "y", "z"}

    def test_all_pairs_connectivity_small(self):
        topology = single_switch(4)
        sources = ", ".join(host.mac for host in topology.hosts())
        policy = (
            "hostsset := {" + sources + "}\n"
            "foreach (s,d) in hostsset: true -> .*\n"
        )
        result = compile_policy(policy, topology, {}, overlap="trust")
        assert result.statistics.num_statements >= 12
        assert result.instructions.counts()["openflow"] > 0
