"""Equivalence of the indexed MIP construction with a reference build.

The indexed one-pass construction in
:func:`repro.core.provisioning.build_provisioning_model` must produce a
model that is *coefficient-identical* to the straightforward reference
build (the naive O(S·E·L) nested loops over statements × edges × links):
same variables in the same order, same bounds/integrality, same constraint
rows, same right-hand sides, and the same objective vector.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.localization import localize
from repro.core.logical import SINK, SOURCE, build_logical_topology, infer_endpoints
from repro.core.parser import parse_policy
from repro.core.preprocessor import preprocess
from repro.core.provisioning import (
    PathSelectionHeuristic,
    _MBPS,
    _edge_tiebreaker,
    _guarantee_quantum_mbps,
    build_provisioning_model,
)
from repro.experiments.policy_builders import all_pairs_policy
from repro.lp.expr import LinExpr
from repro.lp.model import Model
from repro.topology.generators import fat_tree, figure2_example

QUICKSTART_SOURCE = """
[ x : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 20) -> .* dpi .* ;
  z : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 80) -> .* dpi .* nat .* ],
min(x, 100MB/s) and min(z, 200MB/s)
"""

QUICKSTART_PLACEMENTS = {"dpi": ("h1", "h2", "m1"), "nat": ("m1",)}


def _provisioning_inputs(policy, topology, placements):
    """Replicate the compiler's pre-provisioning pipeline for a policy."""
    if isinstance(policy, str):
        policy = parse_policy(policy, topology=topology)
    preprocessed = preprocess(policy, overlap="trust", add_catch_all=False).policy
    rates = localize(preprocessed)
    guaranteed = [
        statement
        for statement in preprocessed.statements
        if rates[statement.identifier].is_guaranteed
    ]
    logical = {}
    for statement in guaranteed:
        source, destination = infer_endpoints(statement, topology)
        logical[statement.identifier] = build_logical_topology(
            statement, topology, placements, source=source, destination=destination
        )
    return guaranteed, logical, rates


def _reference_model(statements, logical_topologies, rates, topology, heuristic):
    """The straightforward (pre-refactor) construction: a full rescan of every
    statement's edges for every physical link, grown with the copying ``+``."""
    model = Model(name="merlin-provisioning")
    edge_variables = {}
    for statement in statements:
        logical = logical_topologies[statement.identifier]
        variables = {}
        for index, edge in enumerate(logical.edges):
            variables[index] = model.add_binary(f"x__{statement.identifier}__{index}")
        edge_variables[statement.identifier] = variables
        for vertex in logical.vertices:
            outgoing = LinExpr.sum_of(
                variables[index]
                for index, edge in enumerate(logical.edges)
                if edge.source == vertex
            )
            incoming = LinExpr.sum_of(
                variables[index]
                for index, edge in enumerate(logical.edges)
                if edge.target == vertex
            )
            balance = 1.0 if vertex == SOURCE else (-1.0 if vertex == SINK else 0.0)
            model.add_constraint(
                (outgoing - incoming).equals(balance),
                name=f"flow__{statement.identifier}__{vertex[0]}_{vertex[1]}",
            )

    reservation_fraction = {}
    r_max = model.add_continuous("r_max", lower=0.0, upper=1.0)
    big_r_max = model.add_continuous("R_max", lower=0.0)
    for link in topology.links():
        key = tuple(sorted((link.source, link.target)))
        capacity_mbps = link.capacity.bps_value / _MBPS
        r_uv = model.add_continuous(f"r__{key[0]}__{key[1]}", lower=0.0, upper=1.0)
        reservation_fraction[key] = r_uv
        reserved_terms = LinExpr()
        for statement in statements:
            guarantee = rates[statement.identifier].guarantee
            if guarantee is None:
                continue
            guarantee_mbps = guarantee.bps_value / _MBPS
            logical = logical_topologies[statement.identifier]
            for index, edge in enumerate(logical.edges):
                if edge.physical_link is None:
                    continue
                if tuple(sorted(edge.physical_link)) == key:
                    reserved_terms = reserved_terms + (
                        edge_variables[statement.identifier][index] * guarantee_mbps
                    )
        model.add_constraint(
            (r_uv * capacity_mbps - reserved_terms).equals(0.0),
            name=f"reserve__{key[0]}__{key[1]}",
        )
        model.add_constraint(r_max - r_uv >= 0.0, name=f"rmax__{key[0]}__{key[1]}")
        model.add_constraint(
            big_r_max - r_uv * capacity_mbps >= 0.0,
            name=f"Rmax__{key[0]}__{key[1]}",
        )

    if heuristic is PathSelectionHeuristic.WEIGHTED_SHORTEST_PATH:
        objective = LinExpr()
        for statement in statements:
            guarantee = rates[statement.identifier].guarantee
            weight = (guarantee.bps_value / _MBPS) if guarantee else 1.0
            logical = logical_topologies[statement.identifier]
            for index, edge in enumerate(logical.edges):
                if edge.physical_link is not None:
                    objective = objective + (
                        edge_variables[statement.identifier][index] * weight
                    )
        model.minimize(objective)
    elif heuristic is PathSelectionHeuristic.MIN_MAX_RATIO:
        max_capacity_mbps = max(
            link.capacity.bps_value / _MBPS for link in topology.links()
        )
        quantum = _guarantee_quantum_mbps(statements, rates) / max_capacity_mbps
        model.minimize(
            r_max + _edge_tiebreaker(edge_variables, magnitude=min(1e-3, quantum))
        )
    elif heuristic is PathSelectionHeuristic.MIN_MAX_RESERVED:
        magnitude = _guarantee_quantum_mbps(statements, rates) * 1e-3
        model.minimize(
            big_r_max + _edge_tiebreaker(edge_variables, magnitude=magnitude)
        )
    return model


def _assert_standard_forms_identical(indexed, reference):
    assert [v.name for v in indexed.variables] == [v.name for v in reference.variables]
    assert [
        (v.lower, v.upper, v.is_integer) for v in indexed.variables
    ] == [(v.lower, v.upper, v.is_integer) for v in reference.variables]
    assert indexed.bounds == reference.bounds
    assert np.array_equal(indexed.integrality, reference.integrality)
    assert np.array_equal(indexed.c, reference.c)
    assert indexed.a_eq.shape == reference.a_eq.shape
    assert indexed.a_ub.shape == reference.a_ub.shape
    assert np.array_equal(indexed.a_eq, reference.a_eq)
    assert np.array_equal(indexed.b_eq, reference.b_eq)
    assert np.array_equal(indexed.a_ub, reference.a_ub)
    assert np.array_equal(indexed.b_ub, reference.b_ub)
    assert indexed.maximize == reference.maximize


@pytest.mark.parametrize(
    "heuristic",
    [
        PathSelectionHeuristic.MIN_MAX_RATIO,
        PathSelectionHeuristic.MIN_MAX_RESERVED,
        PathSelectionHeuristic.WEIGHTED_SHORTEST_PATH,
    ],
)
def test_quickstart_indexed_build_matches_reference(heuristic):
    from repro.units import Bandwidth

    topology = figure2_example(capacity=Bandwidth.gbps(2))
    statements, logical, rates = _provisioning_inputs(
        QUICKSTART_SOURCE, topology, QUICKSTART_PLACEMENTS
    )
    assert statements, "the quickstart scenario must have guaranteed statements"
    built = build_provisioning_model(
        statements, logical, rates, topology, heuristic=heuristic
    )
    reference = _reference_model(statements, logical, rates, topology, heuristic)
    _assert_standard_forms_identical(
        built.model.to_standard_form(), reference.to_standard_form()
    )


def test_fat_tree_indexed_build_matches_reference():
    topology = fat_tree(4)
    policy = all_pairs_policy(topology, guarantee_fraction=0.1, max_classes=60)
    statements, logical, rates = _provisioning_inputs(policy, topology, {})
    assert len(statements) >= 2
    built = build_provisioning_model(
        statements,
        logical,
        rates,
        topology,
        heuristic=PathSelectionHeuristic.MIN_MAX_RATIO,
    )
    reference = _reference_model(
        statements, logical, rates, topology, PathSelectionHeuristic.MIN_MAX_RATIO
    )
    _assert_standard_forms_identical(
        built.model.to_standard_form(), reference.to_standard_form()
    )


def test_tiebreaker_epsilon_bounded_by_edge_count():
    """The total tiebreaker penalty stays strictly below ``magnitude``
    however many edges exist, so it can never exceed genuine min-max
    differences."""
    model = Model()
    edge_variables = {
        "s": {i: model.add_binary(f"x__{i}") for i in range(5000)}
    }
    expression = _edge_tiebreaker(edge_variables, magnitude=1e-3)
    total = sum(expression.coefficients.values())
    assert total < 1e-3
    per_edge = 1e-3 / (5000 + 1)
    assert all(
        coefficient == pytest.approx(per_edge)
        for coefficient in expression.coefficients.values()
    )
    # And the penalty scales with the requested magnitude.
    scaled = _edge_tiebreaker(edge_variables, magnitude=0.1)
    assert sum(scaled.coefficients.values()) == pytest.approx(total * 100.0)


def test_ratio_tiebreaker_stays_below_guarantee_quantum():
    """Regression: on high-capacity links with small guarantees the genuine
    r_max quantum (guarantee / capacity) is far below 1, and the tiebreaker
    must stay below *that*, not below 1e-3."""
    from repro.units import Bandwidth

    topology = figure2_example(capacity=Bandwidth.gbps(10))
    source = """
    [ z : (eth.src = 00:00:00:00:00:01 and
           eth.dst = 00:00:00:00:00:02) -> .* ],
    min(z, 1Mbps)
    """
    statements, logical, rates = _provisioning_inputs(source, topology, {})
    built = build_provisioning_model(
        statements,
        logical,
        rates,
        topology,
        heuristic=PathSelectionHeuristic.MIN_MAX_RATIO,
    )
    objective = built.model.objective
    quantum = 1.0 / 10_000.0  # 1 Mbps on a 10 Gbps link
    edge_penalty = sum(
        coefficient
        for variable, coefficient in objective.coefficients.items()
        if variable is not built.r_max
    )
    assert 0.0 < edge_penalty < quantum
    assert objective.coefficients[built.r_max] == 1.0
