"""Memoization of logical-topology construction.

Statements sharing a (path expression, endpoint pair) shape compile to
identical product graphs, so the compiler reuses the built graph (rebadged
under the new statement identifier) and the automaton cache reuses the
minimized DFA of structurally equal path expressions.
"""

from __future__ import annotations

from repro.core.compiler import MerlinCompiler
from repro.core.logical import _compiled_automaton, build_logical_topology
from repro.core.parser import parse_policy
from repro.regex.parser import parse_path_expression
from repro.topology.generators import figure2_example
from repro.units import Bandwidth


def test_compiled_automaton_is_cached_by_regex_value():
    # Two separately parsed but structurally equal expressions hit the same
    # cache entry (Regex nodes are frozen dataclasses comparing by value).
    first = _compiled_automaton(parse_path_expression(".* s1 .*"))
    second = _compiled_automaton(parse_path_expression(".* s1 .*"))
    assert first is second


def test_rebadged_topology_shares_structure():
    topology = figure2_example(capacity=Bandwidth.gbps(2))
    policy = parse_policy(
        "[ x : (eth.src = 00:00:00:00:00:01 and eth.dst = 00:00:00:00:00:02) -> .* ]",
        topology=topology,
    )
    statement = policy.statements[0]
    logical = build_logical_topology(
        statement, topology, {}, source="h1", destination="h2"
    )
    view = logical.rebadged("other")
    assert view.statement_id == "other"
    assert view.edges is logical.edges
    assert view.vertices is logical.vertices
    assert view.num_edges() == logical.num_edges()
    # Rebadging under the same identifier is the identity.
    assert logical.rebadged(statement.identifier) is logical


def test_compile_with_duplicate_shapes_reuses_logical_topology(monkeypatch):
    """Two guaranteed statements with the same path and endpoints trigger one
    logical-topology build; the compiled paths are identical."""
    topology = figure2_example(capacity=Bandwidth.gbps(2))
    source = """
    [ x : (eth.src = 00:00:00:00:00:01 and
           eth.dst = 00:00:00:00:00:02 and
           tcp.dst = 80) -> .* ;
      y : (eth.src = 00:00:00:00:00:01 and
           eth.dst = 00:00:00:00:00:02 and
           tcp.dst = 443) -> .* ],
    min(x, 10MB/s) and min(y, 10MB/s)
    """
    calls = []
    import repro.core.compiler as compiler_module

    real_build = compiler_module.build_logical_topology

    def counting_build(*args, **kwargs):
        calls.append(1)
        return real_build(*args, **kwargs)

    monkeypatch.setattr(compiler_module, "build_logical_topology", counting_build)
    compiler = MerlinCompiler(topology=topology, overlap="trust", add_catch_all=False)
    result = compiler.compile(source)
    assert len(calls) == 1, "the second statement should reuse the memoized build"
    assert result.paths["x"].path == result.paths["y"].path
