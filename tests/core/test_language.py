"""Tests for the Merlin policy language: lexer, parser, sugar, and policy AST."""

import pytest

from repro.errors import LexerError, ParseError, PolicyError
from repro.core.ast import (
    BandwidthTerm,
    FAnd,
    FMax,
    FMin,
    FTrue,
    Policy,
    Statement,
    formula_and,
    formula_clauses,
)
from repro.core.lexer import tokenize
from repro.core.parser import parse_policy, parse_program
from repro.predicates import FieldTest, parse_predicate
from repro.regex import parse_path_expression
from repro.regex.operations import equivalent as regex_equivalent
from repro.units import Bandwidth
from tests.conftest import RUNNING_EXAMPLE_SOURCE


class TestLexer:
    def test_rate_tokens(self):
        kinds = [t.kind for t in tokenize("max(x, 50MB/s) min(y, 100Mbps)")]
        assert kinds.count("RATE") == 2

    def test_mac_and_ip_tokens(self):
        tokens = tokenize("eth.src = 00:00:00:00:00:01 and ip.dst = 10.0.0.1")
        assert [t.kind for t in tokens if t.kind in ("MAC", "IP")] == ["MAC", "IP"]

    def test_field_token_not_split(self):
        tokens = tokenize("tcp.dst = 80")
        assert tokens[0].kind == "FIELD"
        assert tokens[0].text == "tcp.dst"

    def test_keywords_distinguished_from_identifiers(self):
        tokens = tokenize("foreach x in cross")
        assert [t.kind for t in tokens] == ["KEYWORD", "IDENT", "KEYWORD", "KEYWORD"]

    def test_arrow_and_assign(self):
        tokens = tokenize("x := y -> z")
        assert [t.kind for t in tokens] == ["IDENT", "ASSIGN", "IDENT", "ARROW", "IDENT"]

    def test_comments_and_whitespace_skipped(self):
        tokens = tokenize("x : true -> .*  # a comment\n// another\n")
        assert all(t.kind not in ("WS", "COMMENT") for t in tokens)

    def test_line_numbers_tracked(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens] == [1, 2, 3]

    def test_invalid_character(self):
        with pytest.raises(LexerError):
            tokenize("x : true -> .* @")


class TestPolicyAst:
    def test_duplicate_identifiers_rejected(self):
        statement = Statement("x", parse_predicate("tcp.dst = 80"), parse_path_expression(".*"))
        with pytest.raises(PolicyError):
            Policy(statements=(statement, statement))

    def test_formula_with_unknown_identifier_rejected(self):
        statement = Statement("x", parse_predicate("tcp.dst = 80"), parse_path_expression(".*"))
        formula = FMax(BandwidthTerm(identifiers=("y",)), Bandwidth.mbps(10))
        with pytest.raises(PolicyError):
            Policy(statements=(statement,), formula=formula)

    def test_statement_lookup(self):
        statement = Statement("x", parse_predicate("tcp.dst = 80"), parse_path_expression(".*"))
        policy = Policy(statements=(statement,))
        assert policy.statement("x") is statement
        with pytest.raises(PolicyError):
            policy.statement("missing")

    def test_formula_helpers(self):
        term = BandwidthTerm(identifiers=("x",))
        clause_a = FMax(term, Bandwidth.mbps(10))
        clause_b = FMin(term, Bandwidth.mbps(5))
        combined = formula_and(clause_a, FTrue(), clause_b)
        assert formula_clauses(combined) == [clause_a, clause_b]
        assert combined.identifiers() == {"x"}

    def test_empty_bandwidth_term_rejected(self):
        with pytest.raises(PolicyError):
            BandwidthTerm(identifiers=())

    def test_to_source_round_trips(self):
        policy = parse_policy(RUNNING_EXAMPLE_SOURCE)
        reparsed = parse_policy(policy.to_source())
        assert reparsed.statement_ids() == policy.statement_ids()
        assert len(formula_clauses(reparsed.formula)) == len(formula_clauses(policy.formula))

    def test_source_line_count(self):
        policy = parse_policy(RUNNING_EXAMPLE_SOURCE)
        assert policy.source_line_count() >= 5


class TestParser:
    def test_running_example(self):
        policy = parse_policy(RUNNING_EXAMPLE_SOURCE)
        assert policy.statement_ids() == ["x", "y", "z"]
        z = policy.statement("z")
        assert regex_equivalent(z.path, parse_path_expression(".* dpi .* nat .*"))
        clauses = formula_clauses(policy.formula)
        assert isinstance(clauses[0], FMax)
        assert clauses[0].term.identifiers == ("x", "y")
        assert clauses[0].rate == Bandwidth.mb_per_sec(50)
        assert isinstance(clauses[1], FMin)
        assert clauses[1].rate == Bandwidth.mb_per_sec(100)

    def test_statements_without_semicolons(self):
        source = """
        [ a : tcp.dst = 80 -> .*
          b : tcp.dst = 22 -> .* ],
        max(a, 10Mbps)
        """
        policy = parse_policy(source)
        assert policy.statement_ids() == ["a", "b"]

    def test_policy_without_formula(self):
        policy = parse_policy("[ a : true -> .* ]")
        assert isinstance(policy.formula, FTrue)

    def test_unbracketed_single_statement(self):
        policy = parse_policy("a : tcp.dst = 80 -> .* dpi .*")
        assert policy.statement_ids() == ["a"]

    def test_formula_or_and_not(self):
        policy = parse_policy(
            "[ a : tcp.dst = 80 -> .* ; b : tcp.dst = 22 -> .* ],"
            "max(a, 10Mbps) or ! min(b, 5Mbps)"
        )
        assert policy.formula.identifiers() == {"a", "b"}

    def test_bandwidth_term_with_constant(self):
        policy = parse_policy(
            "[ a : tcp.dst = 80 -> .* ], max(a + 5Mbps, 10Mbps)"
        )
        clause = formula_clauses(policy.formula)[0]
        assert clause.term.constant == Bandwidth.mbps(5)

    def test_missing_arrow_rejected(self):
        with pytest.raises(ParseError):
            parse_policy("[ a : tcp.dst = 80 .* ]")

    def test_unclosed_bracket_rejected(self):
        with pytest.raises(ParseError):
            parse_policy("[ a : tcp.dst = 80 -> .* ")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_policy("[ a : true -> .* ] extra")

    def test_bad_formula_rejected(self):
        with pytest.raises(ParseError):
            parse_policy("[ a : true -> .* ], max(a)")


class TestSugar:
    def test_cross_product_expansion(self):
        source = """
        srcs := {00:00:00:00:00:01, 00:00:00:00:00:03}
        dsts := {00:00:00:00:00:02}
        foreach (s,d) in cross(srcs,dsts):
          tcp.dst = 80 -> ( .* nat .* dpi .* ) at max(100MB/s)
        """
        policy = parse_policy(source)
        assert len(policy.statements) == 2
        clauses = formula_clauses(policy.formula)
        assert len(clauses) == 2
        assert all(isinstance(clause, FMax) for clause in clauses)
        assert all(clause.rate == Bandwidth.mb_per_sec(100) for clause in clauses)

    def test_paper_sugar_equivalent_to_statement_z(self):
        source = """
        srcs := {00:00:00:00:00:01}
        dsts := {00:00:00:00:00:02}
        foreach (s,d) in cross(srcs,dsts):
          tcp.dst = 80 -> ( .* nat .* dpi .* ) at max(100MB/s)
        """
        policy = parse_policy(source)
        assert len(policy.statements) == 1
        predicate = policy.statements[0].predicate
        assert FieldTest("eth.src", "00:00:00:00:00:01") in _atoms_of(predicate)
        assert FieldTest("eth.dst", "00:00:00:00:00:02") in _atoms_of(predicate)
        assert FieldTest("tcp.dst", 80) in _atoms_of(predicate)

    def test_ip_sets_use_ip_fields(self):
        source = """
        srcs := {10.0.0.1}
        dsts := {10.0.0.2}
        foreach (s,d) in cross(srcs,dsts): true -> .*
        """
        policy = parse_policy(source)
        atoms = _atoms_of(policy.statements[0].predicate)
        assert FieldTest("ip.src", "10.0.0.1") in atoms
        assert FieldTest("ip.dst", "10.0.0.2") in atoms

    def test_single_set_iterates_over_ordered_pairs(self):
        source = """
        hostsset := {10.0.0.1, 10.0.0.2, 10.0.0.3}
        foreach (s,d) in hostsset: true -> .*
        """
        policy = parse_policy(source)
        assert len(policy.statements) == 3 * 2

    def test_host_names_resolved_against_topology(self, tiny_topology):
        source = """
        srcs := {h1}
        dsts := {h2}
        foreach (s,d) in cross(srcs,dsts): tcp.dst = 80 -> .*
        """
        policy = parse_policy(source, topology=tiny_topology)
        atoms = _atoms_of(policy.statements[0].predicate)
        assert FieldTest("eth.src", tiny_topology.node("h1").mac) in atoms

    def test_host_names_without_topology_rejected(self):
        source = """
        srcs := {h1}
        dsts := {h2}
        foreach (s,d) in cross(srcs,dsts): true -> .*
        """
        with pytest.raises(PolicyError):
            parse_policy(source)

    def test_undefined_set_rejected(self):
        with pytest.raises(PolicyError):
            parse_policy("foreach (s,d) in cross(a, b): true -> .*")

    def test_generated_identifiers_are_unique(self):
        source = """
        srcs := {10.0.0.1, 10.0.0.2}
        dsts := {10.0.0.3, 10.0.0.4}
        foreach (s,d) in cross(srcs,dsts): true -> .*
        """
        policy = parse_policy(source)
        identifiers = policy.statement_ids()
        assert len(identifiers) == len(set(identifiers)) == 4

    def test_min_and_max_annotations(self):
        source = """
        srcs := {10.0.0.1}
        dsts := {10.0.0.2}
        foreach (s,d) in cross(srcs,dsts): true -> .* at max(10Mbps) and min(1Mbps)
        """
        policy = parse_policy(source)
        clauses = formula_clauses(policy.formula)
        kinds = {type(clause) for clause in clauses}
        assert kinds == {FMax, FMin}


def _atoms_of(predicate):
    from repro.predicates.transform import atoms

    return {FieldTest(field, value) for field, value in atoms(predicate)}
