"""The unified ProvisionOptions surface and its legacy-keyword shim."""

import warnings

import pytest

from repro.core import DEFAULT_FOOTPRINT_SLACK, MerlinCompiler, ProvisionOptions
from repro.core.options import coalesce_options
from repro.lp.branch_and_bound import BranchAndBoundSolver
from repro.lp.scipy_backend import ScipySolver
from repro.topology.generators import figure2_example
from repro.units import Bandwidth

PLACEMENTS = {"dpi": ("m1",), "nat": ("m1",)}

SOURCE = """
[ x : (eth.src = 00:00:00:00:00:01 and
       eth.dst = 00:00:00:00:00:02 and
       tcp.dst = 80) -> .* dpi .* ],
min(x, 25MB/s)
"""


class TestProvisionOptions:
    def test_defaults(self):
        options = ProvisionOptions()
        assert options.partition is True
        assert options.footprint_slack == DEFAULT_FOOTPRINT_SLACK
        assert options.widen_slack is True
        assert options.warm_start == "auto"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ProvisionOptions().partition = False

    def test_invalid_warm_start_rejected(self):
        with pytest.raises(ValueError, match="warm_start"):
            ProvisionOptions(warm_start="sometimes")

    def test_backend_prefers_explicit_instance(self):
        backend = ScipySolver()
        options = ProvisionOptions(solver=backend, node_limit=10)
        assert options.backend() is backend

    def test_backend_node_limit_builds_branch_and_bound(self):
        resolved = ProvisionOptions(node_limit=10).backend()
        assert isinstance(resolved, BranchAndBoundSolver)
        assert resolved.max_nodes == 10

    def test_backend_time_limit_builds_scipy(self):
        resolved = ProvisionOptions(time_limit_seconds=1.0).backend()
        assert isinstance(resolved, ScipySolver)
        assert resolved.time_limit_seconds == 1.0

    def test_backend_default_is_scipy(self):
        assert isinstance(ProvisionOptions().backend(), ScipySolver)

    def test_backend_accepts_registered_names(self):
        resolved = ProvisionOptions(solver="bnb", node_limit=7).backend()
        assert isinstance(resolved, BranchAndBoundSolver)
        assert resolved.max_nodes == 7

    def test_unknown_backend_name_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown solver backend"):
            ProvisionOptions(solver="simplex2000")

    def test_resolved_solver_shim_warns_and_delegates(self):
        """The deprecated accessor keeps working (one release, like the
        legacy keyword shim) but now warns and returns a concrete default
        instead of ``None``."""
        with pytest.warns(DeprecationWarning, match="resolved_solver"):
            resolved = ProvisionOptions(node_limit=10).resolved_solver()
        assert isinstance(resolved, BranchAndBoundSolver)
        with pytest.warns(DeprecationWarning, match="backend"):
            assert isinstance(ProvisionOptions().resolved_solver(), ScipySolver)


class TestCoalesceOptions:
    def test_no_legacy_keywords_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            resolved = coalesce_options(None, owner="test")
        assert resolved == ProvisionOptions()

    def test_legacy_keyword_warns_and_overrides(self):
        with pytest.warns(DeprecationWarning, match="footprint_slack.*test"):
            resolved = coalesce_options(
                ProvisionOptions(), owner="test", footprint_slack=7
            )
        assert resolved.footprint_slack == 7

    def test_none_is_a_meaningful_override(self):
        with pytest.warns(DeprecationWarning):
            resolved = coalesce_options(
                None, owner="test", footprint_slack=None
            )
        assert resolved.footprint_slack is None


class TestCompilerShim:
    def test_legacy_compiler_keywords_warn(self):
        with pytest.warns(DeprecationWarning, match="MerlinCompiler"):
            compiler = MerlinCompiler(
                topology=figure2_example(capacity=Bandwidth.gbps(2)),
                placements=PLACEMENTS,
                footprint_slack=3,
            )
        assert compiler.options.footprint_slack == 3
        assert compiler.footprint_slack == 3

    def test_options_path_warns_nothing_and_binds_attributes(self):
        backend = ScipySolver()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            compiler = MerlinCompiler(
                topology=figure2_example(capacity=Bandwidth.gbps(2)),
                placements=PLACEMENTS,
                options=ProvisionOptions(solver=backend, max_workers=2),
            )
        assert compiler.options.max_workers == 2
        assert compiler.solver is backend
        assert compiler.max_solver_workers == 2

    def test_compile_and_recompile_share_one_options_value(self):
        compiler = MerlinCompiler(
            topology=figure2_example(capacity=Bandwidth.gbps(2)),
            placements=PLACEMENTS,
            overlap="trust",
            add_catch_all=False,
            generate_code=False,
            options=ProvisionOptions(max_workers=0),
        )
        options_before = compiler.options
        compiler.compile(SOURCE)
        assert compiler.options is options_before
