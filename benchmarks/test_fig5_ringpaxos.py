"""Figure 5 — Ring Paxos throughput with and without a Merlin guarantee.

Paper observation: two replicated services competing for one machine's NIC
split the bottleneck roughly equally (Figure 5a); giving Service 2 a
guarantee protects its throughput without reducing aggregate utilisation,
and Service 1 reclaims the bandwidth whenever Service 2 idles (work
conservation, Figure 5b).
"""

import pytest

from repro.analysis.reporting import format_table
from repro.core import compile_policy
from repro.simulator import SimulationNetwork
from repro.simulator.apps import RingPaxosExperiment, RingPaxosService
from repro.topology.generators import single_switch
from repro.units import Bandwidth

CLIENT_COUNTS = [0, 10, 20, 40, 60, 80, 100, 120]


def _run():
    topology = single_switch(3)
    service1 = RingPaxosService("ring1", "h1", "h3")
    service2 = RingPaxosService("ring2", "h2", "h3")

    shared = RingPaxosExperiment(SimulationNetwork(topology), service1, service2)
    without_merlin = shared.sweep(CLIENT_COUNTS)

    policy = (
        f"[ r2 : (eth.src = {topology.node('h2').mac} and "
        f"eth.dst = {topology.node('h3').mac} and tcp.dst = 8600) -> .* ],"
        "min(r2, 700Mbps)"
    )
    compiled = compile_policy(policy, topology, {})
    protected = RingPaxosExperiment(
        SimulationNetwork(topology, compiled), service1, service2
    )
    with_merlin = protected.sweep(CLIENT_COUNTS)
    work_conserving = protected.throughput_at(120, 0)
    return without_merlin, with_merlin, work_conserving


def test_fig5_ring_paxos(benchmark, report):
    without_merlin, with_merlin, work_conserving = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    table_a = format_table(
        without_merlin, ["clients", "ring1", "ring2", "aggregate"],
        title="Figure 5(a): throughput (Mbps) without Merlin",
    )
    table_b = format_table(
        with_merlin, ["clients", "ring1", "ring2", "aggregate"],
        title="Figure 5(b): throughput (Mbps) with a guarantee for ring 2",
    )
    report("fig5_ringpaxos", table_a + "\n\n" + table_b)

    saturated_a = without_merlin[-1]
    saturated_b = with_merlin[-1]
    # (a) Without Merlin the two services share the bottleneck about equally.
    assert saturated_a["ring1"] == pytest.approx(saturated_a["ring2"], rel=0.15)
    # (b) The guarantee protects ring 2 ...
    assert saturated_b["ring2"] > saturated_a["ring2"] * 1.3
    # ... without sacrificing aggregate utilisation.
    assert saturated_b["aggregate"] == pytest.approx(saturated_a["aggregate"], rel=0.15)
    # Work conservation: ring 1 reclaims the bandwidth when ring 2 idles.
    assert work_conserving["ring1"] > saturated_b["ring1"] * 1.5
