"""Figure 10 (b') — incremental re-provisioning vs full recompilation.

The paper's adaptation claim (§4.3) is that run-time changes avoid global
recompilation.  This benchmark measures the extension of that claim to
path-changing deltas: on the arity-8 fat tree with one pod-local tenant per
pod, adding ``d`` guaranteed statements is re-provisioned incrementally
(``MerlinCompiler.recompile``: splice + re-solve only the ``d`` dirty pod
components) and compared against a from-scratch ``compile()`` of the same
extended policy.  Both must produce identical paths and reservations; the
acceptance bar is a >= 5x latency advantage for a 1-statement delta.
"""

from repro.analysis.reporting import format_table
from repro.experiments.reprovisioning import measure_reprovisioning

from conftest import is_full_scale

COLUMNS = [
    "arity", "statements", "partitions", "delta_size", "dirty_partitions",
    "full_ms", "incremental_ms", "speedup", "identical",
]


def _run():
    if is_full_scale():
        return measure_reprovisioning(
            arity=8, pairs_per_pod=4, delta_sizes=(1, 2, 4, 8), repeats=5
        )
    return measure_reprovisioning(
        arity=8, pairs_per_pod=3, delta_sizes=(1, 2, 4), repeats=3
    )


def test_fig10b_reprovisioning(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "fig10b_reprovisioning",
        format_table(
            [row.as_dict() for row in rows],
            COLUMNS,
            title="Figure 10b': delta size vs incremental / full re-provisioning latency (fat-tree k=8)",
        ),
    )
    # The incremental path must be indistinguishable from a full compile...
    assert all(row.identical for row in rows)
    # ...touch exactly the components the delta touched...
    assert all(row.dirty_partitions == row.delta_size for row in rows)
    # ...and decompose at least one component per pod tenant (footprint
    # tightening may split a pod's pairs further when they share no links).
    assert all(row.partitions >= row.arity for row in rows)
    # ...and beat the full compile soundly on small deltas (acceptance: a
    # 1-statement delta on the arity-8 fat tree re-provisions >= 5x faster).
    one_statement = next(row for row in rows if row.delta_size == 1)
    assert one_statement.speedup >= 5.0, (
        f"1-statement delta speedup {one_statement.speedup:.1f}x < 5x "
        f"(incremental {one_statement.incremental_ms:.1f}ms vs "
        f"full {one_statement.full_ms:.1f}ms)"
    )
    # Larger deltas still win while re-solving proportionally more.
    assert all(row.speedup > 1.0 for row in rows)


def test_reprovision_smoke():
    """Smoke target: a tiny fat tree round-trips one delta in milliseconds
    (run via ``make bench-smoke`` / ``make bench-reprovision``)."""
    rows = measure_reprovisioning(
        arity=4, pairs_per_pod=1, delta_sizes=(1,), repeats=2
    )
    (row,) = rows
    assert row.identical
    assert row.dirty_partitions == 1
    assert row.incremental_ms < row.full_ms


def test_footprint_partitioning_smoke():
    """Smoke guard against footprint regressions: the pod-tenant workload
    plus one unconstrained ``.*`` statement must still decompose into at
    least one MIP component per tenant (run via ``make bench-smoke``).
    Without cost-bound tightening the ``.*`` statement's footprint spans
    every physical link and the partition count collapses to 1."""
    from repro.core import MerlinCompiler
    from repro.core.ast import BandwidthTerm, FMin, Policy, formula_and, formula_clauses
    from repro.experiments.reprovisioning import (
        pod_tenant_scenario,
        unconstrained_statement,
    )

    scenario = pod_tenant_scenario(arity=4, pairs_per_pod=1)
    wild = unconstrained_statement(scenario)
    policy = Policy(
        statements=scenario.policy.statements + (wild,),
        formula=formula_and(
            *formula_clauses(scenario.policy.formula),
            FMin(BandwidthTerm(identifiers=(wild.identifier,)), scenario.guarantee),
        ),
    )
    compiler = MerlinCompiler(
        topology=scenario.topology,
        overlap="trust",
        add_catch_all=False,
        generate_code=False,
    )
    result = compiler.compile(policy)
    tenants = len(scenario.pods)
    assert result.statistics.num_partitions >= tenants, (
        f"partition count {result.statistics.num_partitions} fell below the "
        f"{tenants} pod tenants: footprint tightening regressed"
    )
