"""Telemetry overhead guard — disabled instrumentation must stay free.

The repo's hot paths (compile, partitioned solve, branch-and-bound) are
permanently instrumented; the contract that makes this acceptable is that
the *disabled* path (no recorder, no metrics — the default bundle) costs
two clock reads and zero allocations per span.  This benchmark pins that
contract to the Figure-8 smoke point: the measured per-span cost times
the number of spans a traced run of that compile actually opens must stay
under 2% of the compile's wall time.  ``make check`` runs this via
``make bench-telemetry``.
"""

import time

from repro import telemetry
from repro.core.compiler import MerlinCompiler
from repro.experiments.policy_builders import all_pairs_policy
from repro.telemetry import Telemetry
from repro.topology.generators import fat_tree

#: Disabled instrumentation may cost at most this fraction of the smoke
#: point's compile time.
OVERHEAD_BUDGET = 0.02

_SPAN_PROBES = 20_000


def _smoke_compile():
    """The Figure-8 smallest point: fat tree k=4, 5% guaranteed classes."""
    topology = fat_tree(4)
    policy = all_pairs_policy(
        topology, guarantee_fraction=0.05, max_classes=60, seed=0
    )
    compiler = MerlinCompiler(
        topology=topology,
        overlap="trust",
        add_catch_all=False,
        generate_code=False,
    )
    return compiler.compile(policy)


def _baseline_seconds(rounds=3):
    """Best-of-N wall time of the smoke compile with telemetry disabled."""
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        _smoke_compile()
        best = min(best, time.perf_counter() - started)
    return best


def _disabled_span_seconds():
    """Measured per-span cost of the disabled (pooled, recorder-less) path."""
    span = telemetry.span  # the ambient helper instrumentation sites use
    started = time.perf_counter()
    for _ in range(_SPAN_PROBES):
        with span("overhead_probe"):
            pass
    return (time.perf_counter() - started) / _SPAN_PROBES


def _spans_per_smoke_compile():
    """How many spans one traced smoke compile actually opens."""
    bundle = Telemetry.recording()
    with bundle.use():
        _smoke_compile()
    return len(bundle.recorder.spans)


def test_disabled_telemetry_overhead_within_budget(report):
    _smoke_compile()  # warm caches and imports off the clock
    baseline = _baseline_seconds()
    per_span = _disabled_span_seconds()
    num_spans = _spans_per_smoke_compile()
    overhead = per_span * num_spans
    fraction = overhead / baseline
    report(
        "telemetry_overhead",
        "\n".join(
            [
                f"fig8 smoke baseline (disabled telemetry): {baseline * 1000.0:.2f}ms",
                f"disabled span cost: {per_span * 1e9:.0f}ns over {_SPAN_PROBES} probes",
                f"spans opened by one traced smoke compile: {num_spans}",
                f"estimated disabled-path overhead: {overhead * 1e6:.1f}us "
                f"({fraction * 100.0:.3f}% of baseline, budget "
                f"{OVERHEAD_BUDGET * 100.0:.0f}%)",
            ]
        ),
    )
    assert num_spans > 0
    assert fraction <= OVERHEAD_BUDGET, (
        f"disabled telemetry costs {fraction * 100.0:.2f}% of the smoke "
        f"compile ({overhead * 1e6:.1f}us of {baseline * 1000.0:.2f}ms); "
        f"budget is {OVERHEAD_BUDGET * 100.0:.0f}%"
    )
