"""Churn & failure scenario replay — the self-healing session under load.

A seeded scenario stream (link/switch failures and recoveries, tenant
join/leave, diurnal + flash-crowd renegotiations, middlebox rewrites) is
replayed against one live transactional session, with the fluid simulator
checking every resulting allocation on the degraded topology in lockstep.

Acceptance: the stream runs to completion with **zero session
invalidations** — every cost-bound infeasibility (the slack-2 pruned model
excluding the only viable backup paths) is recovered by geometric slack
widening rather than surfacing as a failure — and the final session
allocation is provably identical to a fresh session given the final policy
and failure state.  The quick run is a 200-event stream on the arity-4 fat
tree; the full-scale run (``MERLIN_BENCH_SCALE=full``) is the 500-event
arity-6 stream with up to two concurrent failures per pod.
"""

from repro.scenarios import ScenarioConfig, generate_scenario, replay

from conftest import is_full_scale

#: Seeds are pinned so the streams are reproducible AND known to exercise
#: the widening ladder (verified: >= 1 widened event per configuration).
QUICK = ScenarioConfig(seed=1, events=200, arity=4)
FULL = ScenarioConfig(
    seed=1,
    events=500,
    arity=6,
    max_failures_per_pod=2,
    max_concurrent_failures=6,
)


def _run():
    config = FULL if is_full_scale() else QUICK
    scenario = generate_scenario(config)
    return config, replay(scenario)


def test_churn_replay(benchmark, report):
    config, result = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "churn_replay",
        f"scenario: fat-tree k={config.arity}, {config.events} events, "
        f"seed={config.seed}\n" + result.summary(),
    )
    # Every event must be processed: applied, or rejected-and-rolled-back
    # with the session intact.  An invalidated session is the failure mode
    # the widening ladder exists to prevent.
    assert len(result.records) == config.events
    assert result.invalidations == 0
    assert result.rejected == 0
    # The widening ladder actually ran (the pinned seed guarantees at
    # least one cost-bound infeasibility) and recovered every one.
    assert result.widened_events >= 1
    # Lockstep simulation: the compiled guarantees fit the degraded fabric
    # after every single event, at full availability.
    assert result.simulator_inconsistencies == 0
    assert result.min_availability() == 1.0
    # Replayed history == fresh session with the final policy + failures.
    assert result.final_identical is True
