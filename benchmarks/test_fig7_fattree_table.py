"""Figure 7 (table) — fat-tree provisioning with 5% guaranteed traffic classes.

Paper observation: the rateless (best-effort) solution time stays small and
grows slowly, while LP construction and LP solution times grow quickly with
the number of guaranteed traffic classes; guarantees for hundreds of classes
on a 125-switch network solve in seconds, the largest configurations in
minutes to hours.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.experiments.scaling import figure7_table

from conftest import is_full_scale


def _run():
    if is_full_scale():
        return figure7_table(arities=(4, 6, 8), guarantee_fraction=0.05)
    # Quick mode: cap the number of traffic classes so the MIP stays small.
    return figure7_table(arities=(4, 6), guarantee_fraction=0.05, max_classes=600)


def test_fig7_fat_tree_table(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        [row.as_dict() for row in rows],
        [
            "traffic_classes",
            "hosts",
            "switches",
            "guaranteed",
            "lp_construction_ms",
            "lp_solve_ms",
            "rateless_ms",
        ],
        title="Figure 7: fat-tree provisioning times (5% guaranteed classes)",
    )
    report("fig7_fattree_table", table)

    # Shape: larger fat trees have more classes and more expensive LP phases,
    # while the rateless path stays comparatively cheap.
    assert rows[-1].traffic_classes > rows[0].traffic_classes
    assert rows[-1].lp_solve_ms >= rows[0].lp_solve_ms * 0.5
    for row in rows:
        assert row.rateless_ms < row.lp_construction_ms + row.lp_solve_ms
