"""§6.2 Hadoop — job completion time under interference and with guarantees.

Paper numbers: 466 s with exclusive network access, 558 s (+20%) with UDP
background traffic, 500 s when Merlin guarantees 90% of the capacity to
Hadoop.  The reproduction runs the same three configurations on the flow
simulator; the shape to reproduce is interference slowing the job by >10%
and the guarantee recovering most of the loss.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.core import compile_policy
from repro.simulator import SimulationNetwork
from repro.simulator.apps import HadoopJob
from repro.simulator.apps.hadoop import udp_interference
from repro.topology.generators import single_switch
from repro.units import Bandwidth

WORKERS = ["h1", "h2", "h3", "h4"]
INTERFERERS = [("h5", "h1"), ("h6", "h2")]


def _guarantee_policy(topology, per_pair=Bandwidth.mbps(150)):
    statements, clauses = [], []
    index = 0
    for source in WORKERS:
        for destination in WORKERS:
            if source == destination:
                continue
            index += 1
            statements.append(
                f"hd{index} : (eth.src = {topology.node(source).mac} and "
                f"eth.dst = {topology.node(destination).mac} and tcp.dst = 50010) -> .*"
            )
            clauses.append(f"min(hd{index}, {per_pair.policy_literal()})")
    return "[ " + " ; ".join(statements) + " ], " + " and ".join(clauses)


def _run():
    topology = single_switch(6)
    job = HadoopJob(workers=WORKERS, data_bytes=10e9, compute_seconds=400.0)

    plain = SimulationNetwork(topology)
    baseline = job.run(plain)

    interfered = job.run(
        plain,
        background_flows=udp_interference(plain, INTERFERERS, Bandwidth.mbps(800)),
    )

    compiled = compile_policy(_guarantee_policy(topology), topology, {}, overlap="trust")
    protected = SimulationNetwork(topology, compiled)
    guaranteed = job.run(
        protected,
        background_flows=udp_interference(protected, INTERFERERS, Bandwidth.mbps(800)),
    )
    return baseline, interfered, guaranteed


def test_hadoop_guarantees(benchmark, report):
    baseline, interfered, guaranteed = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        {"configuration": "baseline (exclusive)", "paper_s": 466.0,
         "measured_s": baseline.completion_seconds,
         "shuffle_s": baseline.shuffle_seconds},
        {"configuration": "interference (UDP)", "paper_s": 558.0,
         "measured_s": interfered.completion_seconds,
         "shuffle_s": interfered.shuffle_seconds},
        {"configuration": "with 90% guarantee", "paper_s": 500.0,
         "measured_s": guaranteed.completion_seconds,
         "shuffle_s": guaranteed.shuffle_seconds},
    ]
    report(
        "hadoop_guarantees",
        format_table(rows, ["configuration", "paper_s", "measured_s", "shuffle_s"],
                     title="§6.2 Hadoop 10 GB sort completion time"),
    )
    # Shape assertions: interference hurts, the guarantee recovers most of it.
    assert interfered.completion_seconds > baseline.completion_seconds * 1.10
    assert guaranteed.completion_seconds < interfered.completion_seconds
    assert guaranteed.completion_seconds < baseline.completion_seconds * 1.15
