"""Shared configuration for the benchmark harness.

Each benchmark module regenerates one table or figure from the paper's
evaluation (§6).  Benchmarks run at a reduced default scale so the whole
suite finishes in a few minutes; set ``MERLIN_BENCH_SCALE=full`` to run the
paper-sized versions (hours, mostly in the MIP solver and the large
verification sweeps).

Every benchmark prints the rows/series it measured and also appends them to
``benchmarks/results/<name>.txt`` so the numbers quoted in EXPERIMENTS.md can
be regenerated.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale() -> str:
    """The requested benchmark scale: ``"quick"`` (default) or ``"full"``."""
    return os.environ.get("MERLIN_BENCH_SCALE", "quick").lower()


def is_full_scale() -> bool:
    return bench_scale() == "full"


@pytest.fixture
def report():
    """A callable that prints a report block and persists it under results/."""

    def _report(name: str, text: str) -> None:
        banner = f"\n=== {name} ===\n{text}\n"
        print(banner)
        RESULTS_DIR.mkdir(exist_ok=True)
        with open(RESULTS_DIR / f"{name}.txt", "w", encoding="utf-8") as handle:
            handle.write(text + "\n")

    return _report
