"""Figure 9 — negotiator verification time.

Three sweeps: number of delegated predicates, regular-expression AST size,
and number of bandwidth allocations.  Paper observation: predicates and
allocations verify in milliseconds and scale linearly into the tens of
thousands; regular-expression verification is noticeably more expensive and
grows super-linearly (the paper reports ~3.5 s at a thousand AST nodes).
"""

import pytest

from repro.analysis.reporting import format_table
from repro.experiments.verification import (
    sweep_allocations,
    sweep_predicates,
    sweep_regex_nodes,
)

from conftest import is_full_scale


def _run():
    if is_full_scale():
        predicates = sweep_predicates((10, 100, 1000, 5000, 10000))
        allocations = sweep_allocations((10, 100, 1000, 5000, 10000))
        regexes = sweep_regex_nodes((10, 50, 100, 250, 500, 1000))
    else:
        predicates = sweep_predicates((10, 100, 1000, 2000))
        allocations = sweep_allocations((10, 100, 1000, 5000))
        regexes = sweep_regex_nodes((10, 50, 100, 150))
    return predicates, allocations, regexes


def test_fig9_verification(benchmark, report):
    predicates, allocations, regexes = benchmark.pedantic(_run, rounds=1, iterations=1)
    blocks = [
        format_table(
            [point.as_dict() for point in predicates],
            ["size", "verify_ms", "valid"],
            title="Figure 9 (left): verification time vs number of predicates",
        ),
        format_table(
            [point.as_dict() for point in regexes],
            ["size", "verify_ms", "valid"],
            title="Figure 9 (middle): verification time vs regex AST nodes",
        ),
        format_table(
            [point.as_dict() for point in allocations],
            ["size", "verify_ms", "valid"],
            title="Figure 9 (right): verification time vs number of allocations",
        ),
    ]
    report("fig9_verification", "\n\n".join(blocks))

    # All sweeps verify successfully (the refinements are valid by construction).
    assert all(point.valid for point in predicates + allocations + regexes)
    # Predicates and allocations stay fast and scale roughly linearly.
    assert predicates[-1].verify_ms < 5_000.0
    assert allocations[-1].verify_ms < 5_000.0
    per_item_small = allocations[1].verify_ms / allocations[1].size
    per_item_large = allocations[-1].verify_ms / allocations[-1].size
    assert per_item_large < per_item_small * 50
    # Regex verification is the expensive dimension, as in the paper.
    assert regexes[-1].verify_ms > predicates[1].verify_ms
