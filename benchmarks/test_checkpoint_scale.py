"""Checkpoint cost at scale: undo-journal marks vs copying snapshots.

The shadow checkpoints of PR 5 copied every session dict per transaction —
exact, but O(population), which dominates once a long-running provisioner
carries 100k+ statements and each delta touches a handful.  The undo
journal (``repro.incremental.journal``) replaces the copies with an
inverse-operation log: O(1) marks, O(delta) rollback, O(1) commit.

This benchmark measures that claim on the engine's bookkeeping layer, the
layer checkpoints protect (solves are deliberately excluded — a 100k-
statement MIP is a solver benchmark, not a checkpoint one).  A population
of guaranteed statements sharing one rebadged product graph is built at a
small and a large size, and at each size we take the minimum over repeated
runs of:

* ``mark`` — ``checkpoint()`` + ``release()``: the per-delta overhead the
  journal charges ("after");
* ``snapshot`` — the legacy ``snapshot()`` dict copy ("before");
* ``transaction`` — a full churn transaction (rate renegotiation + tenant
  join + tenant leave, rolled back and committed), the realistic per-delta
  cost including the undo replay.

Acceptance (the O(delta) guard): the large-population mark and transaction
costs stay within 2x of the small-population costs (plus a small absolute
epsilon for timer noise) — i.e. checkpoint cost does not grow with the
population.  The large population then sustains a seeded
join/leave/renegotiation event stream end-to-end, every event inside a
mark/rollback-or-commit transaction, with the journal fully truncated at
the end.

Quick tier: 1k vs 100k, 200-event stream.  ``MERLIN_BENCH_SCALE=full``:
1k vs 250k, 1000-event stream.
"""

import random
import time

from repro.analysis.reporting import format_table
from repro.core.ast import Statement
from repro.core.logical import build_logical_topology
from repro.core.options import ProvisionOptions
from repro.incremental import IncrementalProvisioner
from repro.predicates.ast import FieldTest
from repro.regex.parser import parse_path_expression
from repro.topology.generators import figure2_example
from repro.units import Bandwidth

from conftest import is_full_scale

SMALL_POPULATION = 1_000
QUICK_LARGE_POPULATION = 100_000
FULL_LARGE_POPULATION = 250_000
QUICK_EVENTS = 200
FULL_EVENTS = 1_000
TIMING_REPS = 5
#: Absolute slop added to the 2x relative guard: shared-machine timer noise
#: on a sub-millisecond measurement should not fail an asymptotic claim.
EPSILON_SECONDS = 0.002

_PATH = parse_path_expression(".*")
_GUARANTEE = Bandwidth.mbps(1)


def _engine_with_population(count):
    """An engine carrying ``count`` guaranteed statements, ready to churn.

    Every statement shares one prebuilt product graph (rebadged per
    identifier — structure shared, never copied), so population cost is
    pure bookkeeping and the benchmark scales to 250k statements without
    re-running graph construction 250k times.
    """
    topology = figure2_example(capacity=Bandwidth.gbps(100))
    seed_statement = Statement("seed", FieldTest("tcp.dst", 1), _PATH)
    logical = build_logical_topology(
        seed_statement, topology, {}, source="h1", destination="h2"
    )
    engine = IncrementalProvisioner(
        topology, options=ProvisionOptions(footprint_slack=None)
    )
    for index in range(count):
        identifier = f"s{index}"
        engine.add_statement(
            Statement(identifier, FieldTest("tcp.dst", index % 60_000), _PATH),
            guarantee=_GUARANTEE,
            logical=logical.rebadged(identifier),
        )
    return engine, logical


def _best_of(reps, run):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def _mark_cost(engine):
    def run():
        saved = engine.checkpoint()
        engine.release(saved)

    return _best_of(TIMING_REPS, run)


def _snapshot_cost(engine):
    return _best_of(TIMING_REPS, engine.snapshot)


def _transaction_cost(engine, logical):
    """One churn transaction — renegotiate + join + leave — rolled back.

    Rolling back (rather than committing) keeps the engine byte-identical
    across repetitions, so min-of-reps measures the same work every time;
    the rollback's undo replay is part of the realistic per-delta cost.
    """

    def run():
        saved = engine.checkpoint()
        engine.update_rates("s5", guarantee=Bandwidth.mbps(2))
        engine.add_statement(
            Statement("bench_fresh", FieldTest("tcp.dst", 7), _PATH),
            guarantee=_GUARANTEE,
            logical=logical.rebadged("bench_fresh"),
        )
        engine.remove_statement("s9")
        engine.restore(saved)
        engine.release(saved)

    return _best_of(TIMING_REPS, run)


def _sustain_stream(engine, logical, events, seed=20140402):
    """Replay a join/leave/renegotiation stream, one transaction per event.

    A quarter of the events roll back instead of committing (an admission
    veto, a failed solve) — the stream must survive those too.  Returns
    (committed, rolled_back); the caller checks the mirror population.
    """
    rng = random.Random(seed)
    population = set(engine.statement_ids())
    mirror = set(population)
    next_join = len(population)
    committed = rolled_back = 0
    for _ in range(events):
        saved = engine.checkpoint()
        kind = rng.choice(("join", "leave", "renegotiate"))
        if kind == "join":
            identifier = f"j{next_join}"
            next_join += 1
            engine.add_statement(
                Statement(identifier, FieldTest("tcp.dst", next_join % 60_000), _PATH),
                guarantee=_GUARANTEE,
                logical=logical.rebadged(identifier),
            )
            touched = ("add", identifier)
        elif kind == "leave":
            identifier = rng.choice(tuple(mirror))
            engine.remove_statement(identifier)
            touched = ("remove", identifier)
        else:
            identifier = rng.choice(tuple(mirror))
            engine.update_rates(
                identifier, guarantee=Bandwidth.mbps(rng.randint(1, 50))
            )
            touched = ("update", identifier)
        if rng.random() < 0.25:
            engine.restore(saved)
            rolled_back += 1
        else:
            if touched[0] == "add":
                mirror.add(touched[1])
            elif touched[0] == "remove":
                mirror.discard(touched[1])
            committed += 1
        engine.release(saved)
    assert set(engine.statement_ids()) == mirror
    return committed, rolled_back


def _run():
    large_population = (
        FULL_LARGE_POPULATION if is_full_scale() else QUICK_LARGE_POPULATION
    )
    events = FULL_EVENTS if is_full_scale() else QUICK_EVENTS
    rows = []
    measured = {}
    for population in (SMALL_POPULATION, large_population):
        engine, logical = _engine_with_population(population)
        mark = _mark_cost(engine)
        snapshot = _snapshot_cost(engine)
        transaction = _transaction_cost(engine, logical)
        measured[population] = (mark, transaction, engine, logical)
        rows.append(
            {
                "statements": population,
                "mark_us": mark * 1e6,
                "transaction_us": transaction * 1e6,
                "legacy_snapshot_us": snapshot * 1e6,
                "snapshot_over_mark": snapshot / mark if mark else float("inf"),
            }
        )
    stream = _sustain_stream(*measured[large_population][2:], events=events)
    return large_population, events, rows, measured, stream


def test_checkpoint_cost_stays_o_delta(benchmark, report):
    large_population, events, rows, measured, stream = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    committed, rolled_back = stream
    report(
        "checkpoint_scale",
        format_table(
            rows,
            [
                "statements",
                "mark_us",
                "transaction_us",
                "legacy_snapshot_us",
                "snapshot_over_mark",
            ],
            title=(
                "Checkpoint cost: undo-journal mark vs legacy copying "
                "snapshot (min of %d reps)" % TIMING_REPS
            ),
        )
        + (
            f"\nstream @ {large_population} statements: {events} events, "
            f"{committed} committed, {rolled_back} rolled back"
        ),
    )
    small_mark, small_tx, _, _ = measured[SMALL_POPULATION]
    large_mark, large_tx, engine, _ = measured[large_population]
    # The O(delta) guard: a 100x larger population must not make the
    # per-delta checkpoint or transaction measurably more expensive.
    assert large_mark <= max(2 * small_mark, small_mark + EPSILON_SECONDS)
    assert large_tx <= max(2 * small_tx, small_tx + EPSILON_SECONDS)
    # The stream ran end-to-end and the journal was truncated behind it:
    # nothing leaks between transactions.
    assert committed + rolled_back == events
    assert not engine._journal.active
    assert len(engine._journal) == 0
