"""Figure 10 — dynamic adaptation: AIMD sawtooth and MMFS convergence.

Paper observation: the negotiators let tenants adapt bandwidth quickly while
never violating the global constraint — AIMD produces the familiar sawtooth
bounded by the shared capacity, and MMFS converges to the fair share and
re-allocates when demands change.
"""

import pytest

from repro.analysis.reporting import format_series
from repro.experiments.adaptation import run_adaptation_experiment


def test_fig10_adaptation(benchmark, report):
    traces = benchmark.pedantic(run_adaptation_experiment, rounds=1, iterations=1)
    aimd, mmfs = traces.aimd, traces.mmfs
    blocks = [
        format_series(
            aimd.times,
            {"h1-h2": aimd.series("h1-h2"), "h3-h4": aimd.series("h3-h4"),
             "aggregate": aimd.aggregate()},
            x_label="t(s)",
            title="Figure 10(a): AIMD allocations (Mbps)",
        ),
        format_series(
            mmfs.times,
            {"h1-h2": mmfs.series("h1-h2"), "h3-h4": mmfs.series("h3-h4")},
            x_label="t(s)",
            title="Figure 10(b): max-min fair-sharing allocations (Mbps)",
        ),
    ]
    report("fig10_adaptation", "\n\n".join(blocks))

    # AIMD: the aggregate never exceeds the shared capacity and oscillates.
    assert max(aimd.aggregate()) <= 600 + 1e-6
    series = aimd.series("h1-h2")
    assert max(series) - min(series[5:]) > 50  # visible sawtooth amplitude

    # MMFS: single active flow gets everything, both active share equally,
    # and the survivor reclaims the capacity at the end.
    assert mmfs.series("h1-h2")[0] == pytest.approx(450.0)
    assert mmfs.series("h1-h2")[15] == pytest.approx(225.0)
    assert mmfs.series("h3-h4")[15] == pytest.approx(225.0)
    assert mmfs.series("h3-h4")[-1] == pytest.approx(450.0)
