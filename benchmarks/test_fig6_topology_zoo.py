"""Figure 6 — all-pairs connectivity compilation time on the Topology Zoo.

Paper observation: most of the 262 topologies compile in under 50 ms, all
but one in under 600 ms, and the largest (754 switches) takes about 4 s.
The reproduction uses a synthetic ensemble matched to the Zoo's size
statistics (mean 40 switches, stdev 30, max 754).
"""

import pytest

from repro.analysis.reporting import format_table
from repro.analysis.stats import summarize
from repro.experiments.zoo import run_topology_zoo_experiment

from conftest import is_full_scale


def _run():
    count = 262 if is_full_scale() else 60
    return run_topology_zoo_experiment(count=count, seed=0)


def test_fig6_topology_zoo(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    times = [row.compile_ms for row in rows]
    summary = summarize(times)
    largest = max(rows, key=lambda row: row.switches)
    table = format_table(
        [
            {"statistic": key, "compile_ms": value}
            for key, value in summary.items()
        ],
        ["statistic", "compile_ms"],
        title="Figure 6: per-topology connectivity compile time (ms)",
    )
    detail = format_table(
        [row.as_dict() for row in sorted(rows, key=lambda r: r.switches)[-5:]],
        ["name", "switches", "hosts", "compile_ms"],
        title="Largest topologies",
    )
    report("fig6_topology_zoo", table + "\n\n" + detail)

    # Shape: the majority compile fast, and the 754-switch outlier dominates.
    assert summary["median"] < 200.0
    assert largest.switches == 754
    assert largest.compile_ms == pytest.approx(max(times))
    assert largest.compile_ms > summary["median"]
