"""Figure 8 — compilation time vs number of traffic classes.

Four panels in the paper: (a)/(c) all-pairs best-effort connectivity on
balanced trees and fat trees, (b)/(d) the same topologies with 5% of the
traffic classes guaranteed.  The observation to reproduce: best-effort
compilation grows slowly (it is dominated by sink-tree construction), while
the guaranteed path grows much faster because of the MIP.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.experiments.scaling import figure8_curves, measure_compilation
from repro.topology.generators import fat_tree

from conftest import is_full_scale


def _run():
    if is_full_scale():
        fat = figure8_curves("fat-tree", sizes=(4, 6, 8, 10), guarantee_fraction=0.05)
        balanced = figure8_curves(
            "balanced-tree", sizes=(2, 3, 4), guarantee_fraction=0.05
        )
    else:
        fat = figure8_curves(
            "fat-tree", sizes=(4, 6, 8), guarantee_fraction=0.05, max_classes=400
        )
        balanced = figure8_curves(
            "balanced-tree", sizes=(2, 3), guarantee_fraction=0.05, max_classes=400
        )
    return {"fat-tree": fat, "balanced-tree": balanced}


def test_fig8_scaling(benchmark, report):
    curves = benchmark.pedantic(_run, rounds=1, iterations=1)
    blocks = []
    for family, series in curves.items():
        for kind, rows in series.items():
            blocks.append(
                format_table(
                    [row.as_dict() for row in rows],
                    ["topology", "traffic_classes", "guaranteed",
                     "lp_construction_ms", "lp_solve_ms", "rateless_ms", "total_ms",
                     "mip_variables", "mip_constraints"],
                    title=f"Figure 8: {family}, {kind}",
                )
            )
    report("fig8_scaling", "\n\n".join(blocks))

    for family, series in curves.items():
        best_effort = series["best-effort"]
        guaranteed = series["guaranteed"]
        # Best-effort compilations never pay the MIP cost.
        assert all(row.lp_solve_ms == 0.0 for row in best_effort)
        assert all(row.guaranteed_classes == 0 for row in best_effort)
        # Guaranteed compilations do, and cost more than best-effort overall.
        assert all(row.guaranteed_classes > 0 for row in guaranteed)
        # MIP construction cost is attributed separately from solve cost.
        assert all(row.lp_construction_ms > 0.0 for row in guaranteed)
        assert all(row.mip_variables > 0 for row in guaranteed)
        assert guaranteed[-1].total_ms > best_effort[-1].rateless_ms
        # Compilation time grows with the number of traffic classes.
        assert guaranteed[-1].traffic_classes > guaranteed[0].traffic_classes


def test_fig8_smallest_point_smoke():
    """Smoke target: the smallest Figure 8 point compiles end-to-end in
    milliseconds (run alone via ``make bench-smoke``)."""
    row = measure_compilation(fat_tree(4), guarantee_fraction=0.05, max_classes=60)
    assert row.guaranteed_classes > 0
    assert row.mip_variables > 0
    assert row.mip_constraints > 0
    # Construction and solve time are attributed separately and both paid.
    assert row.lp_construction_ms > 0.0
    assert row.lp_solve_ms > 0.0
    assert row.total_ms >= row.lp_construction_ms
