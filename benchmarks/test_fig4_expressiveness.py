"""Figure 4 — expressiveness: Merlin policy size vs generated instructions.

Paper observation: policies of 6-23 Merlin lines expand to hundreds or
thousands of low-level instructions; only the bandwidth-bearing policies emit
``tc`` commands and queue configurations, and the combination policy is the
largest.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.experiments.expressiveness import run_expressiveness_experiment

from conftest import is_full_scale


def _run():
    subnets = 24 if is_full_scale() else 12
    return run_expressiveness_experiment(subnets=subnets, guarantee_fraction=0.10)


def test_fig4_expressiveness(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        [row.as_dict() for row in rows],
        ["policy", "merlin_loc", "openflow", "tc", "queues", "click", "total"],
        title="Figure 4: instruction counts per policy (Stanford-like campus)",
    )
    report("fig4_expressiveness", table)

    by_name = {row.policy: row for row in rows}
    # Only bandwidth-bearing policies configure queues and tc.
    assert by_name["baseline"].queues == 0 and by_name["baseline"].tc == 0
    assert by_name["bandwidth"].queues > 0 and by_name["bandwidth"].tc > 0
    assert by_name["combination"].queues > 0
    # Middlebox policies emit Click configurations; the baseline does not.
    assert by_name["firewall"].click > 0
    assert by_name["monitoring"].click > 0
    # Every policy expands a handful of Merlin lines into far more instructions.
    for row in rows:
        assert row.total > 10 * row.merlin_loc
    # The combination policy is the largest, as in the paper.
    assert by_name["combination"].total == max(row.total for row in rows)
