"""Ablation benchmarks for design choices called out in DESIGN.md.

Not part of the paper's evaluation, but they quantify the two substitutions
and the path-selection design space:

* **Solver backends** — the SciPy/HiGHS MILP backend vs the pure-Python
  branch-and-bound backend on the same provisioning problem (both must find
  the same optimum; HiGHS is expected to be faster).
* **Path-selection heuristics** — the three objectives of Figure 3 on the
  dumbbell topology, characterising the trade-off each makes.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.core import MerlinCompiler, PathSelectionHeuristic, ProvisionOptions, compile_policy
from repro.lp import BranchAndBoundSolver, ScipySolver
from repro.topology.generators import dumbbell, fat_tree
from repro.units import Bandwidth

_FIG3_POLICY = """
[ a : (eth.src = 00:00:00:00:00:01 and eth.dst = 00:00:00:00:00:02 and tcp.dst = 80) -> .* ;
  b : (eth.src = 00:00:00:00:00:01 and eth.dst = 00:00:00:00:00:02 and tcp.dst = 22) -> .* ],
min(a, 50MB/s) and min(b, 50MB/s)
"""


def _guaranteed_fat_tree_policy(topology, pairs=6, rate=Bandwidth.mbps(100)):
    hosts = topology.host_names()
    statements, clauses = [], []
    for index in range(pairs):
        source = hosts[index]
        destination = hosts[-(index + 1)]
        statements.append(
            f"g{index} : (eth.src = {topology.node(source).mac} and "
            f"eth.dst = {topology.node(destination).mac}) -> .*"
        )
        clauses.append(f"min(g{index}, {rate.policy_literal()})")
    return "[ " + " ; ".join(statements) + " ], " + " and ".join(clauses)


def _run_solver_ablation():
    topology = fat_tree(4)
    policy = _guaranteed_fat_tree_policy(topology)
    rows = []
    for name, solver in (
        ("scipy-highs", ScipySolver()),
        ("branch-and-bound", BranchAndBoundSolver()),
    ):
        compiler = MerlinCompiler(
            topology=topology,
            overlap="trust",
            generate_code=False,
            options=ProvisionOptions(solver=solver),
        )
        result = compiler.compile(policy)
        rows.append(
            {
                "solver": name,
                "lp_solve_ms": result.statistics.lp_solve_seconds * 1000.0,
                "max_utilization": result.max_link_utilization(),
                "paths": len(result.paths),
            }
        )
    return rows


def test_ablation_solver_backends(benchmark, report):
    rows = benchmark.pedantic(_run_solver_ablation, rounds=1, iterations=1)
    report(
        "ablation_solvers",
        format_table(rows, ["solver", "lp_solve_ms", "max_utilization", "paths"],
                     title="Ablation: MIP solver backends on a fat-tree provisioning problem"),
    )
    # Both backends provision every guaranteed statement and respect capacity.
    assert all(row["paths"] == 6 for row in rows)
    assert all(row["max_utilization"] <= 1.0 + 1e-6 for row in rows)
    # Both reach the same optimal max-utilisation (they solve the same MIP).
    assert rows[0]["max_utilization"] == pytest.approx(
        rows[1]["max_utilization"], abs=0.02
    )


def _run_heuristic_ablation():
    topology = dumbbell()
    rows = []
    for heuristic in PathSelectionHeuristic:
        result = compile_policy(_FIG3_POLICY, topology, {}, heuristic=heuristic)
        total_hops = sum(
            assignment.hop_count()
            for name, assignment in result.paths.items()
            if name in ("a", "b")
        )
        rows.append(
            {
                "heuristic": heuristic.value,
                "total_hops": total_hops,
                "r_max": result.max_link_utilization(),
                "R_max_mbps": result.max_link_reservation().mbps_value,
            }
        )
    return rows


def test_ablation_path_selection_heuristics(benchmark, report):
    rows = benchmark.pedantic(_run_heuristic_ablation, rounds=1, iterations=1)
    report(
        "ablation_heuristics",
        format_table(rows, ["heuristic", "total_hops", "r_max", "R_max_mbps"],
                     title="Ablation: path-selection heuristics on the Figure 3 dumbbell"),
    )
    by_name = {row["heuristic"]: row for row in rows}
    # Each heuristic optimises its own criterion (Figure 3).
    assert by_name["weighted-shortest-path"]["total_hops"] == min(
        row["total_hops"] for row in rows
    )
    assert by_name["min-max-ratio"]["r_max"] == min(row["r_max"] for row in rows)
    assert by_name["min-max-reserved"]["R_max_mbps"] == min(
        row["R_max_mbps"] for row in rows
    )
