"""Ablation benchmarks for design choices called out in DESIGN.md.

Not part of the paper's evaluation, but they quantify the two substitutions
and the path-selection design space:

* **Solver backends** — the SciPy/HiGHS MILP backend vs the pure-Python
  branch-and-bound backend on the same provisioning problem (both must find
  the same optimum; HiGHS is expected to be faster).
* **Path-selection heuristics** — the three objectives of Figure 3 on the
  dumbbell topology, characterising the trade-off each makes.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.core import MerlinCompiler, PathSelectionHeuristic, ProvisionOptions, compile_policy
from repro.lp import BranchAndBoundSolver, ScipySolver, highs_available
from repro.simulator.engine import FlowSimulator
from repro.simulator.flows import Flow
from repro.simulator.network import SimulationNetwork
from repro.topology.generators import dumbbell, fat_tree
from repro.units import Bandwidth

_FIG3_POLICY = """
[ a : (eth.src = 00:00:00:00:00:01 and eth.dst = 00:00:00:00:00:02 and tcp.dst = 80) -> .* ;
  b : (eth.src = 00:00:00:00:00:01 and eth.dst = 00:00:00:00:00:02 and tcp.dst = 22) -> .* ],
min(a, 50MB/s) and min(b, 50MB/s)
"""


def _guaranteed_fat_tree_policy(topology, pairs=6, rate=Bandwidth.mbps(100)):
    hosts = topology.host_names()
    statements, clauses = [], []
    for index in range(pairs):
        source = hosts[index]
        destination = hosts[-(index + 1)]
        statements.append(
            f"g{index} : (eth.src = {topology.node(source).mac} and "
            f"eth.dst = {topology.node(destination).mac}) -> .*"
        )
        clauses.append(f"min(g{index}, {rate.policy_literal()})")
    return "[ " + " ; ".join(statements) + " ], " + " and ".join(clauses)


def _run_solver_ablation():
    topology = fat_tree(4)
    policy = _guaranteed_fat_tree_policy(topology)
    rows = []
    for name, solver in (
        ("scipy-highs", ScipySolver()),
        ("branch-and-bound", BranchAndBoundSolver()),
    ):
        compiler = MerlinCompiler(
            topology=topology,
            overlap="trust",
            generate_code=False,
            options=ProvisionOptions(solver=solver),
        )
        result = compiler.compile(policy)
        rows.append(
            {
                "solver": name,
                "lp_solve_ms": result.statistics.lp_solve_seconds * 1000.0,
                "max_utilization": result.max_link_utilization(),
                "paths": len(result.paths),
            }
        )
    return rows


def test_ablation_solver_backends(benchmark, report):
    rows = benchmark.pedantic(_run_solver_ablation, rounds=1, iterations=1)
    report(
        "ablation_solvers",
        format_table(rows, ["solver", "lp_solve_ms", "max_utilization", "paths"],
                     title="Ablation: MIP solver backends on a fat-tree provisioning problem"),
    )
    # Both backends provision every guaranteed statement and respect capacity.
    assert all(row["paths"] == 6 for row in rows)
    assert all(row["max_utilization"] <= 1.0 + 1e-6 for row in rows)
    # Both reach the same optimal max-utilisation (they solve the same MIP).
    assert rows[0]["max_utilization"] == pytest.approx(
        rows[1]["max_utilization"], abs=0.02
    )


def _run_heuristic_ablation():
    topology = dumbbell()
    rows = []
    for heuristic in PathSelectionHeuristic:
        result = compile_policy(_FIG3_POLICY, topology, {}, heuristic=heuristic)
        total_hops = sum(
            assignment.hop_count()
            for name, assignment in result.paths.items()
            if name in ("a", "b")
        )
        rows.append(
            {
                "heuristic": heuristic.value,
                "total_hops": total_hops,
                "r_max": result.max_link_utilization(),
                "R_max_mbps": result.max_link_reservation().mbps_value,
            }
        )
    return rows


def _run_portfolio_ablation():
    """One row per registered backend name on the smoke fat-tree workload."""
    topology = fat_tree(4)
    policy = _guaranteed_fat_tree_policy(topology)
    names = ["scipy", "bnb", "heuristic", "auto"]
    if highs_available():
        names.insert(0, "highs")
    rows = []
    for name in names:
        compiler = MerlinCompiler(
            topology=topology,
            overlap="trust",
            generate_code=False,
            options=ProvisionOptions(solver=name),
        )
        result = compiler.compile(policy)
        rows.append(
            {
                "backend": name,
                "lp_solve_ms": result.statistics.lp_solve_seconds * 1000.0,
                "max_utilization": result.max_link_utilization(),
                "picked": ",".join(
                    sorted(set(result.statistics.component_backends))
                ),
            }
        )
    return rows


def test_ablation_portfolio(benchmark, report):
    rows = benchmark.pedantic(_run_portfolio_ablation, rounds=1, iterations=1)
    report(
        "ablation_portfolio",
        format_table(rows, ["backend", "lp_solve_ms", "max_utilization", "picked"],
                     title="Ablation: solver portfolio on the smoke fat-tree workload"),
    )
    by_name = {row["backend"]: row for row in rows}
    # Every backend — including the anytime heuristic — stays feasible.
    assert all(row["max_utilization"] <= 1.0 + 1e-6 for row in rows)
    # Heuristic vs exact: within the stated bound of the scipy optimum.
    assert by_name["heuristic"]["max_utilization"] <= (
        by_name["scipy"]["max_utilization"] + 0.25
    )
    # Auto vs fixed: the portfolio's short-circuit keeps its overhead small.
    # The 25 ms absolute grace absorbs timer noise on a workload where the
    # fixed backends themselves solve in single-digit milliseconds.
    fixed = [
        by_name[name] for name in ("highs", "scipy", "bnb") if name in by_name
    ]
    best_fixed_ms = min(row["lp_solve_ms"] for row in fixed)
    assert by_name["auto"]["lp_solve_ms"] <= 1.25 * best_fixed_ms + 25.0


#: The anytime demo needs a monolithic model large enough that the exact
#: pure-Python branch-and-bound takes over a second while the primal
#: heuristic stays under a hundred milliseconds.
_ANYTIME_STATEMENTS = 128
_ANYTIME_RATE = Bandwidth.mbps(25)


def _anytime_policy(topology):
    hosts = topology.host_names()
    count = len(hosts)
    statements, clauses = [], []
    for index in range(_ANYTIME_STATEMENTS):
        source = hosts[index % count]
        destination = hosts[(index + count // 2) % count]
        statements.append(
            f"g{index} : (eth.src = {topology.node(source).mac} and "
            f"eth.dst = {topology.node(destination).mac} and "
            f"tcp.dst = {8000 + index}) -> .*"
        )
        clauses.append(f"min(g{index}, {_ANYTIME_RATE.policy_literal()})")
    return "[ " + " ; ".join(statements) + " ], " + " and ".join(clauses)


def _compile_anytime(solver):
    topology = fat_tree(4)
    compiler = MerlinCompiler(
        topology=topology,
        overlap="trust",
        generate_code=False,
        options=ProvisionOptions(
            solver=solver, partition=False, footprint_slack=None
        ),
    )
    return topology, compiler.compile(_anytime_policy(topology))


def _simulator_satisfies_guarantees(topology, result):
    """Every guaranteed statement reaches its full rate in the simulator."""
    flows = []
    for identifier, allocation in sorted(result.rates.items()):
        if not allocation.is_guaranteed:
            continue
        assignment = result.paths.get(identifier)
        if assignment is None or len(assignment.path) < 2:
            continue
        guarantee = allocation.guarantee.bps_value
        flows.append(
            Flow(
                flow_id=identifier,
                path=assignment.path,
                demand_bps=guarantee,
                guarantee_bps=guarantee,
                statement_id=identifier,
            )
        )
    assert flows, "the anytime workload must produce guaranteed flows"
    simulator = FlowSimulator(SimulationNetwork(topology, result))
    for flow in flows:
        simulator.add_flow(flow)
    rates = simulator.current_rates()
    return all(
        rates.get(flow.flow_id, 0.0) >= flow.guarantee_bps * (1.0 - 1e-9)
        for flow in flows
    )


def _run_anytime_demo():
    # Best-of-three for the heuristic so one unlucky scheduler slice does
    # not mask its real latency; the exact solve is timed once.
    heuristic_seconds = float("inf")
    for _ in range(3):
        topology, heuristic = _compile_anytime("heuristic")
        heuristic_seconds = min(
            heuristic_seconds, heuristic.statistics.lp_solve_seconds
        )
    _, exact = _compile_anytime(BranchAndBoundSolver())
    exact_seconds = exact.statistics.lp_solve_seconds
    return {
        "topology": topology,
        "heuristic": heuristic,
        "exact": exact,
        "heuristic_seconds": heuristic_seconds,
        "exact_seconds": exact_seconds,
    }


def test_portfolio_anytime_heuristic_beats_exact_latency(benchmark, report):
    outcome = benchmark.pedantic(_run_anytime_demo, rounds=1, iterations=1)
    heuristic = outcome["heuristic"]
    exact = outcome["exact"]
    rows = [
        {
            "method": "heuristic",
            "lp_solve_ms": outcome["heuristic_seconds"] * 1000.0,
            "max_utilization": heuristic.max_link_utilization(),
        },
        {
            "method": "exact (branch-and-bound)",
            "lp_solve_ms": outcome["exact_seconds"] * 1000.0,
            "max_utilization": exact.max_link_utilization(),
        },
    ]
    report(
        "portfolio_anytime",
        format_table(rows, ["method", "lp_solve_ms", "max_utilization"],
                     title="Anytime primal heuristic vs exact solve "
                           f"({_ANYTIME_STATEMENTS} statements, fat-tree k=4)"),
    )
    # The heuristic's allocation is feasible and the fluid simulator
    # confirms every guarantee is actually delivered end to end.
    assert heuristic.max_link_utilization() <= 1.0 + 1e-6
    assert _simulator_satisfies_guarantees(outcome["topology"], heuristic)
    # The latency separation the backend exists for: under 100 ms against
    # an exact solve that is an order of magnitude slower on the same
    # model.  (Relative, not an absolute wall-clock floor: the exact
    # solve's time swings with machine load and CPU scaling, and this
    # guard is about the separation, not the hardware.)
    assert outcome["heuristic_seconds"] < 0.1
    assert outcome["exact_seconds"] > 5.0 * outcome["heuristic_seconds"]
    assert outcome["exact_seconds"] > 0.25
    # Near-optimal despite the speedup.
    assert heuristic.max_link_utilization() <= (
        exact.max_link_utilization() + 0.25
    )


def test_ablation_path_selection_heuristics(benchmark, report):
    rows = benchmark.pedantic(_run_heuristic_ablation, rounds=1, iterations=1)
    report(
        "ablation_heuristics",
        format_table(rows, ["heuristic", "total_hops", "r_max", "R_max_mbps"],
                     title="Ablation: path-selection heuristics on the Figure 3 dumbbell"),
    )
    by_name = {row["heuristic"]: row for row in rows}
    # Each heuristic optimises its own criterion (Figure 3).
    assert by_name["weighted-shortest-path"]["total_hops"] == min(
        row["total_hops"] for row in rows
    )
    assert by_name["min-max-ratio"]["r_max"] == min(row["r_max"] for row in rows)
    assert by_name["min-max-reserved"]["R_max_mbps"] == min(
        row["R_max_mbps"] for row in rows
    )
