"""Solve-fabric guard: content-cache speedup and pool-reuse wins.

Two contracts, both on the pod-tenant fat-tree workload (one bandwidth-
guaranteed tenant per pod, link-disjoint MIP components):

* **Warm >= 3x cold.**  A re-sweep against a populated
  :class:`~repro.fabric.ComponentSolutionCache` must run at least 3x
  faster than the cold sweep — every component is served from the
  content-addressed cache instead of building and solving its MIP — while
  reproducing the cold sweep's allocations byte for byte.

* **Persistent pool beats per-call spin-up.**  Reusing one
  :class:`~repro.fabric.SolveFabric` across a series of multi-component
  batches must be faster than creating and destroying a process pool per
  batch (what ``solve_partition_models`` did before the fabric existed).

``make check`` runs the tier-1 suite (which includes this file at quick
scale); ``make bench-fabric`` runs it alone and writes
``benchmarks/results/fabric.txt``.
"""

import time

from conftest import is_full_scale

from repro.core.compiler import MerlinCompiler
from repro.core.options import ProvisionOptions
from repro.experiments.reprovisioning import pod_tenant_scenario
from repro.fabric import ComponentSolutionCache, SolveFabric

#: The warm-cache re-sweep must be at least this many times faster.
WARM_SPEEDUP_FLOOR = 3.0

_POOL_BATCHES = 4
_POOL_PAYLOADS = 4


def _scenario():
    if is_full_scale():
        return pod_tenant_scenario(arity=8, pairs_per_pod=3)
    return pod_tenant_scenario(arity=4, pairs_per_pod=3)


def _timed_compile(scenario, cache):
    compiler = MerlinCompiler(
        topology=scenario.topology,
        overlap="trust",
        add_catch_all=False,
        generate_code=False,
        options=ProvisionOptions(component_cache=cache),
    )
    started = time.perf_counter()
    result = compiler.compile(scenario.policy)
    return time.perf_counter() - started, result


def _reservations(result):
    return {key: value.bps_value for key, value in result.link_reservations.items()}


def test_warm_cache_sweep_is_3x_faster_and_byte_identical(report):
    scenario = _scenario()
    cache = ComponentSolutionCache()
    cold_seconds, cold = _timed_compile(scenario, cache)
    stores = cache.stores
    warm_seconds, warm = _timed_compile(scenario, cache)

    assert stores > 0 and cache.hits == stores  # every component was served
    assert _reservations(warm) == _reservations(cold)
    assert {k: p.path for k, p in warm.paths.items()} == {
        k: p.path for k, p in cold.paths.items()
    }
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    report(
        "fabric",
        "\n".join(
            [
                f"workload: {scenario.topology.name}, "
                f"{len(scenario.policy.statements)} guaranteed statements, "
                f"{stores} MIP components",
                f"cold sweep: {cold_seconds * 1000.0:.1f} ms "
                f"({cache.misses} cache misses, {stores} stores)",
                f"warm sweep: {warm_seconds * 1000.0:.1f} ms "
                f"({cache.hits} cache hits, 0 solves)",
                f"speedup: {speedup:.2f}x (floor {WARM_SPEEDUP_FLOOR}x)",
                "allocations: byte-identical",
            ]
        ),
    )
    assert warm_seconds * WARM_SPEEDUP_FLOOR <= cold_seconds, (
        f"warm-cache sweep only {speedup:.2f}x faster than cold "
        f"(need >= {WARM_SPEEDUP_FLOOR}x): cold={cold_seconds:.4f}s "
        f"warm={warm_seconds:.4f}s"
    )


def _fabric_task(payload):
    return payload + 1


def test_persistent_pool_beats_per_call_spinup(report):
    payloads = list(range(_POOL_PAYLOADS))
    expected = [payload + 1 for payload in payloads]

    persistent = SolveFabric(max_workers=2, task=_fabric_task)
    try:
        assert persistent.solve(payloads) == expected  # spawn outside the clock
        started = time.perf_counter()
        for _ in range(_POOL_BATCHES):
            assert persistent.solve(payloads) == expected
        persistent_seconds = time.perf_counter() - started
        assert persistent.spawned == 1
    finally:
        persistent.shutdown()

    started = time.perf_counter()
    for _ in range(_POOL_BATCHES):
        throwaway = SolveFabric(max_workers=2, task=_fabric_task)
        try:
            assert throwaway.solve(payloads) == expected
        finally:
            throwaway.shutdown()
    spinup_seconds = time.perf_counter() - started

    report(
        "fabric_pool",
        "\n".join(
            [
                f"{_POOL_BATCHES} batches x {_POOL_PAYLOADS} payloads, 2 workers",
                f"persistent fabric: {persistent_seconds * 1000.0:.1f} ms "
                "(1 pool spawn total)",
                f"per-call spin-up:  {spinup_seconds * 1000.0:.1f} ms "
                f"({_POOL_BATCHES} pool spawns)",
                f"reuse advantage: {spinup_seconds / persistent_seconds:.2f}x",
            ]
        ),
    )
    assert persistent_seconds < spinup_seconds, (
        f"persistent fabric ({persistent_seconds:.4f}s) did not beat per-call "
        f"spin-up ({spinup_seconds:.4f}s)"
    )
