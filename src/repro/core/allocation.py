"""Result structures produced by the compiler.

These dataclasses carry the outcome of compilation from the provisioning and
code-generation stages back to callers: the forwarding path chosen for each
statement, where each packet-processing function was placed, the localized
bandwidth rates, the best-effort sink trees, the emitted instructions, and
timing statistics used by the scalability experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..units import Bandwidth
from .ast import Policy, Statement
from .localization import LocalRates


@dataclass
class PathAssignment:
    """The forwarding path selected for one statement.

    ``path`` is the sequence of physical locations the statement's traffic
    traverses (hosts, switches, middleboxes).  ``function_placements`` maps
    each packet-processing function mentioned in the statement's path
    expression to the location chosen to run it.
    """

    statement_id: str
    path: Tuple[str, ...]
    function_placements: Dict[str, str] = field(default_factory=dict)
    guaranteed_rate: Optional[Bandwidth] = None

    def links(self) -> List[Tuple[str, str]]:
        """The physical links traversed, as (u, v) pairs in path order.

        Consecutive repeats (a location appearing twice in a row, which the
        logical topology allows for "stay and process" steps) produce no
        link.
        """
        hops: List[Tuple[str, str]] = []
        for left, right in zip(self.path, self.path[1:]):
            if left != right:
                hops.append((left, right))
        return hops

    def hop_count(self) -> int:
        return len(self.links())

    def visits(self, location: str) -> bool:
        return location in self.path


@dataclass
class RateAllocation:
    """A statement's bandwidth allocation after localization and provisioning."""

    statement_id: str
    guarantee: Optional[Bandwidth] = None
    cap: Optional[Bandwidth] = None

    @property
    def is_guaranteed(self) -> bool:
        return self.guarantee is not None and self.guarantee.bps_value > 0

    @classmethod
    def from_local_rates(cls, rates: LocalRates) -> "RateAllocation":
        return cls(
            statement_id=rates.identifier, guarantee=rates.guarantee, cap=rates.cap
        )


@dataclass
class CompilationStatistics:
    """Timing and size statistics recorded during compilation.

    The field names follow the columns of Figure 7: LP construction time,
    LP solution time, and rateless (best-effort) solution time.  Additional
    counters record the sizes of the generated MIP and the solver's own
    diagnostics: ``solver_status`` distinguishes proven-optimal solves from
    time-limited ``"feasible"`` incumbents, whose remaining MIP gap is
    surfaced in ``mip_gap`` / ``mip_best_bound``.  ``num_partitions`` /
    ``dirty_partitions`` report how the provisioning MIP decomposed and how
    much of it an incremental recompile actually re-solved (for a full
    compile the two are equal).

    The slack-widening fields report the self-healing retries of the
    cost-bound footprint pruning: ``slack_retries`` counts widening rounds
    taken because pruning had excluded every surviving path from some
    component, and ``footprint_slack_used`` is the widest slack any
    component was ultimately solved at (``float('inf')`` encodes
    "untightened"; ``None`` means tightening never ran, e.g. a recompile
    with no guaranteed statements).  ``component_solve_seconds`` holds each
    final component's solver wall-time, in the provisioning result's
    component order, for per-component latency percentiles;
    ``component_backends`` names the backend that solved each component in
    the same order (the ``auto`` portfolio driver records its per-component
    winner, so a mixed tuple is normal), with a single entry for monolithic
    solves.
    """

    lp_construction_seconds: float = 0.0
    lp_solve_seconds: float = 0.0
    rateless_seconds: float = 0.0
    codegen_seconds: float = 0.0
    total_seconds: float = 0.0
    num_statements: int = 0
    num_guaranteed_statements: int = 0
    num_mip_variables: int = 0
    num_mip_constraints: int = 0
    solver_status: str = ""
    mip_nodes: float = 0.0
    mip_best_bound: Optional[float] = None
    mip_gap: Optional[float] = None
    num_partitions: int = 0
    dirty_partitions: int = 0
    slack_retries: int = 0
    footprint_slack_used: Optional[float] = None
    component_solve_seconds: Tuple[float, ...] = ()
    component_backends: Tuple[str, ...] = ()

    def record_provisioning(self, provisioning) -> None:
        """Copy solver diagnostics from a ``ProvisioningResult``."""
        self.solver_status = provisioning.solve_status
        statistics = provisioning.solve_statistics
        self.mip_nodes = float(statistics.get("nodes", 0.0))
        if "best_bound" in statistics:
            self.mip_best_bound = float(statistics["best_bound"])
        if "gap" in statistics:
            self.mip_gap = float(statistics["gap"])
        self.num_partitions = provisioning.num_partitions
        self.dirty_partitions = int(
            statistics.get("partitions_dirty", provisioning.num_partitions)
        )
        self.slack_retries = int(statistics.get("slack_retries", 0.0))
        if "footprint_slack_used" in statistics:
            self.footprint_slack_used = float(statistics["footprint_slack_used"])
        self.component_solve_seconds = tuple(
            solution.solve_seconds
            for solution in provisioning.partition_solutions
        )
        if provisioning.partition_solutions:
            self.component_backends = tuple(
                str(solution.statistics.get("backend", ""))
                for solution in provisioning.partition_solutions
            )
        elif "backend" in statistics:
            # Monolithic solve: one model, one backend.
            self.component_backends = (str(statistics["backend"]),)

    def as_row(self) -> Dict[str, object]:
        """The statistics as a flat dictionary (used by benchmark reporting)."""
        return {
            "lp_construction_ms": self.lp_construction_seconds * 1000.0,
            "lp_solve_ms": self.lp_solve_seconds * 1000.0,
            "rateless_ms": self.rateless_seconds * 1000.0,
            "codegen_ms": self.codegen_seconds * 1000.0,
            "total_ms": self.total_seconds * 1000.0,
            "statements": float(self.num_statements),
            "guaranteed_statements": float(self.num_guaranteed_statements),
            "mip_variables": float(self.num_mip_variables),
            "mip_constraints": float(self.num_mip_constraints),
            "solver_status": self.solver_status,
            "mip_nodes": self.mip_nodes,
            "mip_gap": self.mip_gap if self.mip_gap is not None else "",
            "partitions": float(self.num_partitions),
            "dirty_partitions": float(self.dirty_partitions),
            "slack_retries": float(self.slack_retries),
            "footprint_slack_used": (
                self.footprint_slack_used
                if self.footprint_slack_used is not None
                else ""
            ),
            "backends": ",".join(sorted(set(self.component_backends))),
        }


@dataclass
class CompilationResult:
    """Everything produced by compiling one policy against one topology."""

    policy: Policy
    paths: Dict[str, PathAssignment]
    rates: Dict[str, RateAllocation]
    sink_trees: Dict[str, "SinkTree"] = field(default_factory=dict)
    instructions: Optional["InstructionBundle"] = None
    statistics: CompilationStatistics = field(default_factory=CompilationStatistics)
    link_reservations: Dict[Tuple[str, str], Bandwidth] = field(default_factory=dict)

    def path_for(self, statement_id: str) -> Optional[PathAssignment]:
        """The path selected for a statement (``None`` for sink-tree traffic)."""
        return self.paths.get(statement_id)

    def rate_for(self, statement_id: str) -> Optional[RateAllocation]:
        return self.rates.get(statement_id)

    def guaranteed_statements(self) -> List[str]:
        """Identifiers of statements that received a bandwidth guarantee."""
        return [
            identifier
            for identifier, allocation in sorted(self.rates.items())
            if allocation.is_guaranteed
        ]

    def max_link_utilization(self) -> float:
        """The largest fraction of any link's capacity that is reserved (r_max)."""
        return max(
            (fraction for fraction in self._reservation_fractions().values()),
            default=0.0,
        )

    def max_link_reservation(self) -> Bandwidth:
        """The largest absolute reservation on any link (R_max)."""
        return max(
            self.link_reservations.values(), default=Bandwidth(0.0), key=lambda b: b.bps_value
        )

    def _reservation_fractions(self) -> Dict[Tuple[str, str], float]:
        fractions: Dict[Tuple[str, str], float] = {}
        for link, reserved in self.link_reservations.items():
            capacity = self._link_capacities.get(link) if hasattr(self, "_link_capacities") else None
            if capacity is None or capacity.bps_value == 0:
                continue
            fractions[link] = reserved.bps_value / capacity.bps_value
        return fractions

    def attach_link_capacities(self, capacities: Mapping[Tuple[str, str], Bandwidth]) -> None:
        """Record physical link capacities so utilisation fractions can be reported."""
        self._link_capacities = dict(capacities)
