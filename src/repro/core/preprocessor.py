"""Policy pre-processing (§2.1).

The core language requires that a policy's statements "have disjoint
predicates and together match all packets"; the paper notes these
requirements are "enforced by a simple pre-processor".  This module provides
that pre-processor:

* **Disjointness** — overlapping statements are either rejected or, in
  ``priority`` mode, rewritten so that each statement matches only the
  packets not claimed by an earlier statement (first-match-wins semantics).
* **Totality** — a catch-all statement matching the remaining packets with an
  unconstrained path (``.*``) and no bandwidth clause is appended when the
  statements do not already cover all packets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import PolicyError
from ..predicates.ast import TRUE, Predicate, PTrue, pred_and, pred_not, pred_or
from ..predicates.sat import find_overlapping_pairs, is_satisfiable
from ..regex.ast import any_path
from .ast import Policy, Statement

#: Identifier used for the generated catch-all statement.
DEFAULT_STATEMENT_ID = "default"


@dataclass
class PreprocessResult:
    """The pre-processed policy plus a description of what changed."""

    policy: Policy
    rewritten_statements: Tuple[str, ...] = ()
    added_default: bool = False


def preprocess(
    policy: Policy,
    overlap: str = "reject",
    add_catch_all: bool = True,
) -> PreprocessResult:
    """Enforce disjointness and totality on a policy.

    ``overlap`` selects how overlapping predicates are handled: ``"reject"``
    raises :class:`PolicyError`; ``"priority"`` subtracts each statement's
    predecessors from its predicate so that earlier statements win;
    ``"trust"`` skips the pairwise disjointness check entirely (used for
    machine-generated policies — e.g. all-pairs connectivity — that are
    disjoint by construction, where the quadratic check would dominate
    compilation time).
    """
    statements = list(policy.statements)
    rewritten: List[str] = []

    if overlap not in ("reject", "priority", "trust"):
        raise PolicyError(f"unknown overlap mode {overlap!r}")
    if overlap != "trust":
        pairs = find_overlapping_pairs(
            [statement.predicate for statement in statements]
        )
        if pairs:
            if overlap == "reject":
                conflicts = ", ".join(
                    f"({statements[i].identifier}, {statements[j].identifier})"
                    for i, j in pairs
                )
                raise PolicyError(
                    f"statements have overlapping predicates: {conflicts}; "
                    "re-run with overlap='priority' to apply first-match-wins rewriting"
                )
            statements, rewritten = _apply_priority(statements)

    added_default = False
    if add_catch_all:
        # The catch-all's predicate is the negation of everything already
        # matched.  Deciding whether that remainder is satisfiable exactly
        # would require expanding a conjunction of negated conjunctions
        # (exponential in the number of statements), so the pre-processor only
        # skips the catch-all in the trivially-total case where some statement
        # already matches all packets; otherwise an (at worst dead) catch-all
        # statement is appended, which is harmless.
        already_total = any(
            isinstance(statement.predicate, PTrue) for statement in statements
        )
        if not already_total:
            remainder = (
                pred_and(*[pred_not(statement.predicate) for statement in statements])
                if statements
                else TRUE
            )
            if any(s.identifier == DEFAULT_STATEMENT_ID for s in statements):
                raise PolicyError(
                    f"cannot add catch-all: identifier {DEFAULT_STATEMENT_ID!r} already used"
                )
            statements.append(
                Statement(
                    identifier=DEFAULT_STATEMENT_ID,
                    predicate=remainder,
                    path=any_path(),
                )
            )
            added_default = True

    processed = Policy(statements=tuple(statements), formula=policy.formula)
    return PreprocessResult(
        policy=processed,
        rewritten_statements=tuple(rewritten),
        added_default=added_default,
    )


def _apply_priority(
    statements: Sequence[Statement],
) -> Tuple[List[Statement], List[str]]:
    """First-match-wins rewriting: subtract earlier predicates from later ones."""
    result: List[Statement] = []
    rewritten: List[str] = []
    earlier: List[Predicate] = []
    for statement in statements:
        if earlier:
            narrowed = pred_and(
                statement.predicate, pred_not(pred_or(*earlier))
            )
        else:
            narrowed = statement.predicate
        if narrowed is not statement.predicate:
            rewritten.append(statement.identifier)
        if not is_satisfiable(narrowed):
            raise PolicyError(
                f"statement {statement.identifier!r} is completely shadowed by "
                "earlier statements"
            )
        result.append(
            Statement(
                identifier=statement.identifier,
                predicate=narrowed,
                path=statement.path,
            )
        )
        earlier.append(statement.predicate)
    return result, rewritten
