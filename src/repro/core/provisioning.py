"""Bandwidth provisioning for guaranteed traffic (§3.2).

Statements whose localized rates include a guarantee are provisioned by
solving a mixed-integer program over the union of their logical topologies —
a single-path multi-commodity-flow variant:

* one {0,1} decision variable ``x_e`` per logical edge (Equation 1 enforces
  a single source-to-sink path per statement via flow conservation),
* one continuous variable ``r_uv`` per physical link for the fraction of its
  capacity reserved (Equation 2),
* ``r_max`` / ``R_max`` tracking the maximum reserved fraction / amount on
  any link (Equations 3 and 4), with ``r_max <= 1`` guaranteeing that no
  link is over-subscribed (Equation 5).

Three optimisation criteria are supported (Figure 3): weighted shortest
path, min-max ratio, and min-max reserved.

Construction pipeline
---------------------
The MIP is assembled in a single indexed pass (:func:`build_provisioning_model`):
each statement's logical edges are walked exactly once, creating the binary
edge variable, bucketing it by source/target vertex (for the Equation-1 flow
balances) and by ``tuple(sorted(edge.physical_link))`` (for the Equation-2
reservation rows).  Reservation constraints are then emitted per physical
link straight from the bucket, so construction costs O(S·E + L) instead of
the naive O(S·E·L) rescan of every statement's edges for every link.  All
loop-grown expressions use the in-place :meth:`~repro.lp.expr.LinExpr.add_term`
accumulation API rather than the copying ``+`` operator.

:class:`ProvisioningResult` reports construction and solve time separately
(``lp_construction_seconds`` / ``lp_solve_seconds``) so the Figure 8 scaling
benchmark can attribute compile time to model building vs the MIP solver.

Partitioned solving
-------------------
Statements are coupled only through the per-link reservation rows, so the
MIP decomposes exactly along connected components of the "shares a physical
link" relation.  :func:`provision` therefore partitions the statements by
their logical topologies' link footprints (union-find, in
:mod:`repro.incremental.partition`), builds one sub-model per component with
:func:`build_model_for_links`, solves the components independently, and
merges the reservations — the same decomposition the incremental
re-provisioning engine (:mod:`repro.incremental.engine`) re-solves
selectively at run time.  Within a component the min-max objectives are
unchanged; across components the merged solution minimises every
component's bottleneck (a per-component lexicographic strengthening of the
global min-max criterion).  Pass ``partition=False`` to solve the single
monolithic model instead.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .. import telemetry
from ..errors import ProvisioningError
from ..lp.backends import backend_name
from ..lp.constraint import Constraint
from ..lp.expr import LinExpr, Variable
from ..lp.model import Model, Objective
from ..regex.ast import Regex, Symbol
from ..regex.substitution import functions_used
from ..topology.graph import Topology
from ..units import Bandwidth
from .allocation import PathAssignment
from .ast import Statement
from .localization import LocalRates
from .logical import SINK, SOURCE, LogicalEdge, LogicalTopology

from .options import (  # noqa: F401  (re-exported for compatibility)
    _UNSET,
    DEFAULT_FOOTPRINT_SLACK,
    ProvisionOptions,
    coalesce_options,
)

#: Rates are expressed in Mbps inside the MIP to keep coefficients well-scaled.
_MBPS = 1e6


def _stamp_backend(statistics: Dict[str, float], solver) -> Dict[str, float]:
    """Record which backend produced a solve's statistics.

    The ``auto`` portfolio driver stamps its winner itself; fixed backends
    get their declared capability-protocol name.
    """
    statistics.setdefault("backend", backend_name(solver))
    return statistics


class PathSelectionHeuristic(enum.Enum):
    """The optimisation criterion used to break ties among feasible assignments."""

    WEIGHTED_SHORTEST_PATH = "weighted-shortest-path"
    MIN_MAX_RATIO = "min-max-ratio"
    MIN_MAX_RESERVED = "min-max-reserved"


@dataclass
class ProvisioningResult:
    """The outcome of the guaranteed-traffic provisioning stage.

    ``solve_status`` is the aggregated solver outcome (``"optimal"`` unless
    some partition stopped on a limit with an unproven incumbent, in which
    case it is ``"feasible"``), and ``solve_statistics`` carries aggregated
    MIP diagnostics (``nodes``, ``best_bound``, ``gap``, partition counts)
    for the benchmark tables.  ``partition_solutions`` retains the
    per-component solutions so an incremental engine can be seeded from a
    full compile without re-solving anything.
    """

    paths: Dict[str, PathAssignment]
    link_reservations: Dict[Tuple[str, str], Bandwidth]
    max_utilization: float
    max_reservation: Bandwidth
    lp_construction_seconds: float
    lp_solve_seconds: float
    num_variables: int
    num_constraints: int
    solve_status: str = "optimal"
    solve_statistics: Dict[str, float] = field(default_factory=dict)
    num_partitions: int = 0
    partition_solutions: List["PartitionSolution"] = field(
        default_factory=list, repr=False
    )
    #: (member ids, member slacks) combinations proven infeasible along the
    #: slack-widening ladder; seeding an incremental engine with these (via
    #: ``IncrementalProvisioner.prime``) lets its first resolve skip the
    #: hopeless rungs instead of re-proving them.
    infeasible_components: List[Tuple[Tuple[str, ...], Tuple[Optional[int], ...]]] = (
        field(default_factory=list, repr=False)
    )


def provision(
    statements: Sequence[Statement],
    logical_topologies: Mapping[str, LogicalTopology],
    rates: Mapping[str, LocalRates],
    topology: Topology,
    placements: Mapping[str, Iterable[str]],
    heuristic: PathSelectionHeuristic = PathSelectionHeuristic.MIN_MAX_RATIO,
    options: Optional[ProvisionOptions] = None,
    solver=_UNSET,
    partition=_UNSET,
    max_workers=_UNSET,
    footprint_slack=_UNSET,
) -> ProvisioningResult:
    """Select paths and reserve bandwidth for the guaranteed statements.

    ``statements`` must all have a guarantee in ``rates`` and a pre-built
    logical topology in ``logical_topologies``.  Raises
    :class:`ProvisioningError` when no assignment satisfies the constraints
    (for example, when the requested guarantees exceed every allowed path's
    capacity).

    Solver and decomposition behaviour is configured through ``options``
    (a :class:`~repro.core.options.ProvisionOptions`); the individual
    ``solver`` / ``partition`` / ``max_workers`` / ``footprint_slack``
    keywords are deprecated aliases for the matching option fields.

    With partitioning enabled (the default) the MIP is decomposed into
    link-disjoint components solved independently (``options.max_workers``
    > 1 solves them in a process pool), after each statement's logical
    topology is tightened to its cost-bounded subgraph
    (``options.footprint_slack`` extra physical hops over the statement's
    optimum; ``None`` disables tightening); components infeasible under
    tightening retry with geometrically widened slack when
    ``options.widen_slack`` is set.  ``partition=False`` keeps the single
    monolithic, untightened model.
    """
    options = coalesce_options(
        options,
        owner="provision()",
        solver=solver,
        partition=partition,
        max_workers=max_workers,
        footprint_slack=footprint_slack,
    )
    if not statements:
        return ProvisioningResult(
            paths={},
            link_reservations={},
            max_utilization=0.0,
            max_reservation=Bandwidth(0.0),
            lp_construction_seconds=0.0,
            lp_solve_seconds=0.0,
            num_variables=0,
            num_constraints=0,
        )
    if options.partition:
        # Imported lazily: repro.incremental builds on this module.
        from ..incremental.solve import provision_partitioned

        return provision_partitioned(
            statements,
            logical_topologies,
            rates,
            topology,
            placements,
            heuristic=heuristic,
            options=options,
        )

    solver = options.backend()
    with telemetry.span("build_model", statements=len(statements)) as build_span:
        built = build_provisioning_model(
            statements, logical_topologies, rates, topology, heuristic=heuristic
        )
        model = built.model
        edge_variables = built.edge_variables
        reservation_fraction = built.reservation_fraction
        links = topology.links()
    lp_construction_seconds = build_span.duration

    with telemetry.span("monolithic_solve") as solve_span:
        result = model.solve(solver)
        solve_span.annotate(
            backend=str(result.statistics.get("backend", backend_name(solver))),
            status=result.status.value,
        )
    lp_solve_seconds = solve_span.duration
    if not result.status.has_solution:
        raise ProvisioningError(
            "bandwidth provisioning is infeasible: the requested guarantees "
            f"cannot be satisfied (solver status: {result.status.value})"
        )

    paths: Dict[str, PathAssignment] = {}
    for statement in statements:
        logical = logical_topologies[statement.identifier]
        selected = [
            logical.edges[index]
            for index, variable in edge_variables[statement.identifier].items()
            if result.value_of(variable) > 0.5
        ]
        location_path = _extract_path(selected)
        placements_for_statement = _assign_functions(
            statement.path, location_path, placements, topology
        )
        paths[statement.identifier] = PathAssignment(
            statement_id=statement.identifier,
            path=tuple(location_path),
            function_placements=placements_for_statement,
            guaranteed_rate=rates[statement.identifier].guarantee,
        )

    link_reservations: Dict[Tuple[str, str], Bandwidth] = {}
    max_utilization = 0.0
    max_reservation = Bandwidth(0.0)
    for link in links:
        key = tuple(sorted((link.source, link.target)))
        fraction = result.value_of(reservation_fraction[key])
        reserved = Bandwidth(max(0.0, fraction) * link.capacity.bps_value)
        link_reservations[key] = reserved
        max_utilization = max(max_utilization, fraction)
        if reserved.bps_value > max_reservation.bps_value:
            max_reservation = reserved

    return ProvisioningResult(
        paths=paths,
        link_reservations=link_reservations,
        max_utilization=max_utilization,
        max_reservation=max_reservation,
        lp_construction_seconds=lp_construction_seconds,
        lp_solve_seconds=lp_solve_seconds,
        num_variables=model.num_variables(),
        num_constraints=model.num_constraints(),
        solve_status=result.status.value,
        solve_statistics=_stamp_backend(dict(result.statistics), solver),
        num_partitions=1,
    )


@dataclass
class ProvisioningModel:
    """The assembled MIP plus the variable indexes needed to read a solution.

    ``reserve_rows`` keeps the Equation-2 constraint handle of every link so
    incremental callers can splice statement terms in and out of the rows,
    and ``logical_topologies`` records each member statement's product graph
    so a solution can be decoded into location paths without re-supplying
    the construction inputs.
    """

    model: Model
    edge_variables: Dict[str, Dict[int, Variable]]
    reservation_fraction: Dict[Tuple[str, str], Variable]
    r_max: Variable
    big_r_max: Variable
    reserve_rows: Dict[Tuple[str, str], "Constraint"] = field(default_factory=dict)
    logical_topologies: Dict[str, LogicalTopology] = field(default_factory=dict)


def build_provisioning_model(
    statements: Sequence[Statement],
    logical_topologies: Mapping[str, LogicalTopology],
    rates: Mapping[str, LocalRates],
    topology: Topology,
    heuristic: PathSelectionHeuristic = PathSelectionHeuristic.MIN_MAX_RATIO,
) -> ProvisioningModel:
    """Assemble the full provisioning MIP over every physical link.

    This is the monolithic entry point: reservation rows are emitted for the
    whole topology in ``topology.links()`` order.  The partitioned pipeline
    calls :func:`build_model_for_links` directly with each component's link
    subset instead.
    """
    links = [
        (
            tuple(sorted((link.source, link.target))),
            link.capacity.bps_value / _MBPS,
        )
        for link in topology.links()
    ]
    return build_model_for_links(
        statements, logical_topologies, rates, links, heuristic=heuristic
    )


def splice_statement_rows(
    model: Model, statement: Statement, logical: LogicalTopology
) -> Tuple[Dict[int, Variable], List[Constraint], Dict[Tuple[str, str], List[Variable]]]:
    """Create one statement's binary edge variables and Equation-1 flow rows.

    The single per-statement construction shared by the batch builder
    (:func:`build_model_for_links`) and the incremental engine's lazy
    live-model materialization: variable naming (``x__{id}__{index}``),
    flow-row naming (``flow__{id}__{vertex}``), and emission order must
    stay identical for the splice-equivalence guarantee (and
    cached-component reuse) to hold.  The edge-variable name format is
    also relied on by ``IncrementalProvisioner.remove_statement``, which
    prunes a removed statement's warm-start incumbents by reconstructing
    these names — change the format in both places or stale incumbents
    survive removal.
    Returns ``(edge variables by index, flow-row constraints, variables
    bucketed by the undirected physical link they map onto)`` — the caller
    turns the link buckets into Equation-2 reservation terms.
    """
    identifier = statement.identifier
    variables: Dict[int, Variable] = {}
    outgoing: Dict[object, LinExpr] = {}
    touched: Dict[Tuple[str, str], List[Variable]] = {}
    for index, edge in enumerate(logical.edges):
        variable = model.add_binary(f"x__{identifier}__{index}")
        variables[index] = variable
        outgoing.setdefault(edge.source, LinExpr()).add_term(variable, 1.0)
        outgoing.setdefault(edge.target, LinExpr()).add_term(variable, -1.0)
        if edge.physical_link is not None:
            touched.setdefault(tuple(sorted(edge.physical_link)), []).append(
                variable
            )
    flow_rows: List[Constraint] = []
    for vertex in logical.vertices:
        if vertex == SOURCE:
            balance = 1.0
        elif vertex == SINK:
            balance = -1.0
        else:
            balance = 0.0
        flow_rows.append(
            model.add_constraint(
                outgoing.get(vertex, LinExpr()).equals(balance),
                name=f"flow__{identifier}__{vertex[0]}_{vertex[1]}",
            )
        )
    return variables, flow_rows, touched


def build_model_for_links(
    statements: Sequence[Statement],
    logical_topologies: Mapping[str, LogicalTopology],
    rates: Mapping[str, LocalRates],
    links: Sequence[Tuple[Tuple[str, str], float]],
    heuristic: PathSelectionHeuristic = PathSelectionHeuristic.MIN_MAX_RATIO,
) -> ProvisioningModel:
    """Assemble the provisioning MIP with a one-pass indexed construction.

    Each statement's logical edges are enumerated exactly once; the pass
    creates the edge's binary variable and buckets it three ways — by source
    vertex, by target vertex (both feed the Equation-1 flow balances), and by
    the undirected physical link it maps onto (feeding the Equation-2
    reservation row of that link).  Emitting constraints from the buckets
    makes construction O(S·E + L) in the number of statements S, logical
    edges per statement E, and physical links L.

    ``links`` is the sequence of ``(link key, capacity in Mbps)`` pairs to
    emit reservation rows for — the whole topology for a monolithic build,
    or one partition's footprint for a component sub-model.  The model (and
    hence the solver's input) is a deterministic function of the statement
    order and the link order, which is what lets the incremental engine
    reuse cached component solutions: rebuilding an unchanged component in
    canonical order yields a byte-identical model.
    """
    model = Model(name="merlin-provisioning")
    edge_variables: Dict[str, Dict[int, Variable]] = {}
    # (variable, guarantee_mbps) terms of each physical link's Equation 2.
    link_terms: Dict[Tuple[str, str], List[Tuple[Variable, float]]] = {}

    # Per-statement edge variables and flow conservation (Equation 1).
    for statement in statements:
        logical = logical_topologies[statement.identifier]
        if logical.num_edges() == 0:
            raise ProvisioningError(
                f"statement {statement.identifier!r} has no feasible path "
                "satisfying its path expression"
            )
        guarantee = rates[statement.identifier].guarantee
        guarantee_mbps = (
            guarantee.bps_value / _MBPS if guarantee is not None else None
        )
        variables, _, touched = splice_statement_rows(model, statement, logical)
        edge_variables[statement.identifier] = variables
        if guarantee_mbps is not None:
            for link_key, link_variables in touched.items():
                link_terms.setdefault(link_key, []).extend(
                    (variable, guarantee_mbps) for variable in link_variables
                )

    # Link reservation variables and Equations 2-5.
    r_max, big_r_max, reservation_fraction, reserve_rows, max_capacity_mbps = (
        emit_link_rows(model, links, link_terms)
    )

    set_provisioning_objective(
        model,
        statements,
        logical_topologies,
        rates,
        edge_variables,
        r_max,
        big_r_max,
        heuristic,
        max_capacity_mbps,
    )

    return ProvisioningModel(
        model=model,
        edge_variables=edge_variables,
        reservation_fraction=reservation_fraction,
        r_max=r_max,
        big_r_max=big_r_max,
        reserve_rows=reserve_rows,
        logical_topologies={
            statement.identifier: logical_topologies[statement.identifier]
            for statement in statements
        },
    )


def emit_link_rows(
    model: Model,
    links: Sequence[Tuple[Tuple[str, str], float]],
    link_terms: Mapping[Tuple[str, str], Sequence[Tuple[Variable, float]]],
) -> Tuple[
    Variable,
    Variable,
    Dict[Tuple[str, str], Variable],
    Dict[Tuple[str, str], Constraint],
    float,
]:
    """Create ``r_max`` / ``R_max`` and every link's Equation 2-4 rows.

    ``link_terms`` maps a link key to its ``(edge variable, guarantee Mbps)``
    pairs — the indexed construction's per-link buckets (empty for the
    incremental engine's initially statement-free live model; its splice
    operations grow the returned rows in place afterwards).  Returns
    ``(r_max, R_max, reservation fractions, reservation row handles,
    largest link capacity in Mbps)``.  Both the one-shot build and the live
    model emit their rows through this single function, so the two can
    never drift apart in naming or shape.
    """
    reservation_fraction: Dict[Tuple[str, str], Variable] = {}
    reserve_rows: Dict[Tuple[str, str], Constraint] = {}
    r_max = model.add_continuous("r_max", lower=0.0, upper=1.0)
    big_r_max = model.add_continuous("R_max", lower=0.0)
    max_capacity_mbps = 0.0
    for key, capacity_mbps in links:
        max_capacity_mbps = max(max_capacity_mbps, capacity_mbps)
        r_uv = model.add_continuous(f"r__{key[0]}__{key[1]}", lower=0.0, upper=1.0)
        reservation_fraction[key] = r_uv
        # Equation 2: r_uv * c_uv = sum of reserved guarantees on the link,
        # emitted straight from the link's bucket.
        reserve = LinExpr.weighted_sum(
            (variable, -guarantee_mbps)
            for variable, guarantee_mbps in link_terms.get(key, ())
        ).add_term(r_uv, capacity_mbps)
        reserve_rows[key] = model.add_constraint(
            reserve.equals(0.0), name=f"reserve__{key[0]}__{key[1]}"
        )
        # Equation 3: r_max >= r_uv.
        model.add_constraint(r_max - r_uv >= 0.0, name=f"rmax__{key[0]}__{key[1]}")
        # Equation 4: R_max >= r_uv * c_uv.
        model.add_constraint(
            big_r_max - r_uv * capacity_mbps >= 0.0,
            name=f"Rmax__{key[0]}__{key[1]}",
        )
    # Equation 5 is expressed through the [0, 1] bound on r_max and r_uv.
    return r_max, big_r_max, reservation_fraction, reserve_rows, max_capacity_mbps


def set_provisioning_objective(
    model: Model,
    statements: Sequence[Statement],
    logical_topologies: Mapping[str, LogicalTopology],
    rates: Mapping[str, LocalRates],
    edge_variables: Mapping[str, Mapping[int, Variable]],
    r_max: Variable,
    big_r_max: Variable,
    heuristic: PathSelectionHeuristic,
    max_capacity_mbps: float,
) -> None:
    """(Re)set the path-selection objective on a provisioning model.

    Shared between the one-shot build and the incremental engine's live
    model, whose tiebreaker magnitudes must be refreshed after deltas (both
    the per-edge epsilon and the guarantee quantum depend on the statement
    population).

    For the min-max heuristics the per-edge tiebreaker epsilon is also
    published as :attr:`~repro.lp.model.Model.objective_resolution` — the
    smallest objective difference that distinguishes two genuinely
    different solutions.  Solvers that prune within an absolute gap (the
    pure-Python branch-and-bound) scale their gap below it, so a
    warm-started re-solve seeded with an equal-``r_max`` incumbent still
    discovers the marginally-cheaper-tiebreaker optimum a cold solve would
    pick: warm and cold solves coincide even on components whose epsilon
    falls under the solver's default gap (>~1000 logical edges).
    """
    if heuristic is PathSelectionHeuristic.WEIGHTED_SHORTEST_PATH:
        objective = LinExpr()
        for statement in statements:
            guarantee = rates[statement.identifier].guarantee
            weight = (guarantee.bps_value / _MBPS) if guarantee else 1.0
            logical = logical_topologies[statement.identifier]
            variables = edge_variables[statement.identifier]
            for index, edge in enumerate(logical.edges):
                if edge.physical_link is not None:
                    objective.add_term(variables[index], weight)
        model.minimize(objective)
        model.objective_resolution = None
    elif heuristic is PathSelectionHeuristic.MIN_MAX_RATIO:
        # Genuine r_max optima differ by at least the smallest guarantee as
        # a fraction of the largest capacity; cap the total tiebreaker below
        # that quantum so it can never outweigh a real utilization
        # improvement (and below 1e-3 regardless, r_max being a fraction).
        quantum = (
            _guarantee_quantum_mbps(statements, rates) / max_capacity_mbps
            if max_capacity_mbps > 0.0
            else 1.0
        )
        magnitude = min(1e-3, quantum)
        tiebreaker = _edge_tiebreaker(edge_variables, magnitude=magnitude)
        model.minimize(tiebreaker.add_term(r_max, 1.0))
        model.objective_resolution = _tiebreaker_epsilon(edge_variables, magnitude)
    elif heuristic is PathSelectionHeuristic.MIN_MAX_RESERVED:
        # R_max is in Mbps; genuine optima differ by (combinations of) the
        # statement guarantees, so keep the total penalty three orders of
        # magnitude below the smallest one.
        magnitude = _guarantee_quantum_mbps(statements, rates) * 1e-3
        tiebreaker = _edge_tiebreaker(edge_variables, magnitude=magnitude)
        model.minimize(tiebreaker.add_term(big_r_max, 1.0))
        model.objective_resolution = _tiebreaker_epsilon(edge_variables, magnitude)
    else:  # pragma: no cover - the enum is exhaustive
        raise ProvisioningError(f"unknown heuristic {heuristic!r}")


def _guarantee_quantum_mbps(
    statements: Sequence[Statement], rates: Mapping[str, LocalRates]
) -> float:
    """The smallest guarantee (Mbps) among the statements — the step size by
    which reservation objectives can genuinely differ (1.0 when none)."""
    guarantees_mbps = [
        rates[statement.identifier].guarantee.bps_value / _MBPS
        for statement in statements
        if rates[statement.identifier].guarantee is not None
    ]
    return min(guarantees_mbps) if guarantees_mbps else 1.0


def _tiebreaker_epsilon(
    edge_variables: Mapping[str, Mapping[int, Variable]], magnitude: float
) -> float:
    """The per-edge tiebreaker coefficient — the model's objective resolution."""
    total_edges = sum(len(variables) for variables in edge_variables.values())
    return magnitude / (total_edges + 1)


def _edge_tiebreaker(
    edge_variables: Mapping[str, Mapping[int, Variable]], magnitude: float = 1e-3
) -> LinExpr:
    """A tiny penalty on every selected edge.

    The min-max objectives are indifferent to how many edges a statement
    uses, so without a tiebreaker the MIP may return a path plus spurious
    disconnected cycles (which satisfy flow conservation).  A negligible
    per-edge cost removes them without affecting the min-max optimum.

    The per-edge epsilon is ``magnitude / (total_edges + 1)``
    (:func:`_tiebreaker_epsilon`), so the total penalty stays strictly
    below ``magnitude`` even if every edge were selected; callers pass a
    magnitude below the smallest genuine objective difference (the
    guarantee quantum).  (A fixed per-edge epsilon would grow linearly with
    the number of selected edges and, on topologies with thousands of
    logical edges, could exceed genuine objective differences and distort
    the min-max optimum; an epsilon much further below the quantum would
    fall under the solver's tolerances and stop suppressing cycles.)
    """
    epsilon = _tiebreaker_epsilon(edge_variables, magnitude)
    return LinExpr.weighted_sum(
        (variable, epsilon)
        for variables in edge_variables.values()
        for variable in variables.values()
    )


def _extract_path(selected_edges: Sequence[LogicalEdge]) -> List[str]:
    """Reconstruct the location sequence from the selected logical edges."""
    by_source = {edge.source: edge for edge in selected_edges}
    locations: List[str] = []
    vertex = SOURCE
    visited = set()
    while vertex != SINK:
        if vertex in visited:
            raise ProvisioningError("MIP solution contains a cycle; cannot extract path")
        visited.add(vertex)
        edge = by_source.get(vertex)
        if edge is None:
            raise ProvisioningError("MIP solution does not form a source-to-sink path")
        if edge.target != SINK:
            locations.append(edge.location)
        vertex = edge.target
    return locations


def _assign_functions(
    path_expression: Regex,
    location_path: Sequence[str],
    placements: Mapping[str, Iterable[str]],
    topology: Topology,
) -> Dict[str, str]:
    """Choose which location on the path hosts each packet-processing function.

    Function occurrences are assigned greedily in the order they appear in
    the path expression, scanning the location path left to right; a location
    may serve several consecutive functions (the logical topology's "stay"
    edges make it appear multiple times in the path).
    """
    functions = functions_used(path_expression, topology.locations())
    if not functions:
        return {}
    occurrences = _function_occurrences(path_expression, functions)
    assignments: Dict[str, str] = {}
    cursor = 0
    for function in occurrences:
        candidates = set(placements.get(function, ()))
        for index in range(cursor, len(location_path)):
            if location_path[index] in candidates:
                assignments[function] = location_path[index]
                cursor = index
                break
        else:
            # Fall back to any candidate on the path (ordering could not be
            # respected, which can happen when the MIP path revisits nodes).
            for location in location_path:
                if location in candidates:
                    assignments.setdefault(function, location)
                    break
    return assignments


def _function_occurrences(expression: Regex, functions) -> List[str]:
    """Function names in left-to-right order of appearance in the expression."""
    ordered: List[str] = []

    def walk(node: Regex) -> None:
        if isinstance(node, Symbol):
            if node.name in functions and node.name not in ordered:
                ordered.append(node.name)
            return
        for child in node.children():
            walk(child)

    walk(expression)
    return ordered
