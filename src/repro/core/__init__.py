"""The Merlin policy language and compiler — the paper's primary contribution.

The public entry points are:

* :func:`repro.core.parser.parse_policy` — parse Merlin policy source
  (including the set/``foreach`` syntactic sugar) into a :class:`Policy`,
* :class:`repro.core.compiler.MerlinCompiler` / :func:`compile_policy` —
  compile a policy against a topology and a function-placement mapping into
  paths, bandwidth allocations, and per-device instructions,
* the AST types in :mod:`repro.core.ast` for building policies
  programmatically.
"""

from .ast import (
    FAnd,
    FNot,
    FOr,
    Formula,
    FMax,
    FMin,
    FTrue,
    BandwidthTerm,
    Policy,
    Statement,
)
from .allocation import CompilationResult, PathAssignment, RateAllocation
from .compiler import MerlinCompiler, compile_policy
from .localization import LocalRates, localize
from .logical import LogicalTopology, build_logical_topology
from .options import DEFAULT_FOOTPRINT_SLACK, MAX_WIDENED_SLACK, ProvisionOptions
from .parser import parse_policy
from .preprocessor import preprocess
from .provisioning import PathSelectionHeuristic, provision
from .session import ProvisioningSession, Session
from .sink_tree import SinkTree, compute_sink_tree, compute_sink_trees

__all__ = [
    "FAnd",
    "FNot",
    "FOr",
    "Formula",
    "FMax",
    "FMin",
    "FTrue",
    "BandwidthTerm",
    "Policy",
    "Statement",
    "CompilationResult",
    "PathAssignment",
    "RateAllocation",
    "MerlinCompiler",
    "compile_policy",
    "DEFAULT_FOOTPRINT_SLACK",
    "MAX_WIDENED_SLACK",
    "ProvisionOptions",
    "ProvisioningSession",
    "Session",
    "LocalRates",
    "localize",
    "LogicalTopology",
    "build_logical_topology",
    "parse_policy",
    "preprocess",
    "PathSelectionHeuristic",
    "provision",
    "SinkTree",
    "compute_sink_tree",
    "compute_sink_trees",
]
