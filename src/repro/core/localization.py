"""Localization of bandwidth formulas (§3.1).

Aggregate Presburger terms such as ``max(x + y, 50MB/s)`` would require
distributed state to enforce exactly.  Merlin therefore rewrites each
aggregate clause into per-statement *local* clauses that collectively imply
the original: by default the rate is divided equally among the identifiers
(the running example's ``max(x + y, 50MB/s)`` becomes ``max(x, 25MB/s) and
max(y, 25MB/s)``), but callers may supply their own split weights.  The
negotiators of §4 later adjust these static splits at run time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence

from ..errors import PolicyError
from ..units import Bandwidth
from .ast import (
    FAnd,
    FMax,
    FMin,
    FNot,
    FOr,
    Formula,
    FTrue,
    Policy,
    formula_clauses,
)


@dataclass
class LocalRates:
    """The localized bandwidth constraints of a single statement.

    ``guarantee`` is the statement's minimum reserved rate (``r_i_min`` in
    the MIP; ``None`` means best-effort).  ``cap`` is the statement's maximum
    rate (``None`` means it may burst to line rate).
    """

    identifier: str
    guarantee: Optional[Bandwidth] = None
    cap: Optional[Bandwidth] = None

    @property
    def is_guaranteed(self) -> bool:
        return self.guarantee is not None and self.guarantee.bps_value > 0

    def merge_cap(self, rate: Bandwidth) -> None:
        """Keep the most restrictive (smallest) cap."""
        if self.cap is None or rate < self.cap:
            self.cap = rate

    def merge_guarantee(self, rate: Bandwidth) -> None:
        """Keep the strongest (largest) guarantee."""
        if self.guarantee is None or rate > self.guarantee:
            self.guarantee = rate


def localize(
    policy: Policy,
    weights: Optional[Mapping[str, float]] = None,
) -> Dict[str, LocalRates]:
    """Localize the policy formula into per-statement rates.

    ``weights`` optionally assigns a relative share to each statement
    identifier; identifiers absent from the mapping get weight 1.  The
    default (no weights) splits every aggregate clause equally, as described
    in §3.1.

    Only conjunctions of ``max``/``min`` clauses can be enforced locally;
    ``or`` and ``!`` at the top level are rejected, mirroring the fragment
    the paper's compiler supports.
    """
    rates: Dict[str, LocalRates] = {
        statement.identifier: LocalRates(identifier=statement.identifier)
        for statement in policy.statements
    }
    for clause in formula_clauses(policy.formula):
        _localize_clause(clause, rates, weights or {})
    return rates


def _localize_clause(
    clause: Formula, rates: Dict[str, LocalRates], weights: Mapping[str, float]
) -> None:
    if isinstance(clause, FTrue):
        return
    if isinstance(clause, (FOr, FNot)):
        raise PolicyError(
            "bandwidth formulas with top-level 'or' or '!' cannot be localized; "
            "only conjunctions of max/min clauses are enforceable"
        )
    if isinstance(clause, FAnd):
        _localize_clause(clause.left, rates, weights)
        _localize_clause(clause.right, rates, weights)
        return
    if not isinstance(clause, (FMax, FMin)):
        raise PolicyError(f"unknown formula clause: {clause!r}")

    identifiers = list(clause.term.identifiers)
    unknown = [name for name in identifiers if name not in rates]
    if unknown:
        raise PolicyError(
            f"formula references undefined statement identifiers: {unknown}"
        )
    shares = _shares(identifiers, weights)
    for identifier in identifiers:
        local_rate = clause.rate * shares[identifier]
        if isinstance(clause, FMax):
            rates[identifier].merge_cap(local_rate)
        else:
            rates[identifier].merge_guarantee(local_rate)


def _shares(identifiers: Sequence[str], weights: Mapping[str, float]) -> Dict[str, float]:
    """Normalise split weights over the identifiers of one clause."""
    raw = {name: float(weights.get(name, 1.0)) for name in identifiers}
    total = sum(raw.values())
    if total <= 0:
        raise PolicyError("localization weights must sum to a positive value")
    return {name: value / total for name, value in raw.items()}


def localized_formula(rates: Mapping[str, LocalRates]) -> Formula:
    """Rebuild a (localized) formula from per-statement rates.

    The result is the conjunction of one ``max`` and/or ``min`` clause per
    statement, which by construction implies the original global formula.
    Used when re-emitting delegated policies.
    """
    from .ast import BandwidthTerm, formula_and

    clauses = []
    for identifier in sorted(rates):
        local = rates[identifier]
        term = BandwidthTerm(identifiers=(identifier,))
        if local.cap is not None:
            clauses.append(FMax(term, local.cap))
        if local.guarantee is not None:
            clauses.append(FMin(term, local.guarantee))
    return formula_and(*clauses)
