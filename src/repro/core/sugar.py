"""Expansion of Merlin's syntactic sugar into the core policy form.

§2.1 introduces set literals, the ``cross`` product operator, ``foreach``
iteration, and per-statement ``at max(...)`` / ``at min(...)`` rate
annotations as sugar over the core grammar of Figure 1.  This module expands
a :class:`~repro.core.parser.ParsedProgram` into a plain
:class:`~repro.core.ast.Policy`:

* set bindings are evaluated to value lists,
* ``foreach (s, d) in cross(A, B): p -> a at max(n)`` expands into one
  statement per ``(s, d)`` pair, with ``eth.src = s and eth.dst = d`` (or the
  IP equivalents) conjoined to the template predicate,
* rate annotations become ``max``/``min`` conjuncts of the policy formula,
* statements without identifiers receive generated ones.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import PolicyError
from ..predicates.ast import FieldTest, Predicate, pred_and
from .ast import (
    BandwidthTerm,
    FMax,
    FMin,
    Formula,
    FTrue,
    Policy,
    Statement,
    formula_and,
)
from .parser import (
    CrossExpr,
    ForeachBlock,
    ParsedProgram,
    RawStatement,
    SetBinding,
    SetExpression,
    SetLiteral,
    SetRef,
)

#: A set element: the token kind it was written as, plus its text.
SetValue = Tuple[str, str]


def expand_program(program: ParsedProgram, topology=None) -> Policy:
    """Expand a parsed program into a core :class:`Policy`."""
    environment = _evaluate_bindings(program.bindings)
    statements: List[Statement] = []
    extra_clauses: List[Formula] = []
    counter = itertools.count(1)

    for item in program.items:
        if isinstance(item, RawStatement):
            statement, clauses = _expand_statement(item, counter)
            statements.append(statement)
            extra_clauses.extend(clauses)
        elif isinstance(item, ForeachBlock):
            expanded = _expand_foreach(item, environment, counter, topology)
            for statement, clauses in expanded:
                statements.append(statement)
                extra_clauses.extend(clauses)
        else:  # pragma: no cover - parser cannot produce other item types
            raise PolicyError(f"unknown program item: {item!r}")

    formula = formula_and(program.formula, *extra_clauses)
    return Policy(statements=tuple(statements), formula=formula)


# ---------------------------------------------------------------------------
# Set environment
# ---------------------------------------------------------------------------


def _evaluate_bindings(bindings: Sequence[SetBinding]) -> Dict[str, List[SetValue]]:
    environment: Dict[str, List[SetValue]] = {}
    for binding in bindings:
        environment[binding.name] = _evaluate_set(binding.expression, environment)
    return environment


def _evaluate_set(
    expression: SetExpression, environment: Dict[str, List[SetValue]]
) -> List[SetValue]:
    if isinstance(expression, SetLiteral):
        return list(expression.values)
    if isinstance(expression, SetRef):
        if expression.name not in environment:
            raise PolicyError(f"undefined set {expression.name!r}")
        return list(environment[expression.name])
    if isinstance(expression, CrossExpr):
        raise PolicyError("cross(...) may only appear in a foreach clause")
    raise PolicyError(f"unknown set expression: {expression!r}")


def _evaluate_pairs(
    expression: SetExpression, environment: Dict[str, List[SetValue]]
) -> List[Tuple[SetValue, SetValue]]:
    """Evaluate the set expression of a ``foreach`` to a list of (src, dst) pairs."""
    if isinstance(expression, CrossExpr):
        left = _evaluate_set(expression.left, environment)
        right = _evaluate_set(expression.right, environment)
        return [(source, destination) for source in left for destination in right]
    values = _evaluate_set(expression, environment)
    pairs: List[Tuple[SetValue, SetValue]] = []
    for source in values:
        for destination in values:
            if source != destination:
                pairs.append((source, destination))
    return pairs


# ---------------------------------------------------------------------------
# Statement expansion
# ---------------------------------------------------------------------------


def _expand_statement(
    raw: RawStatement, counter
) -> Tuple[Statement, List[Formula]]:
    identifier = raw.identifier or f"s{next(counter)}"
    statement = Statement(identifier=identifier, predicate=raw.predicate, path=raw.path)
    clauses = _rate_clauses(identifier, raw.rate_specs)
    return statement, clauses


def _expand_foreach(
    block: ForeachBlock,
    environment: Dict[str, List[SetValue]],
    counter,
    topology,
) -> List[Tuple[Statement, List[Formula]]]:
    pairs = _evaluate_pairs(block.pairs, environment)
    results: List[Tuple[Statement, List[Formula]]] = []
    for source, destination in pairs:
        identifier = f"s{next(counter)}"
        endpoint_predicate = pred_and(
            _endpoint_test(source, is_source=True, topology=topology),
            _endpoint_test(destination, is_source=False, topology=topology),
        )
        predicate = pred_and(endpoint_predicate, block.template.predicate)
        statement = Statement(
            identifier=identifier, predicate=predicate, path=block.template.path
        )
        clauses = _rate_clauses(identifier, block.template.rate_specs)
        results.append((statement, clauses))
    return results


def _rate_clauses(identifier: str, rate_specs) -> List[Formula]:
    clauses: List[Formula] = []
    term = BandwidthTerm(identifiers=(identifier,))
    for kind, rate in rate_specs:
        if kind == "max":
            clauses.append(FMax(term, rate))
        else:
            clauses.append(FMin(term, rate))
    return clauses


def _endpoint_test(value: SetValue, is_source: bool, topology) -> Predicate:
    """Build the implicit source/destination test for a ``foreach`` pair element.

    MAC addresses become ``eth.src``/``eth.dst`` tests, IPv4 addresses become
    ``ip.src``/``ip.dst`` tests, and bare identifiers are treated as host
    names resolved through the topology's MAC assignment.
    """
    kind, text = value
    if kind == "MAC":
        field = "eth.src" if is_source else "eth.dst"
        return FieldTest(field, text)
    if kind == "IP":
        field = "ip.src" if is_source else "ip.dst"
        return FieldTest(field, text)
    if kind in ("IDENT", "NUMBER", "HEX"):
        if topology is None:
            raise PolicyError(
                f"cannot resolve host name {text!r} in foreach without a topology"
            )
        if not topology.has_node(text):
            raise PolicyError(f"unknown host {text!r} in foreach set")
        node = topology.node(text)
        if node.mac is None:
            raise PolicyError(f"host {text!r} has no MAC address to match on")
        field = "eth.src" if is_source else "eth.dst"
        return FieldTest(field, node.mac)
    raise PolicyError(f"unsupported set element {text!r}")
