"""The public session facade over a live incremental compile.

:meth:`MerlinCompiler.session` returns a :class:`Session`: the supported
surface for callers that stream changes at a compiled policy — the scenario
driver replaying churn/failure event streams, the negotiator applying
verified refinements — without reaching into compiler session or engine
internals.

``apply`` accepts any unit of change: a
:class:`~repro.incremental.delta.PolicyDelta`, a
:class:`~repro.incremental.delta.TopologyDelta`, or any object exposing
``to_delta()`` (scenario events do), and returns the same full
:class:`~repro.core.allocation.CompilationResult` a from-scratch compile of
the updated policy on the current active topology would produce.  Every
``apply`` is a transaction (see :meth:`MerlinCompiler.recompile`): on any
failure the session rolls back to its pre-delta state and the error
propagates, so a driver can record the rejection and keep replaying.

``checkpoint()`` / ``rollback()`` / ``commit()`` expose the same
undo-journal transaction mechanism ``apply`` uses internally, for callers
that need multi-delta units of work (apply several deltas, inspect the
result, and abandon or commit all of them).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..errors import ProvisioningError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..topology.graph import Topology
    from .allocation import CompilationResult
    from .compiler import MerlinCompiler


class ProvisioningSession:
    """A handle on a compiler's live incremental session.

    Created by :meth:`MerlinCompiler.session`; several handles over one
    compiler share the same underlying state.  Exported from the package
    root as ``repro.ProvisioningSession`` (``Session`` remains an alias).  Usable as a context manager
    purely for scoping — exiting does **not** discard the compiler's
    session (the compiled policy remains live for later handles).
    """

    def __init__(self, compiler: "MerlinCompiler") -> None:
        if not compiler.has_session:
            raise ProvisioningError(
                "Session requires a compiled policy; call compile() first"
            )
        self._compiler = compiler

    # -- context manager (scoping only) ------------------------------------

    def __enter__(self) -> "ProvisioningSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    # -- the unit of work ---------------------------------------------------

    def apply(self, change) -> "CompilationResult":
        """Apply one unit of change transactionally and return the result.

        ``change`` is a :class:`~repro.incremental.delta.PolicyDelta`, a
        :class:`~repro.incremental.delta.TopologyDelta`, or any object with
        a ``to_delta()`` method producing one (scenario events).  Raises
        whatever :meth:`MerlinCompiler.recompile` raises; the session is
        rolled back and stays usable.
        """
        from ..incremental.delta import PolicyDelta, TopologyDelta

        if not isinstance(change, (PolicyDelta, TopologyDelta)):
            to_delta = getattr(change, "to_delta", None)
            if to_delta is None:
                raise TypeError(
                    "Session.apply() takes a PolicyDelta, a TopologyDelta, "
                    "or an object with to_delta(); got "
                    f"{type(change).__name__}"
                )
            change = to_delta()
        return self._compiler.recompile(change)

    # -- explicit multi-delta transactions ----------------------------------

    def checkpoint(self):
        """Open a unit of work; pass the token to :meth:`rollback`/:meth:`commit`.

        Checkpoints are O(1) undo-journal marks, and they *stack*:
        rolling back to an earlier token invalidates every later one,
        while a token stays valid across any number of later checkpoints
        that were committed or rolled back.  Long-running callers should
        pair every checkpoint with a :meth:`rollback` or :meth:`commit`
        so the journal can be truncated (an outstanding mark keeps every
        subsequent undo entry alive).
        """
        return self._session().checkpoint()

    def rollback(self, token) -> None:
        """Restore the session to a :meth:`checkpoint` token's state.

        Replays the undo journal back to the mark — O(changes since the
        checkpoint).  The token stays valid (the unit of work can retry);
        call :meth:`commit` when done with it.
        """
        self._session().restore(token)

    def commit(self, token) -> None:
        """Retire a :meth:`checkpoint` token, truncating the undo journal.

        Committing an already-invalidated token (one superseded by a
        rollback to an earlier mark) is a harmless no-op.
        """
        self._session().release(token)

    # -- introspection -------------------------------------------------------

    @property
    def topology(self) -> "Topology":
        """The active topology (pristine minus currently-failed elements)."""
        session = self._session()
        return session.active_topology or self._compiler.topology

    @property
    def failed_links(self) -> frozenset:
        """Currently-failed links as sorted (u, v) name pairs."""
        return self._session().failed_links

    @property
    def failed_nodes(self) -> frozenset:
        """Currently-failed switch/middlebox names."""
        return self._session().failed_nodes

    @property
    def statement_ids(self) -> tuple:
        """Identifiers of the statements currently in the session."""
        return tuple(self._session().statements)

    def _session(self):
        inner = self._compiler._session
        if inner is None:
            raise ProvisioningError(
                "the compiler's session is gone (a failed compile() "
                "cleared it); compile again before using this handle"
            )
        return inner


#: Backwards-compatible alias; new code should use ProvisioningSession.
Session = ProvisioningSession
