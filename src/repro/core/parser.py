"""Recursive-descent parser for the Merlin policy language.

The parser accepts both the core form of Figure 1::

    [ x : (eth.src = 00:00:00:00:00:01 and tcp.dst = 20) -> .* dpi .* ;
      y : (...) -> .* ],
    max(x + y, 50MB/s) and min(z, 100MB/s)

and the syntactic-sugar form of §2.1::

    srcs := {00:00:00:00:00:01}
    dsts := {00:00:00:00:00:02}
    foreach (s,d) in cross(srcs,dsts):
      tcp.dst = 80 -> (.* nat .* dpi .*) at max(100MB/s)

Parsing yields a :class:`ParsedProgram`; :mod:`repro.core.sugar` expands the
sugar into the core :class:`~repro.core.ast.Policy` form.  Use
:func:`parse_policy` for the one-call path from source text to a policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from ..errors import ParseError
from ..predicates.ast import FALSE, TRUE, FieldTest, Predicate, pred_and, pred_not, pred_or
from ..regex.ast import DOT, Regex, Symbol, concat, star, union, Negate
from ..units import Bandwidth
from .ast import (
    BandwidthTerm,
    FAnd,
    FMax,
    FMin,
    FNot,
    FOr,
    Formula,
    FTrue,
    Policy,
)
from .lexer import Token, tokenize

# ---------------------------------------------------------------------------
# Intermediate ("parsed but not yet desugared") representation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SetLiteral:
    """A literal set of values, e.g. ``{00:00:00:00:00:01, 00:00:00:00:00:02}``."""

    values: Tuple[Tuple[str, str], ...]  # (token kind, text)


@dataclass(frozen=True)
class SetRef:
    """A reference to a previously bound set name."""

    name: str


@dataclass(frozen=True)
class CrossExpr:
    """The ``cross(A, B)`` Cartesian-product operator."""

    left: "SetExpression"
    right: "SetExpression"


SetExpression = Union[SetLiteral, SetRef, CrossExpr]


@dataclass(frozen=True)
class SetBinding:
    """A ``name := setexpr`` binding."""

    name: str
    expression: SetExpression


@dataclass(frozen=True)
class RawStatement:
    """A statement before desugaring.

    ``identifier`` is ``None`` for sugar statements (an identifier is
    generated during expansion); ``rate_specs`` holds any ``at max(...)`` /
    ``at min(...)`` annotations.
    """

    identifier: Optional[str]
    predicate: Predicate
    path: Regex
    rate_specs: Tuple[Tuple[str, Bandwidth], ...] = ()


@dataclass(frozen=True)
class ForeachBlock:
    """A ``foreach (s, d) in <set>: <statement>`` block."""

    source_var: str
    destination_var: str
    pairs: SetExpression
    template: RawStatement


ProgramItem = Union[RawStatement, ForeachBlock]


@dataclass(frozen=True)
class ParsedProgram:
    """The surface-level parse of a policy source file."""

    bindings: Tuple[SetBinding, ...]
    items: Tuple[ProgramItem, ...]
    formula: Formula


# ---------------------------------------------------------------------------
# The parser
# ---------------------------------------------------------------------------

_VALUE_KINDS = frozenset({"MAC", "IP", "HEX", "NUMBER", "IDENT"})


class PolicyParser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: Sequence[Token], source: str = "") -> None:
        self._tokens = list(tokens)
        self._source = source
        self._index = 0

    # -- token utilities -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Optional[Token]:
        index = self._index + offset
        if index < len(self._tokens):
            return self._tokens[index]
        return None

    def _at_end(self) -> bool:
        return self._index >= len(self._tokens)

    def _advance(self) -> Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of policy source")
        self._index += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._advance()
        if token.kind != kind or (text is not None and token.text != text):
            expected = text if text is not None else kind
            raise ParseError(
                f"expected {expected!r} but found {token.text!r}",
                line=token.line,
                column=token.column,
            )
        return token

    def _check(self, kind: str, text: Optional[str] = None, offset: int = 0) -> bool:
        token = self._peek(offset)
        if token is None:
            return False
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def _match(self, kind: str, text: Optional[str] = None) -> bool:
        if self._check(kind, text):
            self._advance()
            return True
        return False

    # -- program --------------------------------------------------------------

    def parse_program(self) -> ParsedProgram:
        """Parse a complete policy source file."""
        bindings: List[SetBinding] = []
        while self._check("IDENT") and self._check("ASSIGN", offset=1):
            bindings.append(self._binding())

        items: List[ProgramItem] = []
        bracketed = self._match("LBRACKET")
        while not self._at_end():
            if bracketed and self._check("RBRACKET"):
                break
            if not bracketed and self._check("COMMA"):
                break
            items.append(self._item())
            self._match("SEMI")
        if bracketed:
            self._expect("RBRACKET")

        formula: Formula = FTrue()
        if self._match("COMMA"):
            formula = self._formula()
        if not self._at_end():
            trailing = self._advance()
            raise ParseError(
                f"unexpected trailing input {trailing.text!r}",
                line=trailing.line,
                column=trailing.column,
            )
        return ParsedProgram(
            bindings=tuple(bindings), items=tuple(items), formula=formula
        )

    # -- bindings and sets ------------------------------------------------------

    def _binding(self) -> SetBinding:
        name = self._expect("IDENT").text
        self._expect("ASSIGN")
        return SetBinding(name=name, expression=self._set_expression())

    def _set_expression(self) -> SetExpression:
        if self._match("LBRACE"):
            values: List[Tuple[str, str]] = []
            if not self._check("RBRACE"):
                values.append(self._set_value())
                while self._match("COMMA"):
                    values.append(self._set_value())
            self._expect("RBRACE")
            return SetLiteral(values=tuple(values))
        if self._check("KEYWORD", "cross"):
            self._advance()
            self._expect("LPAREN")
            left = self._set_expression()
            self._expect("COMMA")
            right = self._set_expression()
            self._expect("RPAREN")
            return CrossExpr(left=left, right=right)
        token = self._expect("IDENT")
        return SetRef(name=token.text)

    def _set_value(self) -> Tuple[str, str]:
        token = self._advance()
        if token.kind not in _VALUE_KINDS:
            raise ParseError(
                f"expected a set element but found {token.text!r}",
                line=token.line,
                column=token.column,
            )
        return (token.kind, token.text)

    # -- items -------------------------------------------------------------------

    def _item(self) -> ProgramItem:
        if self._check("KEYWORD", "foreach"):
            return self._foreach()
        return self._statement()

    def _foreach(self) -> ForeachBlock:
        self._expect("KEYWORD", "foreach")
        self._expect("LPAREN")
        source_var = self._expect("IDENT").text
        self._expect("COMMA")
        destination_var = self._expect("IDENT").text
        self._expect("RPAREN")
        self._expect("KEYWORD", "in")
        pairs = self._set_expression()
        self._expect("COLON")
        template = self._statement(allow_identifier=False)
        return ForeachBlock(
            source_var=source_var,
            destination_var=destination_var,
            pairs=pairs,
            template=template,
        )

    def _statement(self, allow_identifier: bool = True) -> RawStatement:
        identifier: Optional[str] = None
        if (
            allow_identifier
            and self._check("IDENT")
            and self._check("COLON", offset=1)
        ):
            identifier = self._advance().text
            self._advance()  # the colon
        predicate = self._predicate()
        self._expect("ARROW")
        path = self._path_expression()
        rate_specs: List[Tuple[str, Bandwidth]] = []
        if self._match("KEYWORD", "at"):
            rate_specs.append(self._rate_spec())
            while self._match("KEYWORD", "and"):
                rate_specs.append(self._rate_spec())
        return RawStatement(
            identifier=identifier,
            predicate=predicate,
            path=path,
            rate_specs=tuple(rate_specs),
        )

    def _rate_spec(self) -> Tuple[str, Bandwidth]:
        token = self._advance()
        if token.kind != "KEYWORD" or token.text not in ("max", "min"):
            raise ParseError(
                f"expected 'max' or 'min' after 'at' but found {token.text!r}",
                line=token.line,
                column=token.column,
            )
        self._expect("LPAREN")
        rate = self._rate()
        self._expect("RPAREN")
        return (token.text, rate)

    def _rate(self) -> Bandwidth:
        token = self._advance()
        if token.kind in ("RATE", "NUMBER"):
            return Bandwidth.parse(token.text.replace(" ", ""))
        raise ParseError(
            f"expected a rate literal but found {token.text!r}",
            line=token.line,
            column=token.column,
        )

    # -- predicates ----------------------------------------------------------------

    def _predicate(self) -> Predicate:
        return self._pred_or()

    def _pred_or(self) -> Predicate:
        operands = [self._pred_and()]
        while self._check("KEYWORD", "or"):
            self._advance()
            operands.append(self._pred_and())
        return pred_or(*operands) if len(operands) > 1 else operands[0]

    def _pred_and(self) -> Predicate:
        operands = [self._pred_unary()]
        while self._check("KEYWORD", "and"):
            self._advance()
            operands.append(self._pred_unary())
        return pred_and(*operands) if len(operands) > 1 else operands[0]

    def _pred_unary(self) -> Predicate:
        if self._match("BANG"):
            return pred_not(self._pred_unary())
        return self._pred_atom()

    def _pred_atom(self) -> Predicate:
        token = self._advance()
        if token.kind == "LPAREN":
            inner = self._predicate()
            self._expect("RPAREN")
            return inner
        if token.kind == "KEYWORD" and token.text == "true":
            return TRUE
        if token.kind == "KEYWORD" and token.text == "false":
            return FALSE
        if token.kind == "FIELD":
            return self._field_test(token)
        raise ParseError(
            f"expected a predicate but found {token.text!r}",
            line=token.line,
            column=token.column,
        )

    def _field_test(self, field_token: Token) -> Predicate:
        operator = self._advance()
        negated = False
        if operator.kind == "NEQ":
            negated = True
        elif operator.kind != "EQUALS":
            raise ParseError(
                f"expected '=' or '!=' after {field_token.text!r}",
                line=operator.line,
                column=operator.column,
            )
        value = self._advance()
        if value.kind not in _VALUE_KINDS:
            raise ParseError(
                f"expected a value after {field_token.text!r}",
                line=value.line,
                column=value.column,
            )
        test = FieldTest(field_token.text, value.text)
        return pred_not(test) if negated else test

    # -- path expressions -------------------------------------------------------------

    def _path_expression(self) -> Regex:
        return self._path_union()

    def _path_union(self) -> Regex:
        parts = [self._path_concat()]
        while self._match("PIPE"):
            parts.append(self._path_concat())
        return union(*parts) if len(parts) > 1 else parts[0]

    def _path_concat(self) -> Regex:
        factors = [self._path_factor()]
        while self._starts_path_factor():
            factors.append(self._path_factor())
        return concat(*factors) if len(factors) > 1 else factors[0]

    def _starts_path_factor(self) -> bool:
        token = self._peek()
        if token is None:
            return False
        if token.kind == "IDENT":
            # An identifier followed by ':' begins the next statement.
            return not self._check("COLON", offset=1)
        return token.kind in ("DOT", "LPAREN", "BANG")

    def _path_factor(self) -> Regex:
        if self._match("BANG"):
            return Negate(self._path_factor())
        base = self._path_base()
        while self._match("STAR"):
            base = star(base)
        return base

    def _path_base(self) -> Regex:
        token = self._advance()
        if token.kind == "IDENT":
            return Symbol(token.text)
        if token.kind == "DOT":
            return DOT
        if token.kind == "LPAREN":
            inner = self._path_union()
            self._expect("RPAREN")
            return inner
        raise ParseError(
            f"expected a path element but found {token.text!r}",
            line=token.line,
            column=token.column,
        )

    # -- formulas ------------------------------------------------------------------------

    def _formula(self) -> Formula:
        return self._formula_or()

    def _formula_or(self) -> Formula:
        result = self._formula_and()
        while self._check("KEYWORD", "or"):
            self._advance()
            result = FOr(result, self._formula_and())
        return result

    def _formula_and(self) -> Formula:
        result = self._formula_unary()
        while self._check("KEYWORD", "and"):
            self._advance()
            result = FAnd(result, self._formula_unary())
        return result

    def _formula_unary(self) -> Formula:
        if self._match("BANG"):
            return FNot(self._formula_unary())
        return self._formula_atom()

    def _formula_atom(self) -> Formula:
        token = self._advance()
        if token.kind == "LPAREN":
            inner = self._formula()
            self._expect("RPAREN")
            return inner
        if token.kind == "KEYWORD" and token.text == "true":
            return FTrue()
        if token.kind == "KEYWORD" and token.text in ("max", "min"):
            self._expect("LPAREN")
            term = self._bandwidth_term()
            self._expect("COMMA")
            rate = self._rate()
            self._expect("RPAREN")
            return FMax(term, rate) if token.text == "max" else FMin(term, rate)
        raise ParseError(
            f"expected a formula but found {token.text!r}",
            line=token.line,
            column=token.column,
        )

    def _bandwidth_term(self) -> BandwidthTerm:
        identifiers: List[str] = []
        constant = Bandwidth(0.0)
        while True:
            token = self._advance()
            if token.kind == "IDENT":
                identifiers.append(token.text)
            elif token.kind in ("RATE", "NUMBER"):
                constant = constant + Bandwidth.parse(token.text.replace(" ", ""))
            else:
                raise ParseError(
                    f"expected an identifier or rate in bandwidth term, found {token.text!r}",
                    line=token.line,
                    column=token.column,
                )
            if not self._match("PLUS"):
                break
        return BandwidthTerm(identifiers=tuple(identifiers), constant=constant)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def parse_program(source: str) -> ParsedProgram:
    """Parse policy source into the surface-level :class:`ParsedProgram`."""
    return PolicyParser(tokenize(source), source).parse_program()


def parse_policy(source: str, topology=None) -> Policy:
    """Parse and desugar policy source into a core :class:`Policy`.

    A ``topology`` is only needed when the sugar references hosts by name
    (rather than by MAC or IP address), so that names can be resolved to
    addresses during expansion.
    """
    from .sugar import expand_program

    return expand_program(parse_program(source), topology=topology)
