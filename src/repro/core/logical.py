"""Logical topology construction (§3.2, Figure 2).

For each statement the compiler builds a directed graph ``G_i`` whose paths
correspond exactly to physical forwarding paths that satisfy the statement's
path expression (Lemma 1).  The construction is the product of the physical
topology with the statement's automaton:

* the path expression is first rewritten over locations only by substituting
  packet-processing function names with the union of their candidate
  locations,
* the rewritten expression is compiled to a compact DFA (a special case of
  the NFA ``M_i`` in the paper; determinising keeps the product small and
  makes successor lookups O(1)),
* the vertex set is ``{s_i, t_i} ∪ (L × Q_i)`` restricted to vertices that
  are reachable from ``s_i`` and can reach ``t_i``,
* there is an edge ``(u, q) → (v, q')`` iff ``u = v`` or ``(u, v)`` is a
  physical link, and ``q' = δ(q, v)``.

When the statement's endpoints are known (from its predicate or supplied
explicitly), the automaton is intersected with ``src .* dst`` so that ``G_i``
only contains paths that actually carry the statement's traffic from its
source to its destination.
"""

from __future__ import annotations

import collections
import heapq
import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import ProvisioningError
from ..regex.ast import DOT, Regex, Symbol, concat, star
from ..regex.dfa import DFA
from ..regex.minimize import minimize
from ..regex.nfa import NFA
from ..regex.substitution import functions_used, substitute_functions
from ..topology.graph import Topology
from .ast import Statement

#: Logical-topology vertices: the universal source/sink or a (location, state) pair.
SOURCE = ("__source__", -1)
SINK = ("__sink__", -2)
Vertex = Tuple[str, int]


@dataclass(frozen=True)
class LogicalEdge:
    """A directed edge of the logical topology.

    ``physical_link`` is the undirected physical link the edge maps onto
    (``None`` for source/sink edges and for "stay at the same location"
    edges).  ``location`` is the location processed when traversing the edge
    (the ``v`` of the construction), used to recover the forwarding path and
    the function placements from a MIP solution.
    """

    source: Vertex
    target: Vertex
    location: str
    physical_link: Optional[Tuple[str, str]] = None


@dataclass
class LogicalTopology:
    """The product graph ``G_i`` for one statement."""

    statement_id: str
    source_location: Optional[str]
    destination_location: Optional[str]
    vertices: Set[Vertex] = field(default_factory=set)
    edges: List[LogicalEdge] = field(default_factory=list)
    _out: Dict[Vertex, List[LogicalEdge]] = field(default_factory=dict)
    _in: Dict[Vertex, List[LogicalEdge]] = field(default_factory=dict)
    _by_link: Dict[Tuple[str, str], List[LogicalEdge]] = field(default_factory=dict)

    def add_edge(self, edge: LogicalEdge) -> None:
        self.edges.append(edge)
        self.vertices.add(edge.source)
        self.vertices.add(edge.target)
        self._out.setdefault(edge.source, []).append(edge)
        self._in.setdefault(edge.target, []).append(edge)
        if edge.physical_link is not None:
            key = tuple(sorted(edge.physical_link))
            self._by_link.setdefault(key, []).append(edge)

    def out_edges(self, vertex: Vertex) -> List[LogicalEdge]:
        return self._out.get(vertex, [])

    def in_edges(self, vertex: Vertex) -> List[LogicalEdge]:
        return self._in.get(vertex, [])

    def edges_for_link(self, u: str, v: str) -> List[LogicalEdge]:
        """All edges of ``G_i`` that map onto the physical link ``(u, v)`` — ``E_i(u, v)``."""
        return self._by_link.get(tuple(sorted((u, v))), [])

    def physical_links_used(self) -> Set[Tuple[str, str]]:
        return set(self._by_link)

    def num_vertices(self) -> int:
        return len(self.vertices)

    def num_edges(self) -> int:
        return len(self.edges)

    def find_path(self) -> Optional[List[str]]:
        """A shortest source-to-sink path, as a sequence of physical locations.

        Used for best-effort statements with path constraints (no MIP needed)
        and as a feasibility probe for guaranteed statements.
        """
        predecessors: Dict[Vertex, LogicalEdge] = {}
        queue = collections.deque([SOURCE])
        visited = {SOURCE}
        while queue:
            vertex = queue.popleft()
            for edge in self.out_edges(vertex):
                if edge.target in visited:
                    continue
                predecessors[edge.target] = edge
                if edge.target == SINK:
                    return self._reconstruct(predecessors)
                visited.add(edge.target)
                queue.append(edge.target)
        return None

    def _reconstruct(self, predecessors: Dict[Vertex, LogicalEdge]) -> List[str]:
        locations: List[str] = []
        vertex = SINK
        while vertex != SOURCE:
            edge = predecessors[vertex]
            if vertex != SINK:
                locations.append(edge.location)
            vertex = edge.source
        locations.reverse()
        return locations

    def is_feasible(self) -> bool:
        """Whether any physical path satisfies the statement's constraints."""
        return self.find_path() is not None

    def rebadged(self, statement_id: str) -> "LogicalTopology":
        """A view of this topology under another statement's identifier.

        The vertex/edge structures are shared, not copied: two statements
        with the same (path expression, endpoint pair) shape produce
        identical product graphs, and nothing mutates a logical topology
        after construction.  This is what makes memoising
        :func:`build_logical_topology` at the compiler level cheap.
        """
        if statement_id == self.statement_id:
            return self
        return LogicalTopology(
            statement_id=statement_id,
            source_location=self.source_location,
            destination_location=self.destination_location,
            vertices=self.vertices,
            edges=self.edges,
            _out=self._out,
            _in=self._in,
            _by_link=self._by_link,
        )


def build_logical_topology(
    statement: Statement,
    topology: Topology,
    placements: Mapping[str, Iterable[str]],
    source: Optional[str] = None,
    destination: Optional[str] = None,
    known_locations: Optional[Iterable[str]] = None,
) -> LogicalTopology:
    """Build ``G_i`` for one statement.

    ``source`` and ``destination`` optionally pin the statement's endpoints;
    when omitted they are inferred from the statement's predicate by
    :func:`infer_endpoints` at the compiler level and passed in here.

    ``known_locations`` extends the set of names accepted in the path
    expression beyond ``topology``'s own locations.  It is used when
    ``topology`` is a degraded (post-failure) view of a larger network: a
    symbol naming a failed element stays a valid location reference — it
    simply matches nothing during the product construction, so paths
    through it disappear instead of the whole expression being rejected
    as a placement error.
    """
    locations = topology.locations()
    valid_names = (
        locations
        if known_locations is None
        else frozenset(locations) | frozenset(known_locations)
    )
    rewritten = substitute_functions(statement.path, placements, valid_names)
    if source is not None and destination is not None:
        rewritten = _pin_endpoints(rewritten, source, destination)
    automaton = _compiled_automaton(rewritten)
    live = _live_states(automaton)
    if automaton.start not in live:
        # The language is empty: no physical path can satisfy the statement.
        return LogicalTopology(
            statement_id=statement.identifier,
            source_location=source,
            destination_location=destination,
        )

    logical = LogicalTopology(
        statement_id=statement.identifier,
        source_location=source,
        destination_location=destination,
    )

    # Breadth-first expansion from the universal source.
    queue: collections.deque = collections.deque()
    seen: Set[Vertex] = set()

    def push(vertex: Vertex) -> None:
        if vertex not in seen:
            seen.add(vertex)
            queue.append(vertex)

    start_locations = [source] if source is not None else locations
    for location in start_locations:
        state = automaton.step(automaton.start, location)
        if state not in live:
            continue
        vertex = (location, state)
        logical.add_edge(LogicalEdge(source=SOURCE, target=vertex, location=location))
        push(vertex)

    while queue:
        location, state = queue.popleft()
        vertex = (location, state)
        if state in automaton.accepting and (
            destination is None or location == destination
        ):
            logical.add_edge(
                LogicalEdge(source=vertex, target=SINK, location=location)
            )
        neighbors = topology.neighbors(location)
        for next_location in [location, *neighbors]:
            next_state = automaton.step(state, next_location)
            if next_state not in live:
                continue
            next_vertex = (next_location, next_state)
            if next_vertex == vertex:
                continue
            physical_link = (
                None
                if next_location == location
                else (location, next_location)
            )
            logical.add_edge(
                LogicalEdge(
                    source=vertex,
                    target=next_vertex,
                    location=next_location,
                    physical_link=physical_link,
                )
            )
            push(next_vertex)
    _prune_dead_vertices(logical)
    return logical


def _hop_distances(logical: LogicalTopology, reverse: bool) -> Dict[Vertex, float]:
    """Fewest physical-link traversals from the source to every vertex
    (``reverse=False``) or from every vertex to the sink (``reverse=True``).

    Stay-at-location and source/sink edges (``physical_link is None``) cost
    nothing; every physical hop costs one.  Dijkstra over {0, 1} costs —
    the graphs are small enough that the deque-based 0-1 BFS would buy
    nothing.
    """
    start = SINK if reverse else SOURCE
    if start not in logical.vertices:
        return {}
    distances: Dict[Vertex, float] = {start: 0.0}
    heap: List[Tuple[float, Vertex]] = [(0.0, start)]
    while heap:
        distance, vertex = heapq.heappop(heap)
        if distance > distances.get(vertex, math.inf):
            continue
        edges = logical.in_edges(vertex) if reverse else logical.out_edges(vertex)
        for edge in edges:
            neighbor = edge.source if reverse else edge.target
            candidate = distance + (0.0 if edge.physical_link is None else 1.0)
            if candidate < distances.get(neighbor, math.inf):
                distances[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    return distances


def prune_to_cost_bound(
    logical: LogicalTopology, slack: int = 0
) -> LogicalTopology:
    """Restrict ``G_i`` to edges on some cost-bounded source-to-sink path.

    An edge survives iff its best *path-through* cost — fewest physical
    hops from the source to the edge, across it, and on to the sink — is at
    most the statement's optimal hop count plus ``slack``.  With
    ``slack=0`` the subgraph is exactly the union of all minimum-hop paths
    (which, on topologies with equal-cost multipath, keeps the full ECMP
    diversity); larger slacks re-admit detours of up to that many extra
    hops.

    This is the *footprint tightening* behind partition decomposition: an
    unconstrained ``.*`` path expression makes ``G_i`` span every physical
    link, gluing the whole provisioning MIP into one component, while the
    cost-bounded subgraph touches only links near some optimal path.  The
    pruned topology is what the partitioned MIP is built from, so the
    decomposition stays exact: a statement provably cannot reserve
    bandwidth on a link outside its (tightened) footprint.

    The restriction trades completeness for parallelism, and the loss is
    real whenever the min-max optimum (or feasibility itself) needs a
    detour *longer* than the bound: such a workload gets a worse max
    utilization — or an infeasibility report — where the unpruned model
    would route the long way around.  Raise ``slack`` (or disable
    tightening with ``footprint_slack=None`` at the provisioning entry
    points) for networks whose useful alternate paths exceed the default
    bound.  The optimal-hop path always survives, so a feasible graph is
    never pruned to emptiness.

    Returns the input object unchanged when nothing would be pruned (the
    common case for already-scoped path expressions), so memoized logical
    topologies keep being shared.
    """
    if SOURCE not in logical.vertices or SINK not in logical.vertices:
        return logical
    forward = _hop_distances(logical, reverse=False)
    optimal = forward.get(SINK)
    if optimal is None:
        return logical
    backward = _hop_distances(logical, reverse=True)
    bound = optimal + slack
    kept = [
        edge
        for edge in logical.edges
        if (
            forward.get(edge.source, math.inf)
            + (0.0 if edge.physical_link is None else 1.0)
            + backward.get(edge.target, math.inf)
        )
        <= bound
    ]
    if len(kept) == len(logical.edges):
        return logical
    pruned = LogicalTopology(
        statement_id=logical.statement_id,
        source_location=logical.source_location,
        destination_location=logical.destination_location,
    )
    for edge in kept:
        pruned.add_edge(edge)
    return pruned


def infer_endpoints(
    statement: Statement, topology: Topology
) -> Tuple[Optional[str], Optional[str]]:
    """Infer the statement's (source, destination) hosts.

    The predicate is scanned for ``eth.src``/``eth.dst`` (matched against
    host MAC addresses) and ``ip.src``/``ip.dst`` (matched against host IP
    addresses).  If the predicate does not pin an endpoint, the path
    expression's first/last explicit symbols are used when they name hosts.
    """
    from ..predicates.transform import atoms

    source: Optional[str] = None
    destination: Optional[str] = None
    for field_name, value in atoms(statement.predicate):
        if field_name == "eth.src":
            node = topology.host_by_mac(str(value))
            source = node.name if node else source
        elif field_name == "eth.dst":
            node = topology.host_by_mac(str(value))
            destination = node.name if node else destination
        elif field_name == "ip.src":
            source = _host_by_ip(topology, str(value)) or source
        elif field_name == "ip.dst":
            destination = _host_by_ip(topology, str(value)) or destination
    if source is None or destination is None:
        boundary = _regex_boundary_symbols(statement.path, topology)
        if source is None:
            source = boundary[0]
        if destination is None:
            destination = boundary[1]
    return source, destination


def _host_by_ip(topology: Topology, ip: str) -> Optional[str]:
    for node in topology.hosts():
        if node.ip == ip:
            return node.name
    return None


def _regex_boundary_symbols(
    path: Regex, topology: Topology
) -> Tuple[Optional[str], Optional[str]]:
    """First/last mandatory symbols of a path expression, if they are locations."""
    shortest = None
    try:
        from ..regex.operations import shortest_accepted

        shortest = shortest_accepted(path)
    except Exception:  # pragma: no cover - defensive; regexes here are small
        shortest = None
    if not shortest:
        return None, None
    first = shortest[0] if topology.has_node(shortest[0]) else None
    last = shortest[-1] if topology.has_node(shortest[-1]) else None
    return first, last


def _pin_endpoints(expression: Regex, source: str, destination: str) -> Regex:
    """Intersect the path language with "starts at source, ends at destination".

    Instead of a DFA intersection, the endpoint constraint is expressed as a
    regex and conjoined structurally: the logical topology uses the DFA of
    the *intersection*, computed below via the product construction.
    """
    endpoints = concat(Symbol(source), star(DOT), Symbol(destination))
    return _RegexIntersection(expression, endpoints)


@dataclass(frozen=True)
class _RegexIntersection(Regex):
    """Internal marker node: the intersection of two path languages.

    It never appears in user-facing ASTs; :func:`_build_automaton` recognises
    it and compiles it with the DFA product construction.  ``NFA.from_regex``
    cannot handle it, so the logical-topology builder intercepts it first.
    """

    left: Regex
    right: Regex

    def children(self):
        return (self.left, self.right)

    def nullable(self) -> bool:
        return self.left.nullable() and self.right.nullable()

    def __str__(self) -> str:
        return f"({self.left}) & ({self.right})"


@lru_cache(maxsize=4096)
def _compiled_automaton(expression: Regex) -> DFA:
    """The minimized DFA of a path expression, memoized by regex value.

    Regex nodes are frozen dataclasses, so structurally identical
    expressions hash equal: statements sharing a path-expression shape (the
    common case in the all-pairs scaling workloads, where every statement
    carries the same ``.*`` before endpoint pinning) compile their automaton
    once.  Intersection operands recurse through the cache, so even when the
    pinned expression is unique per statement the shared unpinned side is
    reused.  The returned DFA is shared between callers and must be treated
    as immutable (all DFA consumers here are read-only).
    """
    if isinstance(expression, _RegexIntersection):
        left = _compiled_automaton(expression.left)
        right = _compiled_automaton(expression.right)
        return minimize(left.intersect(right))
    return minimize(DFA.from_nfa(NFA.from_regex(expression)))


def _live_states(automaton: DFA) -> FrozenSet[int]:
    """States from which an accepting state is reachable."""
    reverse: Dict[int, Set[int]] = {state: set() for state in automaton.states()}
    for state in automaton.states():
        successors = set(automaton.explicit_transitions(state).values())
        successors.add(automaton.default_transition(state))
        for successor in successors:
            reverse.setdefault(successor, set()).add(state)
    live: Set[int] = set()
    queue = collections.deque(automaton.accepting)
    live |= set(automaton.accepting)
    while queue:
        state = queue.popleft()
        for predecessor in reverse.get(state, ()):
            if predecessor not in live:
                live.add(predecessor)
                queue.append(predecessor)
    return frozenset(live)


def _prune_dead_vertices(logical: LogicalTopology) -> None:
    """Remove vertices (and their edges) that cannot reach the sink.

    The forward construction only adds vertices reachable from the source;
    a backward sweep removes those that cannot reach the sink, keeping the
    MIP small.
    """
    if SINK not in logical.vertices:
        logical.vertices.clear()
        logical.edges.clear()
        logical._out.clear()
        logical._in.clear()
        logical._by_link.clear()
        return
    can_reach: Set[Vertex] = {SINK}
    queue = collections.deque([SINK])
    while queue:
        vertex = queue.popleft()
        for edge in logical.in_edges(vertex):
            if edge.source not in can_reach:
                can_reach.add(edge.source)
                queue.append(edge.source)
    kept_edges = [
        edge
        for edge in logical.edges
        if edge.source in can_reach and edge.target in can_reach
    ]
    logical.vertices.clear()
    logical.edges.clear()
    logical._out.clear()
    logical._in.clear()
    logical._by_link.clear()
    for edge in kept_edges:
        logical.add_edge(edge)
