"""Abstract syntax for Merlin policies.

A policy (Figure 1) is a list of statements plus a Presburger-arithmetic
formula over the statements' bandwidth identifiers::

    pol ::= [s1; ...; sn], phi
    s   ::= id : p -> a
    phi ::= max(e, n) | min(e, n) | phi and phi | phi or phi | ! phi
    e   ::= n | id | e + e

Statements pair a packet-classification predicate with a path regular
expression; the formula constrains the bandwidth used by the identified
traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..errors import PolicyError
from ..predicates.ast import Predicate
from ..regex.ast import Regex
from ..units import Bandwidth


# ---------------------------------------------------------------------------
# Bandwidth terms and formulas
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BandwidthTerm:
    """A bandwidth expression ``e``: a sum of statement identifiers and a constant.

    ``max(x + y, 50MB/s)`` has the term ``BandwidthTerm(("x", "y"))``; the
    optional constant supports the grammar's numeric leaves.
    """

    identifiers: Tuple[str, ...]
    constant: Bandwidth = Bandwidth(0.0)

    def __post_init__(self) -> None:
        if not self.identifiers and self.constant.bps_value == 0.0:
            raise PolicyError("a bandwidth term must mention at least one identifier")

    def __str__(self) -> str:
        parts = list(self.identifiers)
        if self.constant.bps_value:
            parts.append(self.constant.policy_literal())
        return " + ".join(parts)


class Formula:
    """Base class for bandwidth-constraint formulas."""

    def identifiers(self) -> FrozenSet[str]:
        """All statement identifiers mentioned in the formula."""
        raise NotImplementedError

    def children(self) -> Tuple["Formula", ...]:
        return ()

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children())


@dataclass(frozen=True)
class FTrue(Formula):
    """The trivial formula (no bandwidth constraints)."""

    def identifiers(self) -> FrozenSet[str]:
        return frozenset()

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FMax(Formula):
    """``max(e, n)`` — the traffic identified by ``e`` is capped at rate ``n``."""

    term: BandwidthTerm
    rate: Bandwidth

    def identifiers(self) -> FrozenSet[str]:
        return frozenset(self.term.identifiers)

    def __str__(self) -> str:
        return f"max({self.term}, {self.rate.policy_literal()})"


@dataclass(frozen=True)
class FMin(Formula):
    """``min(e, n)`` — the traffic identified by ``e`` is guaranteed rate ``n``."""

    term: BandwidthTerm
    rate: Bandwidth

    def identifiers(self) -> FrozenSet[str]:
        return frozenset(self.term.identifiers)

    def __str__(self) -> str:
        return f"min({self.term}, {self.rate.policy_literal()})"


@dataclass(frozen=True)
class FAnd(Formula):
    """Conjunction of two formulas."""

    left: Formula
    right: Formula

    def identifiers(self) -> FrozenSet[str]:
        return self.left.identifiers() | self.right.identifiers()

    def children(self) -> Tuple[Formula, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{self.left} and {self.right}"


@dataclass(frozen=True)
class FOr(Formula):
    """Disjunction of two formulas."""

    left: Formula
    right: Formula

    def identifiers(self) -> FrozenSet[str]:
        return self.left.identifiers() | self.right.identifiers()

    def children(self) -> Tuple[Formula, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


@dataclass(frozen=True)
class FNot(Formula):
    """Negation of a formula."""

    operand: Formula

    def identifiers(self) -> FrozenSet[str]:
        return self.operand.identifiers()

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"!({self.operand})"


def formula_and(*formulas: Formula) -> Formula:
    """Conjoin formulas, dropping trivial ``true`` conjuncts.

    The conjunction is built as a balanced tree so that policies with many
    thousands of clauses (all-pairs guarantee policies, the Figure 9 sweeps)
    never exceed the recursion depth of the formula traversals.
    """
    operands = [formula for formula in formulas if not isinstance(formula, FTrue)]
    if not operands:
        return FTrue()

    def build(items: List[Formula]) -> Formula:
        if len(items) == 1:
            return items[0]
        middle = len(items) // 2
        return FAnd(build(items[:middle]), build(items[middle:]))

    return build(operands)


def formula_clauses(formula: Formula) -> List[Formula]:
    """Flatten a conjunction into its list of non-``and`` clauses."""
    if isinstance(formula, FTrue):
        return []
    if isinstance(formula, FAnd):
        return formula_clauses(formula.left) + formula_clauses(formula.right)
    return [formula]


# ---------------------------------------------------------------------------
# Statements and policies
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Statement:
    """A policy statement ``id : predicate -> path-expression``."""

    identifier: str
    predicate: Predicate
    path: Regex

    def __str__(self) -> str:
        return f"{self.identifier} : ({self.predicate}) -> {self.path}"


@dataclass(frozen=True)
class Policy:
    """A complete Merlin policy: statements plus a bandwidth formula."""

    statements: Tuple[Statement, ...]
    formula: Formula = field(default_factory=FTrue)

    def __post_init__(self) -> None:
        from collections import Counter

        identifier_counts = Counter(
            statement.identifier for statement in self.statements
        )
        duplicates = [name for name, count in identifier_counts.items() if count > 1]
        if duplicates:
            raise PolicyError(f"duplicate statement identifiers: {sorted(duplicates)}")
        unknown = self.formula.identifiers() - set(identifier_counts)
        if unknown:
            raise PolicyError(
                f"formula references undefined statement identifiers: {sorted(unknown)}"
            )

    # -- queries -------------------------------------------------------------

    def statement_ids(self) -> List[str]:
        return [statement.identifier for statement in self.statements]

    def statement(self, identifier: str) -> Statement:
        for statement in self.statements:
            if statement.identifier == identifier:
                return statement
        raise PolicyError(f"no statement named {identifier!r}")

    def __len__(self) -> int:
        return len(self.statements)

    def __iter__(self):
        return iter(self.statements)

    # -- construction helpers -------------------------------------------------

    def with_statements(self, statements: Sequence[Statement]) -> "Policy":
        """A copy of this policy with a different statement list."""
        return Policy(statements=tuple(statements), formula=self.formula)

    def with_formula(self, formula: Formula) -> "Policy":
        """A copy of this policy with a different formula."""
        return Policy(statements=self.statements, formula=formula)

    def extended(self, statement: Statement, formula: Optional[Formula] = None) -> "Policy":
        """A copy with one more statement (and optionally an extra conjunct)."""
        new_formula = self.formula if formula is None else formula_and(self.formula, formula)
        return Policy(statements=self.statements + (statement,), formula=new_formula)

    # -- pretty printing -------------------------------------------------------

    def to_source(self) -> str:
        """Render the policy back to concrete Merlin syntax."""
        lines = ["["]
        for index, statement in enumerate(self.statements):
            separator = ";" if index < len(self.statements) - 1 else ""
            lines.append(f"  {statement}{separator}")
        lines.append("]," if not isinstance(self.formula, FTrue) else "]")
        if not isinstance(self.formula, FTrue):
            lines.append(str(self.formula))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_source()

    def source_line_count(self) -> int:
        """Number of policy source lines (the "lines of code" metric of Figure 4)."""
        return len(self.to_source().splitlines())
