"""One options surface for every provisioning entry point.

Historically :func:`~repro.core.provisioning.provision`,
:class:`~repro.core.compiler.MerlinCompiler`, and
:class:`~repro.incremental.engine.IncrementalProvisioner` each grew their
own drifting keyword surface (``solver`` vs ``max_workers`` vs
``max_solver_workers``, ...).  :class:`ProvisionOptions` consolidates them:
one frozen dataclass carrying the solver backend, partitioning switches,
process-pool size, footprint-slack policy (base value plus whether
infeasible components may widen it), solver limits, and the warm-start
policy.  All entry points accept ``options=ProvisionOptions(...)``; the old
keywords keep working for one release through :func:`coalesce_options`,
which folds them into an options value while emitting
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Optional

#: Default footprint tightening for the partitioned provisioning paths: keep
#: only logical edges on some source-to-sink path of at most (optimal hops +
#: slack) physical-link traversals (see
#: :func:`repro.core.logical.prune_to_cost_bound`).  Tightening is what
#: stops unconstrained ``.*`` paths from gluing every statement into one MIP
#: component.  The default of 2 admits, on top of the full equal-cost
#: multipath diversity at optimal length, detours around one node (an
#: alternate path that enters and leaves one extra location — e.g. the
#: long side of the Figure 3 dumbbell), which is what the min-max
#: objectives use to spread load; it still excludes far-away links (a
#: fat-tree core detour for intra-rack traffic costs 4 extra hops).
#: The bound is a genuine restriction: a workload whose min-max optimum
#: (or feasibility) needs a longer detour would be mis-served — which is
#: why the partitioned paths retry infeasible components with geometrically
#: widened slack (2 -> 4 -> 8 -> None) when ``widen_slack`` is enabled,
#: instead of reporting a tightening artifact as a hard infeasibility.
DEFAULT_FOOTPRINT_SLACK: Optional[int] = 2

#: The widening ladder's last finite rung: an infeasible component widens
#: its members' slack geometrically (2 -> 4 -> 8) and past this value drops
#: tightening entirely (slack ``None``), so the final retry solves the
#: untightened reference model and a remaining infeasibility is genuine.
MAX_WIDENED_SLACK: int = 8

#: Sentinel distinguishing "caller did not pass this legacy keyword" from
#: every meaningful value (``None`` is meaningful for ``footprint_slack``
#: and ``solver``).
_UNSET: Any = object()


def widen_slack(slack: Optional[int]) -> Optional[int]:
    """The next rung of the geometric slack-widening ladder.

    ``None`` (untightened) is terminal — there is nothing wider.  Finite
    slacks double (0 steps to 1 first) until they would exceed
    :data:`MAX_WIDENED_SLACK`, at which point tightening is dropped.
    """
    if slack is None:
        return None
    wider = slack * 2 if slack > 0 else 1
    return None if wider > MAX_WIDENED_SLACK else wider


@dataclass(frozen=True)
class ProvisionOptions:
    """How guaranteed traffic is provisioned, independent of what is provisioned.

    ``solver`` — which LP/MIP backend solves the provisioning models: a
    registered backend name (``"scipy"``, ``"bnb"``, ``"highs"``,
    ``"heuristic"``, ``"auto"`` — see :mod:`repro.lp.backends`), an explicit
    backend instance, or ``None`` to let :meth:`backend` pick the default
    for the configured limits (``"bnb"`` when ``node_limit`` is set —
    scipy cannot bound its search — else ``"scipy"``).

    ``partition`` / ``max_workers`` — whether the MIP is decomposed into
    link-disjoint components, and the process-pool width used to solve
    several dirty components concurrently (0/1 solves in-process).

    ``footprint_slack`` / ``widen_slack`` — the base cost-bound tightening
    applied to every statement's logical topology (``None`` disables
    tightening) and whether components that come back infeasible under it
    are retried with geometrically widened slack instead of failing.

    ``warm_start`` — ``"auto"`` seeds incremental re-solves from projected
    prior incumbents whenever the backend consumes starts; ``"off"``
    disables seeding.

    ``cache_limit`` — the incremental engine's component-solution LRU size.

    ``fabric`` — a :class:`repro.fabric.SolveFabric` to solve dirty
    components on, shared across compile/recompile/sweep calls (and across
    sessions that receive the same instance).  ``None`` falls back to the
    process-wide :func:`repro.fabric.shared_fabric` whenever
    ``max_workers > 1`` asks for parallel solves.

    ``component_cache`` — a :class:`repro.fabric.ComponentSolutionCache`
    consulted (by canonical content signature) before any component model
    is built, and populated with proven-optimal solutions after fresh
    solves.  ``None`` disables cross-run content caching; the engine's
    session-local revision cache is unaffected either way.
    """

    solver: Optional[object] = None
    partition: bool = True
    max_workers: int = 0
    footprint_slack: Optional[int] = DEFAULT_FOOTPRINT_SLACK
    widen_slack: bool = True
    time_limit_seconds: Optional[float] = None
    node_limit: Optional[int] = None
    warm_start: str = "auto"
    cache_limit: int = 512
    fabric: Optional[object] = None
    component_cache: Optional[object] = None

    def __post_init__(self) -> None:
        if self.warm_start not in ("auto", "off"):
            raise ValueError(
                f"warm_start must be 'auto' or 'off', got {self.warm_start!r}"
            )
        if isinstance(self.solver, str):
            from ..lp.backends import registered_backends

            if self.solver not in registered_backends():
                raise ValueError(
                    f"unknown solver backend {self.solver!r}; registered "
                    f"backends: {', '.join(registered_backends())}"
                )

    def backend(self) -> object:
        """The backend instance to hand to ``Model.solve``.

        Resolution lives in :func:`repro.lp.backends.resolve_backend`:
        names are instantiated with this options value's
        ``time_limit_seconds`` / ``node_limit``, explicit instances are
        returned by identity (their own configured limits win), and
        ``None`` selects the default backend for the limits.
        """
        from ..lp.backends import resolve_backend

        return resolve_backend(
            self.solver,
            time_limit_seconds=self.time_limit_seconds,
            node_limit=self.node_limit,
        )

    def resolved_solver(self) -> Optional[object]:
        """Deprecated alias for :meth:`backend`.

        Historically this method owned the limit-based default selection
        and returned ``None`` for "the default backend"; that logic now
        lives in the backend registry, and :meth:`backend` always returns
        a concrete instance.
        """
        warnings.warn(
            "ProvisionOptions.resolved_solver() is deprecated; use "
            "ProvisionOptions.backend() (the selection logic moved into "
            "repro.lp.backends.resolve_backend)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.backend()


def coalesce_options(
    options: Optional[ProvisionOptions],
    *,
    owner: str,
    stacklevel: int = 3,
    **legacy: Any,
) -> ProvisionOptions:
    """Fold deprecated per-call keywords into a :class:`ProvisionOptions`.

    ``legacy`` maps option field names to values, with :data:`_UNSET`
    marking keywords the caller did not pass.  Every keyword that *was*
    passed emits a :class:`DeprecationWarning` naming ``owner`` and
    overrides the corresponding ``options`` field (explicit legacy keywords
    win, matching what the old signatures did).
    """
    resolved = options if options is not None else ProvisionOptions()
    overrides = {
        name: value for name, value in legacy.items() if value is not _UNSET
    }
    if overrides:
        names = ", ".join(sorted(overrides))
        warnings.warn(
            f"passing {names} to {owner} is deprecated; "
            "pass options=ProvisionOptions(...) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        resolved = replace(resolved, **overrides)
    return resolved
