"""Tokeniser for the Merlin policy surface syntax.

One lexer serves the whole policy grammar: statement lists, predicates, path
expressions, bandwidth formulas, and the set/``foreach`` syntactic sugar.
Rates (``50MB/s``, ``1Gbps``), MAC addresses, IPv4 addresses, and qualified
field names (``tcp.dst``) are recognised as single tokens so that the parser
never has to re-assemble them, and so that the lone ``.`` of path expressions
is never confused with the dots inside addresses and field names.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from ..errors import LexerError

#: Words with special meaning; they are lexed as ``KEYWORD`` tokens.
KEYWORDS = frozenset(
    {
        "and",
        "or",
        "max",
        "min",
        "true",
        "false",
        "foreach",
        "in",
        "cross",
        "at",
    }
)

_TOKEN_SPEC = [
    ("WS", r"[ \t\r\n]+"),
    ("COMMENT", r"(#|//)[^\n]*"),
    ("RATE", r"\d+(?:\.\d+)?\s*(?:[KMGT]?B/s|[kmgt]?bps|[KMGT]bps|[KMGT]Bps)"),
    ("MAC", r"[0-9a-fA-F]{1,2}(?::[0-9a-fA-F]{1,2}){5}"),
    ("IP", r"\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}"),
    ("FIELD", r"[A-Za-z_][A-Za-z0-9_]*\.[A-Za-z_][A-Za-z0-9_]*"),
    ("HEX", r"0x[0-9a-fA-F]+"),
    ("NUMBER", r"\d+(?:\.\d+)?"),
    ("ARROW", r"->"),
    ("ASSIGN", r":="),
    ("NEQ", r"!="),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_\-]*"),
    ("LBRACKET", r"\["),
    ("RBRACKET", r"\]"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("LBRACE", r"\{"),
    ("RBRACE", r"\}"),
    ("COMMA", r","),
    ("SEMI", r";"),
    ("COLON", r":"),
    ("PLUS", r"\+"),
    ("STAR", r"\*"),
    ("DOT", r"\."),
    ("BANG", r"!"),
    ("PIPE", r"\|"),
    ("EQUALS", r"="),
]

_MASTER_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


@dataclass(frozen=True)
class Token:
    """A single lexical token with source position for error reporting."""

    kind: str
    text: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "KEYWORD" and self.text == word

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})"


def tokenize(source: str) -> List[Token]:
    """Tokenise Merlin policy source, skipping whitespace and comments."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    position = 0
    while position < len(source):
        match = _MASTER_RE.match(source, position)
        if match is None:
            raise LexerError(
                f"unexpected character {source[position]!r}",
                line=line,
                column=position - line_start + 1,
            )
        kind = match.lastgroup or ""
        text = match.group()
        column = position - line_start + 1
        if kind in ("WS", "COMMENT"):
            newlines = text.count("\n")
            if newlines:
                line += newlines
                line_start = position + text.rfind("\n") + 1
        else:
            if kind == "IDENT" and text in KEYWORDS:
                kind = "KEYWORD"
            tokens.append(Token(kind=kind, text=text, line=line, column=column))
        position = match.end()
    return tokens
