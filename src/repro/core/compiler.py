"""The Merlin compiler (§3): localize, provision, and generate code.

:class:`MerlinCompiler` performs the three essential tasks described in the
paper: translating global policies into locally-enforceable ones
(localization), determining forwarding paths / function placements /
bandwidth allocations (provisioning via the MIP for guaranteed traffic and
sink trees or product-graph BFS for best-effort traffic), and generating
low-level instructions for switches, middleboxes, and end hosts.

Beyond the paper's one-shot pipeline, the compiler keeps a *session* of the
last compile — the preprocessed statements, localized rates, logical
topologies, and partitioned provisioning solutions — so that subsequent
policy changes can take the :meth:`MerlinCompiler.recompile` fast path: a
:class:`~repro.incremental.delta.PolicyDelta` is applied to an
:class:`~repro.incremental.engine.IncrementalProvisioner` seeded from the
session, and only the link-disjoint MIP components the delta touched are
re-solved.  The result is identical to a from-scratch ``compile()`` of the
updated policy (both paths solve the same canonical component models), at a
small fraction of the latency — the Figure-10b re-provisioning benchmark
measures the ratio.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from .. import telemetry
from ..codegen.generator import CodeGenerator
from ..errors import PolicyError, ProvisioningError
from ..predicates.ast import TRUE, PTrue, pred_and, pred_not, pred_or
from ..predicates.sat import is_satisfiable, overlaps
from ..regex.ast import Dot, Regex, Star, any_path
from ..topology.graph import Topology
from ..units import Bandwidth
from .allocation import (
    CompilationResult,
    CompilationStatistics,
    PathAssignment,
    RateAllocation,
)
from .ast import Policy, Statement
from .localization import LocalRates, localize, localized_formula
from .logical import LogicalTopology, build_logical_topology, infer_endpoints
from .options import _UNSET, ProvisionOptions, coalesce_options
from ..incremental.journal import UndoJournal
from .parser import parse_policy
from .preprocessor import DEFAULT_STATEMENT_ID, preprocess
from .provisioning import (
    DEFAULT_FOOTPRINT_SLACK,
    PathSelectionHeuristic,
    ProvisioningResult,
    provision,
)
from .sink_tree import compute_sink_trees


def _is_unconstrained_path(path: Regex) -> bool:
    """Whether a path expression is the universal ``.*`` (no constraint)."""
    return isinstance(path, Star) and isinstance(path.operand, Dot)


@dataclass
class _CompilerSession:
    """The live state carried from one compile to subsequent recompiles.

    Transactions are undo-journal based (see
    ``repro.incremental.journal``): every mutation the recompile pipeline
    performs on the session flows through ``self.journal`` so
    :meth:`checkpoint` is O(1) and :meth:`restore` replays only the
    entries the transaction touched.  The ``logical_cache`` is the one
    deliberate exception — it is a pure content-addressed memo (key
    determines value), so stale-free by construction and exempt from
    exact rollback; the topology-delta path *rebinds* it (journaled), it
    is never required to match a never-failed session entry-for-entry.
    """

    statements: Dict[str, Statement]
    local_rates: Dict[str, LocalRates]
    endpoints: Dict[str, Tuple[Optional[str], Optional[str]]]
    logical_cache: Dict[
        Tuple[Regex, Optional[str], Optional[str]], LogicalTopology
    ]
    guaranteed_logical: Dict[str, LogicalTopology]
    best_effort_paths: Dict[str, PathAssignment]
    sink_trees: Dict
    infeasible: List[str]
    provisioning: ProvisioningResult
    #: The topology the session currently compiles against: the compiler's
    #: pristine topology minus the failed elements below.  Every logical
    #: build, endpoint inference, sink tree, and generated instruction of a
    #: recompile uses this, so session results stay identical to a
    #: from-scratch compile on the degraded network.
    active_topology: Optional[Topology] = None
    failed_links: frozenset = frozenset()
    failed_nodes: frozenset = frozenset()
    #: Per-statement physical-link footprint of the *untightened* product
    #: graph on the *pristine* topology.  Because the product construction
    #: is monotone in the topology (a subgraph's product is a subgraph of
    #: the pristine product), a topology change can only affect a
    #: statement whose pristine footprint intersects the changed links —
    #: the exact test the topology-delta path uses to skip rebuilds.
    base_footprints: Dict[str, frozenset] = field(default_factory=dict)
    engine: Optional[object] = None  # IncrementalProvisioner, created lazily
    #: Whether the session's "default" statement is the preprocessor's
    #: generated catch-all (as opposed to a user-authored statement that
    #: happens to carry that identifier).
    generated_default: bool = False
    #: Monotonic per-statement sequence stamps.  Statement *order* is
    #: behaviorally visible (codegen allocates VLANs/queues in policy
    #: order), but journaled rollback restores dict *contents*, not
    #: insertion order (undoing a deletion re-inserts at the end).  The
    #: stamps record the insertion order explicitly; everything
    #: order-sensitive sorts by them (`_ordered_ids`).
    seq: Dict[str, int] = field(default_factory=dict)
    next_seq: int = 0
    #: The last committed CompilationResult — what an empty/no-op delta
    #: returns without opening a transaction or touching the solver.
    last_result: Optional[object] = None
    journal: UndoJournal = field(default_factory=UndoJournal, repr=False)

    def stamp(self, identifier: str) -> None:
        """Assign ``identifier`` the next insertion-order stamp (journaled)."""
        self.journal.set_item(self.seq, identifier, self.next_seq)
        self.journal.set_attr(self, "next_seq", self.next_seq + 1)

    def ordered_ids(self) -> List[str]:
        """Statement identifiers in insertion order (rollback-stable)."""
        return sorted(self.statements, key=self.seq.__getitem__)

    def checkpoint(self) -> "_SessionToken":
        """Open a transaction: O(1) marks on the session and engine journals."""
        return _SessionToken(
            mark=self.journal.mark(),
            engine_mark=(
                self.engine.checkpoint() if self.engine is not None else None
            ),
        )

    def restore(self, saved: "_SessionToken") -> None:
        """Roll the session (and its engine) back to a :meth:`checkpoint`.

        Replays O(changes since the checkpoint) undo entries.  An engine
        created *inside* the transaction (no engine existed at checkpoint
        time) is discarded wholesale — it is rebuilt lazily, and its
        bookkeeping was derived from session state that just rolled back.
        """
        self.journal.rollback(saved.mark)
        if self.engine is not None:
            if saved.engine_mark is None:
                self.engine = None
            else:
                self.engine.restore(saved.engine_mark)

    def release(self, saved: "_SessionToken") -> None:
        """Commit: drop the marks and truncate unreachable journal entries."""
        self.journal.release(saved.mark)
        if saved.engine_mark is not None and self.engine is not None:
            self.engine.release(saved.engine_mark)


@dataclass(frozen=True)
class _SessionToken:
    """An O(1) transaction token over a :class:`_CompilerSession`."""

    mark: object  # JournalMark into the session's journal
    engine_mark: Optional[object]  # EngineMark, when an engine existed


@dataclass
class MerlinCompiler:
    """Compiles Merlin policies against a physical topology.

    ``placements`` maps packet-processing function names (``"dpi"``,
    ``"nat"``, ...) to the locations able to host them — the auxiliary input
    described in §3.2.  ``heuristic`` selects the path-selection objective,
    ``overlap`` selects how the pre-processor treats overlapping statement
    predicates, and ``generate_code`` can be disabled for pure provisioning
    benchmarks.

    Provisioning knobs — solver backend, partitioning, worker pool,
    footprint slack, slack widening, warm starts, and the solve-fabric
    layer (``options.fabric`` worker pool, ``options.component_cache``
    content-addressed solution cache — :mod:`repro.fabric`) — live in a
    single :class:`~repro.core.options.ProvisionOptions` passed as
    ``options`` and forwarded unchanged to :func:`provision` and the
    incremental engine, so ``compile()`` and ``recompile()`` provably solve
    under the same configuration, on the same worker pool, against the
    same cache.  The legacy ``solver`` / ``max_solver_workers`` /
    ``footprint_slack`` keyword arguments still work (they override the
    corresponding option and emit :class:`DeprecationWarning`); after
    construction the three attributes are re-bound to the resolved values,
    so existing readers keep working.
    """

    topology: Topology
    placements: Mapping[str, Iterable[str]] = field(default_factory=dict)
    heuristic: PathSelectionHeuristic = PathSelectionHeuristic.MIN_MAX_RATIO
    overlap: str = "reject"
    add_catch_all: bool = True
    generate_code: bool = True
    localization_weights: Optional[Mapping[str, float]] = None
    options: Optional[ProvisionOptions] = None
    solver: Optional[object] = _UNSET
    max_solver_workers: int = _UNSET
    footprint_slack: Optional[int] = _UNSET
    _session: Optional[_CompilerSession] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        resolved = coalesce_options(
            self.options,
            owner="MerlinCompiler",
            stacklevel=4,
            solver=self.solver,
            max_workers=self.max_solver_workers,
            footprint_slack=self.footprint_slack,
        )
        self.options = resolved
        self.solver = resolved.backend()
        self.max_solver_workers = resolved.max_workers
        self.footprint_slack = resolved.footprint_slack

    def compile(self, policy: Union[str, Policy]) -> CompilationResult:
        """Compile a policy (source text or AST) into a :class:`CompilationResult`.

        With a telemetry recorder active (``repro.telemetry``), the
        compile emits one trace: a root ``compile`` span with
        ``logical_construction``, per-round ``partition``, per-component
        ``component_solve`` (adopted from pool workers, backend name
        attached), ``rateless``, and ``codegen`` children.  The reported
        ``statistics.total_seconds`` *is* the root span's duration.
        """
        with telemetry.span("compile") as compile_span:
            result = self._compile(policy, compile_span)
        result.statistics.total_seconds = compile_span.duration
        return result

    def _compile(self, policy: Union[str, Policy], compile_span) -> CompilationResult:
        # A failed compile must not leave the previous compile's session
        # behind: recompile() against a policy the caller has since replaced
        # would silently mix the two.
        self._session = None
        if isinstance(policy, str):
            policy = parse_policy(policy, topology=self.topology)

        preprocess_result = preprocess(
            policy, overlap=self.overlap, add_catch_all=self.add_catch_all
        )
        preprocessed = preprocess_result.policy
        local_rates = localize(preprocessed, weights=self.localization_weights)

        endpoints: Dict[str, Tuple[Optional[str], Optional[str]]] = {}
        for statement in preprocessed.statements:
            endpoints[statement.identifier] = infer_endpoints(statement, self.topology)

        guaranteed = [
            statement
            for statement in preprocessed.statements
            if local_rates[statement.identifier].is_guaranteed
        ]
        best_effort = [
            statement
            for statement in preprocessed.statements
            if not local_rates[statement.identifier].is_guaranteed
        ]

        # Logical topologies are memoized per compile on the statement's
        # (path expression, endpoint pair) shape: statements sharing that
        # shape produce identical product graphs (the topology and function
        # placements are fixed for the whole compile), so duplicates reuse
        # the built graph instead of recompiling the automaton and re-running
        # the product construction.
        logical_cache: Dict[
            Tuple[Regex, Optional[str], Optional[str]], "LogicalTopology"
        ] = {}

        # --- Guaranteed traffic: logical topologies + MIP (§3.2) -------------
        lp_construction_seconds = 0.0
        with telemetry.span(
            "logical_construction", statements=len(guaranteed)
        ) as construction_span:
            logical_topologies = {}
            base_footprints: Dict[str, frozenset] = {}
            for statement in guaranteed:
                source, destination = endpoints[statement.identifier]
                if source is None or destination is None:
                    raise ProvisioningError(
                        f"statement {statement.identifier!r} requests a bandwidth "
                        "guarantee but its source/destination hosts cannot be "
                        "determined from its predicate or path expression"
                    )
                logical = self._logical_for(
                    logical_cache, statement, source, destination
                )
                logical_topologies[statement.identifier] = logical
                base_footprints[statement.identifier] = frozenset(
                    logical.physical_links_used()
                )
        lp_construction_seconds += construction_span.duration

        provisioning = provision(
            guaranteed,
            logical_topologies,
            local_rates,
            self.topology,
            self.placements,
            heuristic=self.heuristic,
            options=self.options,
        )
        lp_construction_seconds += provisioning.lp_construction_seconds

        paths: Dict[str, PathAssignment] = dict(provisioning.paths)
        infeasible: List[str] = []

        # --- Best-effort traffic: sink trees and product-graph BFS (§3.3) ----
        with telemetry.span(
            "rateless", statements=len(best_effort)
        ) as rateless_span:
            best_effort_paths: Dict[str, PathAssignment] = {}
            needs_sink_trees = any(
                _is_unconstrained_path(statement.path) for statement in best_effort
            )
            sink_trees = compute_sink_trees(self.topology) if needs_sink_trees else {}
            for statement in best_effort:
                if _is_unconstrained_path(statement.path):
                    continue
                source, destination = endpoints[statement.identifier]
                logical = self._logical_for(logical_cache, statement, source, destination)
                base_footprints[statement.identifier] = frozenset(
                    logical.physical_links_used()
                )
                assignment = self._best_effort_assignment(statement, logical)
                if assignment is None:
                    infeasible.append(statement.identifier)
                    continue
                best_effort_paths[statement.identifier] = assignment
            paths.update(best_effort_paths)
        rateless_seconds = rateless_span.duration

        rates = {
            identifier: RateAllocation.from_local_rates(local)
            for identifier, local in local_rates.items()
        }

        # --- Code generation (§3.4) -------------------------------------------
        codegen_seconds = 0.0
        instructions = None
        if self.generate_code:
            with telemetry.span("codegen") as codegen_span:
                instructions = CodeGenerator(topology=self.topology).generate(
                    preprocessed,
                    paths,
                    rates,
                    sink_trees,
                    endpoints=endpoints,
                    infeasible_statements=tuple(infeasible),
                )
            codegen_seconds = codegen_span.duration

        compile_span.annotate(
            statements=len(preprocessed.statements),
            guaranteed=len(guaranteed),
        )
        statistics = CompilationStatistics(
            lp_construction_seconds=lp_construction_seconds,
            lp_solve_seconds=provisioning.lp_solve_seconds,
            rateless_seconds=rateless_seconds,
            codegen_seconds=codegen_seconds,
            # Span-derived: compile() overwrites this with the root
            # ``compile`` span's duration once the span closes.
            total_seconds=0.0,
            num_statements=len(preprocessed.statements),
            num_guaranteed_statements=len(guaranteed),
            num_mip_variables=provisioning.num_variables,
            num_mip_constraints=provisioning.num_constraints,
        )
        statistics.record_provisioning(provisioning)

        self._session = _CompilerSession(
            statements={
                statement.identifier: statement
                for statement in preprocessed.statements
            },
            local_rates=dict(local_rates),
            endpoints=endpoints,
            logical_cache=logical_cache,
            guaranteed_logical=logical_topologies,
            best_effort_paths=best_effort_paths,
            sink_trees=sink_trees,
            infeasible=infeasible,
            provisioning=provisioning,
            active_topology=self.topology,
            base_footprints=base_footprints,
            generated_default=preprocess_result.added_default,
            seq={
                statement.identifier: index
                for index, statement in enumerate(preprocessed.statements)
            },
            next_seq=len(preprocessed.statements),
        )

        result = CompilationResult(
            policy=preprocessed,
            paths=paths,
            rates=rates,
            sink_trees=sink_trees,
            instructions=instructions,
            statistics=statistics,
            link_reservations=provisioning.link_reservations,
        )
        result.attach_link_capacities(self._link_capacities())
        self._session.last_result = result
        return result

    # -- the incremental fast path ------------------------------------------------

    def recompile(self, delta) -> CompilationResult:
        """Apply a policy or topology delta incrementally.

        Accepts a :class:`~repro.incremental.delta.PolicyDelta` (statement
        membership / rate changes) or a
        :class:`~repro.incremental.delta.TopologyDelta` (link and node
        failures / recoveries, dispatched to the topology path below).
        Requires a prior :meth:`compile` (whose session seeds the engine);
        re-solves only the link-disjoint MIP components the delta touches
        and returns a full :class:`CompilationResult` for the updated
        policy whose paths, rates, link reservations, and instructions are
        identical to a from-scratch compile.  The result's ``policy.formula``
        is the *localized* (per-statement) form reconstructed from the
        session's rates: deltas describe statement-level rate changes, so
        aggregate multi-identifier clauses of the originally compiled
        formula are not preserved through recompiles.
        Pre-processing is applied incrementally to keep that equivalence:
        added statements pass the session's overlap discipline
        (``"reject"`` checks them against the existing statements,
        ``"priority"`` subtracts all existing predicates — appended
        statements are lowest-priority; removals under ``"priority"`` are
        refused because earlier-statement subtraction is baked into later
        predicates), and the generated catch-all statement's remainder
        predicate is recomputed whenever the statement population changes.

        Every recompile is a *transaction*: the delta applies under an
        undo-journal checkpoint of the session (and its engine) — O(1) to
        open, O(delta) to roll back — commits on successful solve + code
        generation, and rolls back on **any** failure — a delta rejected by validation (unknown identifiers,
        overlap violations, unprovisionable guarantees), an infeasible
        solve, or a code-generation error all leave the session usable and
        byte-equivalent to one that never saw the delta (the error still
        propagates, e.g. :class:`ProvisioningError` for infeasibility).
        ``has_session`` stays True; the next recompile works normally.
        """
        if self._session is None:
            raise ProvisioningError(
                "recompile() requires a prior compile(); no session is active"
            )
        from ..incremental.delta import TopologyDelta

        if delta.is_empty():
            # No-op delta: nothing to validate, solve, or regenerate — and
            # nothing to protect, so no transaction is opened and the undo
            # journal stays empty.  Control planes polling with empty
            # deltas (or coalescing batches down to nothing) pay nothing.
            return self._noop_result(self._session)
        if isinstance(delta, TopologyDelta):
            return self._recompile_topology(delta)
        if delta.remove and self.overlap == "priority":
            raise ProvisioningError(
                "overlap='priority' sessions cannot remove statements "
                "incrementally: first-match-wins rewriting subtracted the "
                "removed predicates from later statements; run a full "
                "compile() of the updated policy instead"
            )
        with telemetry.span(
            "recompile",
            kind="policy",
            changes=delta.num_changes() if hasattr(delta, "num_changes") else 0,
        ) as recompile_span:
            session = self._session
            prepared_adds = self._validate_delta(session, delta)
            engine = self._ensure_engine(session)
            saved = session.checkpoint()
            telemetry.gauge("journal_depth", len(session.journal))

            rateless_seconds = 0.0
            try:
                for identifier in delta.remove:
                    self._remove_statement(session, engine, identifier)
                with telemetry.span("rateless") as rateless_span:
                    for added in prepared_adds:
                        self._add_statement(session, engine, added)
                    for update in delta.update_rates:
                        self._update_rates(session, engine, update)
                    if delta.remove or delta.add:
                        self._refresh_catch_all(session)
                    self._refresh_sink_trees(session)
                rateless_seconds += rateless_span.duration
                result = self._finalize_recompile(session, rateless_seconds)
            except Exception:
                # The delta was already applied to the session/engine when the
                # failure surfaced (an infeasible solve, a code-generation
                # error).  Roll back to the checkpoint: the session is restored
                # to its exact pre-delta state — statement population, rates,
                # sink trees, cached component solutions, incumbents, revision
                # counter — so it keeps matching the last result the caller
                # successfully received, and the next recompile() proceeds
                # normally.  Callers that withdraw on error (the negotiator)
                # need only revert their own policy.
                recompile_span.annotate(rolled_back=True)
                telemetry.counter("transactions_rolled_back")
                session.restore(saved)
                raise
            else:
                telemetry.counter("transactions_committed")
            finally:
                # Commit (or, after a rollback, retire the still-live mark):
                # drops the checkpoint and truncates the undo journal.
                session.release(saved)
        result.statistics.total_seconds = recompile_span.duration
        return result

    def _noop_result(self, session) -> CompilationResult:
        """Re-package the committed state for an empty delta.

        The allocation payload (policy, paths, rates, instructions) is the
        last committed result's, shared structurally — nothing was solved
        or regenerated, and the statistics say so: zero timings, zero
        dirty partitions, no widening retries.  Population-shape counters
        (statement counts, partition count, MIP size) still describe the
        committed state.
        """
        last = session.last_result
        statistics = dataclasses.replace(
            last.statistics,
            lp_construction_seconds=0.0,
            lp_solve_seconds=0.0,
            rateless_seconds=0.0,
            codegen_seconds=0.0,
            total_seconds=0.0,
            dirty_partitions=0,
            slack_retries=0,
            component_solve_seconds=(),
        )
        result = CompilationResult(
            policy=last.policy,
            paths=last.paths,
            rates=last.rates,
            sink_trees=last.sink_trees,
            instructions=last.instructions,
            statistics=statistics,
            link_reservations=last.link_reservations,
        )
        result.attach_link_capacities(self._link_capacities(self._active(session)))
        return result

    def _recompile_topology(self, delta) -> CompilationResult:
        """Apply a :class:`~repro.incremental.delta.TopologyDelta`.

        The session tracks the cumulative failed-element sets; each delta
        edits them, derives the new *active* topology from the pristine one,
        and rebuilds only the statements whose pristine untightened product
        footprint touches a changed link (the product construction is
        monotone in the topology, so an untouched footprint proves the
        statement's product graph — and therefore its component model —
        is unchanged).  Rebuilt statements whose edge set actually changed
        bump their engine revision; the shared resolve then re-solves
        exactly the affected components, widening footprint slack where a
        failure pruned away every surviving path.  The same transaction
        discipline as the policy path applies: any failure (validation,
        infeasible solve, codegen) rolls the session — failed sets, active
        topology, logical topologies, engine state — back to the
        pre-delta checkpoint.
        """
        with telemetry.span("recompile", kind="topology") as recompile_span:
            result = self._recompile_topology_in_span(delta, recompile_span)
        result.statistics.total_seconds = recompile_span.duration
        return result

    def _recompile_topology_in_span(self, delta, recompile_span) -> CompilationResult:
        session = self._session
        engine = self._ensure_engine(session)
        self._validate_topology_delta(session, delta)
        saved = session.checkpoint()
        telemetry.gauge("journal_depth", len(session.journal))
        try:
            with telemetry.span("rateless") as rateless_span:
                failed_links = set(session.failed_links)
                failed_links.update(delta.fail_links)
                failed_links.difference_update(delta.recover_links)
                failed_nodes = set(session.failed_nodes)
                failed_nodes.update(delta.fail_nodes)
                failed_nodes.difference_update(delta.recover_nodes)
                active = (
                    self.topology.without(links=failed_links, nodes=failed_nodes)
                    if failed_links or failed_nodes
                    else self.topology
                )
                journal = session.journal
                journal.set_attr(session, "active_topology", active)
                journal.set_attr(session, "failed_links", frozenset(failed_links))
                journal.set_attr(session, "failed_nodes", frozenset(failed_nodes))
                # Cached products were built against the previous active
                # topology; the (path, endpoints) keys do not encode it.  The
                # rebind is journaled (rollback reinstates the old cache dict);
                # entries added to the fresh dict inside this transaction are
                # simply discarded with it.
                journal.set_attr(session, "logical_cache", {})
                engine.set_topology(active)
                self._rebuild_affected(
                    session, engine, active, self._changed_links(delta)
                )
                if session.sink_trees:
                    # Population unchanged, so *whether* sink trees are
                    # needed is unchanged — but their routes must follow
                    # the active fabric.
                    journal.set_attr(
                        session, "sink_trees", compute_sink_trees(active)
                    )
            result = self._finalize_recompile(session, rateless_span.duration)
        except Exception:
            # Same transaction discipline as the policy path; the engine
            # journal recorded set_topology(), so restore() also reverts it.
            recompile_span.annotate(rolled_back=True)
            telemetry.counter("transactions_rolled_back")
            session.restore(saved)
            raise
        else:
            telemetry.counter("transactions_committed")
        finally:
            session.release(saved)
        return result

    def _validate_topology_delta(self, session, delta) -> None:
        """Reject a topology delta before any session mutation.

        Failures and recoveries are absolute edits: failing an
        already-failed element (including twice within one delta) or
        recovering a healthy one is an error, so replaying an event stream
        is unambiguous.  Unknown links/nodes raise
        :class:`~repro.errors.TopologyError` from the pristine-topology
        lookups.  Within one delta, failures apply before recoveries.
        """
        failed_links = set(session.failed_links)
        for source, target in delta.fail_links:
            self.topology.link(source, target)
            if (source, target) in failed_links:
                raise ProvisioningError(
                    f"link {source!r}-{target!r} is already failed"
                )
            failed_links.add((source, target))
        for source, target in delta.recover_links:
            if (source, target) not in failed_links:
                raise ProvisioningError(
                    f"cannot recover link {source!r}-{target!r}: it is not failed"
                )
            failed_links.discard((source, target))
        failed_nodes = set(session.failed_nodes)
        for name in delta.fail_nodes:
            node = self.topology.node(name)
            if node.is_host:
                raise ProvisioningError(
                    f"cannot fail host {name!r}: only switches and "
                    "middleboxes can fail"
                )
            if name in failed_nodes:
                raise ProvisioningError(f"node {name!r} is already failed")
            failed_nodes.add(name)
        for name in delta.recover_nodes:
            if name not in failed_nodes:
                raise ProvisioningError(
                    f"cannot recover node {name!r}: it is not failed"
                )
            failed_nodes.discard(name)

    def _changed_links(self, delta) -> frozenset:
        """The physical links a topology delta touches, as sorted pairs.

        A failed/recovered node contributes all its pristine incident
        links — exactly the edges its disappearance removes from (or its
        return restores to) the active topology.
        """
        changed = set(delta.fail_links) | set(delta.recover_links)
        for name in tuple(delta.fail_nodes) + tuple(delta.recover_nodes):
            for neighbor in self.topology.neighbors(name):
                changed.add(tuple(sorted((name, neighbor))))
        return frozenset(changed)

    def _rebuild_affected(self, session, engine, active, changed) -> None:
        """Rebuild the product graphs whose pristine footprint intersects
        ``changed`` links, against the ``active`` topology.

        Guaranteed statements whose rebuilt edge set differs replace their
        logical in the engine (revision bump → affected components
        re-solve); an identical edge set (e.g. a recovered link no
        cost-bounded path ever used) is skipped entirely, keeping cached
        component solutions valid.  A guaranteed statement with *no*
        surviving path raises (and rolls the transaction back) — the
        network can no longer carry its guarantee at all.  Constrained
        best-effort statements re-run their product-graph BFS and may move
        between feasible and infeasible.
        """
        for identifier, footprint in session.base_footprints.items():
            if not (footprint & changed):
                continue
            statement = session.statements.get(identifier)
            if statement is None:
                continue
            source, destination = session.endpoints[identifier]
            logical = self._logical_for(
                session.logical_cache, statement, source, destination,
                topology=active,
            )
            if session.local_rates[identifier].is_guaranteed:
                if logical.num_edges() == 0:
                    raise ProvisioningError(
                        f"statement {identifier!r} has no feasible path "
                        "satisfying its path expression on the degraded "
                        "topology"
                    )
                previous = session.guaranteed_logical[identifier]
                if set(previous.edges) == set(logical.edges):
                    continue
                session.journal.set_item(
                    session.guaranteed_logical, identifier, logical
                )
                engine.replace_logical(identifier, logical)
            else:
                assignment = self._best_effort_assignment(
                    statement, logical, topology=active
                )
                session.journal.del_item(session.best_effort_paths, identifier)
                if identifier in session.infeasible:
                    session.journal.list_remove(session.infeasible, identifier)
                if assignment is None:
                    session.journal.list_append(session.infeasible, identifier)
                else:
                    session.journal.set_item(
                        session.best_effort_paths, identifier, assignment
                    )

    def _finalize_recompile(
        self, session, rateless_seconds: float
    ) -> CompilationResult:
        """Solve, regenerate, and package the post-delta result.

        The shared tail of the policy- and topology-delta paths; runs
        inside the caller's transaction try-block, so a raise here (an
        infeasible solve, a codegen error) triggers the rollback.
        """
        active = session.active_topology or self.topology
        provisioning = session.engine.resolve()
        session.journal.set_attr(session, "provisioning", provisioning)

        paths: Dict[str, PathAssignment] = dict(provisioning.paths)
        paths.update(session.best_effort_paths)
        # Iterate in sequence-stamp order, not raw dict order: journaled
        # rollback restores dict contents but can re-insert undeleted keys
        # at the end, and statement order is byte-visible downstream
        # (codegen allocates VLANs/queues in policy order).
        ordered = session.ordered_ids()
        rates = {
            identifier: RateAllocation.from_local_rates(
                session.local_rates[identifier]
            )
            for identifier in ordered
        }
        policy = Policy(
            statements=tuple(session.statements[i] for i in ordered),
            formula=localized_formula(
                {i: session.local_rates[i] for i in ordered}
            ),
        )

        codegen_seconds = 0.0
        instructions = None
        if self.generate_code:
            with telemetry.span("codegen") as codegen_span:
                instructions = CodeGenerator(topology=active).generate(
                    policy,
                    paths,
                    rates,
                    session.sink_trees,
                    endpoints=session.endpoints,
                    infeasible_statements=tuple(session.infeasible),
                )
            codegen_seconds = codegen_span.duration

        guaranteed = [
            identifier
            for identifier, local in session.local_rates.items()
            if local.is_guaranteed
        ]
        statistics = CompilationStatistics(
            lp_construction_seconds=provisioning.lp_construction_seconds,
            lp_solve_seconds=provisioning.lp_solve_seconds,
            rateless_seconds=rateless_seconds,
            codegen_seconds=codegen_seconds,
            # Span-derived: the recompile paths overwrite this with the
            # ``recompile`` span's duration once the span closes.
            total_seconds=0.0,
            num_statements=len(session.statements),
            num_guaranteed_statements=len(guaranteed),
            num_mip_variables=provisioning.num_variables,
            num_mip_constraints=provisioning.num_constraints,
        )
        statistics.record_provisioning(provisioning)

        result = CompilationResult(
            policy=policy,
            paths=paths,
            rates=rates,
            sink_trees=session.sink_trees,
            instructions=instructions,
            statistics=statistics,
            link_reservations=provisioning.link_reservations,
        )
        result.attach_link_capacities(self._link_capacities(active))
        session.journal.set_attr(session, "last_result", result)
        return result

    @property
    def has_session(self) -> bool:
        """Whether a compile session is active (recompile is available)."""
        return self._session is not None

    def session(self):
        """A :class:`~repro.core.session.Session` facade over the live session.

        Requires a prior :meth:`compile`.  The facade is the supported
        surface for callers that stream changes — scenario drivers, the
        negotiator — offering ``apply(delta_or_event)`` plus explicit
        ``checkpoint()`` / ``rollback()`` without reaching into compiler or
        engine internals.  It can be used as a context manager; several
        facades over one compiler share the same underlying session.
        """
        from .session import Session

        if self._session is None:
            raise ProvisioningError(
                "session() requires a prior compile(); no session is active"
            )
        return Session(self)

    def session_statement(self, identifier: str) -> Optional[Statement]:
        """The active session's current statement for ``identifier``.

        Returns ``None`` when no session is active or the identifier is
        unknown.  Delegated negotiators use this to rewrite their
        scope-narrowed deltas against the global statement set before
        re-provisioning.
        """
        if self._session is None:
            return None
        return self._session.statements.get(identifier)

    def session_rates(self, identifier: str) -> Optional[LocalRates]:
        """The active session's current localized rates for ``identifier``.

        ``None`` when no session is active or the identifier is unknown.
        The delegated-delta rewrite uses this to keep the global guarantee
        and cap on statements whose rate clauses did not survive delegation
        (a dropped ``min(a, b)`` clause must not demote the statement).
        """
        if self._session is None:
            return None
        return self._session.local_rates.get(identifier)

    def prepare_incremental(self) -> None:
        """Eagerly build the incremental engine for the active session.

        ``recompile`` creates the engine lazily on first use; long-running
        controllers call this once after :meth:`compile` so the statement
        bookkeeping and the seeding of the component-solution cache are
        paid at session setup rather than inside the first delta's latency.
        Session setup no longer builds the spliced live model at all — the
        engine materializes it lazily, only if ``solve_live()`` (the
        splice-equivalence oracle) is ever called.
        """
        if self._session is None:
            raise ProvisioningError(
                "prepare_incremental() requires a prior compile()"
            )
        self._ensure_engine(self._session)

    # -- session internals ----------------------------------------------------------

    def _active(self, session: _CompilerSession) -> Topology:
        """The topology the session currently compiles against."""
        return session.active_topology or self.topology

    def _ensure_engine(self, session: _CompilerSession):
        if session.engine is None:
            from ..incremental.engine import IncrementalProvisioner

            engine = IncrementalProvisioner(
                self._active(session),
                self.placements,
                heuristic=self.heuristic,
                options=self.options,
            )
            for identifier, logical in session.guaranteed_logical.items():
                local = session.local_rates[identifier]
                engine.add_statement(
                    session.statements[identifier],
                    local.guarantee,
                    cap=local.cap,
                    logical=logical,
                )
            engine.prime(
                session.provisioning.partition_solutions,
                infeasible=session.provisioning.infeasible_components,
            )
            session.engine = engine
        return session.engine

    def _remove_statement(self, session, engine, identifier: str) -> None:
        if identifier not in session.statements:
            raise ProvisioningError(
                f"cannot remove unknown statement {identifier!r}"
            )
        journal = session.journal
        if engine.has_statement(identifier):
            engine.remove_statement(identifier)
            journal.del_item(session.guaranteed_logical, identifier)
        journal.del_item(session.statements, identifier)
        journal.del_item(session.local_rates, identifier)
        journal.del_item(session.endpoints, identifier)
        journal.del_item(session.best_effort_paths, identifier)
        journal.del_item(session.base_footprints, identifier)
        journal.del_item(session.seq, identifier)
        if identifier in session.infeasible:
            journal.list_remove(session.infeasible, identifier)

    def _add_statement(self, session, engine, added) -> None:
        statement = added.statement
        identifier = statement.identifier
        if identifier in session.statements:
            raise ProvisioningError(
                f"statement {identifier!r} already exists; remove it first "
                "(a changed statement appears in both remove and add)"
            )
        local = LocalRates(
            identifier=identifier, guarantee=added.guarantee, cap=added.cap
        )
        journal = session.journal
        journal.set_item(session.statements, identifier, statement)
        session.stamp(identifier)
        journal.set_item(session.local_rates, identifier, local)
        journal.set_item(
            session.endpoints,
            identifier,
            infer_endpoints(statement, self._active(session)),
        )
        if local.is_guaranteed:
            self._enter_guaranteed(session, engine, statement, local)
        else:
            self._enter_best_effort(session, statement)
            if not _is_unconstrained_path(statement.path):
                journal.set_item(
                    session.base_footprints,
                    identifier,
                    self._base_footprint(session, statement),
                )

    def _update_rates(self, session, engine, update) -> None:
        identifier = update.identifier
        if identifier not in session.statements:
            raise ProvisioningError(
                f"cannot update rates of unknown statement {identifier!r}"
            )
        statement = session.statements[identifier]
        local = LocalRates(
            identifier=identifier, guarantee=update.guarantee, cap=update.cap
        )
        was_guaranteed = engine.has_statement(identifier)
        session.journal.set_item(session.local_rates, identifier, local)
        if local.is_guaranteed and was_guaranteed:
            engine.update_rates(identifier, local.guarantee, cap=local.cap)
        elif local.is_guaranteed and not was_guaranteed:
            # Promoted from best-effort: enters the MIP.
            self._enter_guaranteed(session, engine, statement, local)
        elif not local.is_guaranteed and was_guaranteed:
            # Demoted to best-effort: leaves the MIP.
            engine.remove_statement(identifier)
            session.journal.del_item(session.guaranteed_logical, identifier)
            self._enter_best_effort(session, statement)

    def _enter_guaranteed(self, session, engine, statement, local) -> None:
        """Put a guarantee-bearing statement into the MIP.

        Shared by adds and promotions; ``_validate_delta`` already proved
        the statement provisionable (endpoints inferable, logical topology
        non-empty), so the raise here only guards direct misuse.
        """
        identifier = statement.identifier
        source, destination = session.endpoints[identifier]
        if source is None or destination is None:
            raise ProvisioningError(
                f"statement {identifier!r} requests a bandwidth guarantee "
                "but its source/destination hosts cannot be determined "
                "from its predicate or path expression"
            )
        logical = self._logical_for(
            session.logical_cache, statement, source, destination,
            topology=self._active(session),
        )
        journal = session.journal
        journal.set_item(session.guaranteed_logical, identifier, logical)
        journal.del_item(session.best_effort_paths, identifier)
        if identifier not in session.base_footprints:
            # Adds record their footprint up front; this covers promotions
            # of unconstrained best-effort statements (never tracked —
            # sink trees serve them) into the MIP.
            journal.set_item(
                session.base_footprints,
                identifier,
                self._base_footprint(session, statement),
            )
        engine.add_statement(
            statement, local.guarantee, cap=local.cap, logical=logical
        )

    def _enter_best_effort(self, session, statement) -> None:
        """Record a best-effort statement's path assignment, if any.

        Unconstrained paths are served by sink trees (refreshed centrally
        after the delta applies); constrained ones take the shortest path
        through their logical topology or are marked infeasible.
        """
        if _is_unconstrained_path(statement.path):
            return
        identifier = statement.identifier
        source, destination = session.endpoints[identifier]
        active = self._active(session)
        logical = self._logical_for(
            session.logical_cache, statement, source, destination,
            topology=active,
        )
        assignment = self._best_effort_assignment(statement, logical, topology=active)
        if assignment is None:
            session.journal.list_append(session.infeasible, identifier)
        else:
            session.journal.set_item(
                session.best_effort_paths, identifier, assignment
            )

    def _base_footprint(self, session, statement: Statement) -> frozenset:
        """The statement's untightened product footprint on the *pristine*
        topology.

        The topology-delta path tests affectedness against pristine
        footprints: the product construction is monotone in the topology,
        so any active product is a subgraph of the pristine one, and a
        recovered link can only matter to statements whose pristine product
        could use it.  When no failures are active the session cache (built
        on the pristine topology) serves the build; during failures the
        cache holds *active* products, so the pristine one is built
        uncached.
        """
        if self._active(session) is self.topology:
            source, destination = session.endpoints[statement.identifier]
            logical = self._logical_for(
                session.logical_cache, statement, source, destination
            )
        else:
            source, destination = infer_endpoints(statement, self.topology)
            logical = build_logical_topology(
                statement,
                self.topology,
                self.placements,
                source=source,
                destination=destination,
            )
        return frozenset(logical.physical_links_used())

    def _real_statements(self, session) -> List[Statement]:
        """The session's statements minus the preprocessor's *generated*
        catch-all (a user-authored statement named "default" is real).

        Sequence-stamp order, not raw dict order: the order feeds
        priority-mode predicate narrowing and the catch-all's remainder
        predicate, both byte-visible in the compiled policy, and dict
        order is not rollback-stable (see ``_CompilerSession.seq``).
        """
        return [
            session.statements[identifier]
            for identifier in session.ordered_ids()
            if not (session.generated_default and identifier == DEFAULT_STATEMENT_ID)
        ]

    def _validate_delta(self, session, delta) -> List:
        """Validate a whole delta before any session mutation.

        Every check that can reject a delta — unknown removals/updates,
        identifier clashes, the overlap discipline on added statements
        (including add-vs-add overlap within the same delta), and
        provisionability of guarantee-bearing adds/promotions (inferable
        endpoints, non-empty logical topology) — runs here, so a rejected
        delta is side-effect-free.  Returns the added statements with the
        overlap preprocessing (priority narrowing) applied, in delta order.
        Only a provisioning infeasibility discovered later, at solve time,
        can still invalidate the session.
        """
        removed = set()
        for identifier in delta.remove:
            if identifier not in session.statements or (
                session.generated_default and identifier == DEFAULT_STATEMENT_ID
            ):
                # The generated catch-all is not a user statement: removing
                # it would silently no-op (the refresh recreates it), so it
                # is as unknown as any other non-real identifier.
                raise ProvisioningError(
                    f"cannot remove unknown statement {identifier!r}"
                )
            if identifier in removed:
                raise ProvisioningError(
                    f"statement {identifier!r} is removed twice in one delta"
                )
            removed.add(identifier)
        existing = [
            statement
            for statement in self._real_statements(session)
            if statement.identifier not in removed
        ]
        existing_ids = {statement.identifier for statement in existing}
        prepared: List = []
        for added in delta.add:
            identifier = added.statement.identifier
            if identifier in existing_ids or (
                session.generated_default and identifier == DEFAULT_STATEMENT_ID
            ):
                raise ProvisioningError(
                    f"statement {identifier!r} already exists; remove it first "
                    "(a changed statement appears in both remove and add)"
                )
            preprocessed = self._preprocess_added(existing, added)
            prepared.append(preprocessed)
            existing.append(preprocessed.statement)
            existing_ids.add(identifier)
        if (
            self.add_catch_all
            and DEFAULT_STATEMENT_ID in existing_ids
            and not any(isinstance(s.predicate, PTrue) for s in existing)
        ):
            # The post-delta statement set needs a generated catch-all but a
            # user statement occupies its identifier — exactly the case
            # preprocess() rejects; catch it before mutating the session.
            raise PolicyError(
                f"cannot add catch-all: identifier {DEFAULT_STATEMENT_ID!r} "
                "already used"
            )
        prepared_by_id = {entry.statement.identifier: entry for entry in prepared}
        for added in prepared:
            local = LocalRates(
                identifier=added.statement.identifier,
                guarantee=added.guarantee,
                cap=added.cap,
            )
            if local.is_guaranteed:
                self._check_provisionable(session, added.statement)
        for update in delta.update_rates:
            if update.identifier not in existing_ids:
                raise ProvisioningError(
                    f"cannot update rates of unknown statement {update.identifier!r}"
                )
            local = LocalRates(
                identifier=update.identifier,
                guarantee=update.guarantee,
                cap=update.cap,
            )
            if local.is_guaranteed:
                entry = prepared_by_id.get(update.identifier)
                statement = (
                    entry.statement
                    if entry is not None
                    else session.statements[update.identifier]
                )
                self._check_provisionable(session, statement)
        return prepared

    def _check_provisionable(self, session, statement: Statement) -> None:
        """Reject a guarantee-bearing statement that can never enter the MIP.

        Both conditions — inferable endpoints and a non-empty pruned logical
        topology — are knowable from the statement and topology alone, so
        they are checked during delta validation rather than surfacing
        mid-apply and destroying the session.  The logical build is memoized
        in the session cache, so the apply phase pays nothing extra.
        """
        active = self._active(session)
        source, destination = infer_endpoints(statement, active)
        if source is None or destination is None:
            raise ProvisioningError(
                f"statement {statement.identifier!r} requests a bandwidth "
                "guarantee but its source/destination hosts cannot be "
                "determined from its predicate or path expression"
            )
        logical = self._logical_for(
            session.logical_cache, statement, source, destination,
            topology=active,
        )
        if logical.num_edges() == 0:
            raise ProvisioningError(
                f"statement {statement.identifier!r} has no feasible path "
                "satisfying its path expression"
            )

    def _preprocess_added(self, existing: List[Statement], added):
        """Apply the session's overlap discipline to an added statement.

        Mirrors what :func:`~repro.core.preprocessor.preprocess` would do to
        the statement had it been part of a from-scratch compile of
        ``existing`` + the addition: reject mode checks it for overlap
        against the existing statements; priority mode narrows it by
        subtracting every existing predicate (an appended statement has the
        lowest priority) and rejects it when completely shadowed; trust mode
        passes it through unchanged.
        """
        if self.overlap == "trust":
            return added
        statement = added.statement
        if self.overlap == "reject":
            conflicts = [
                other.identifier
                for other in existing
                if overlaps(statement.predicate, other.predicate)
            ]
            if conflicts:
                raise PolicyError(
                    f"statement {statement.identifier!r} overlaps existing "
                    f"statements: {', '.join(conflicts)}; use "
                    "overlap='priority' or recompile from scratch"
                )
            return added
        # overlap == "priority": first-match-wins against everything existing.
        if not existing:
            return added
        narrowed = pred_and(
            statement.predicate,
            pred_not(pred_or(*[other.predicate for other in existing])),
        )
        if not is_satisfiable(narrowed):
            raise PolicyError(
                f"statement {statement.identifier!r} is completely shadowed "
                "by existing statements"
            )
        if narrowed is statement.predicate:
            return added
        return dataclasses.replace(
            added,
            statement=Statement(
                identifier=statement.identifier,
                predicate=narrowed,
                path=statement.path,
            ),
        )

    def _refresh_catch_all(self, session) -> None:
        """Recompute the generated catch-all after a membership change.

        Keeps the session equivalent to a from-scratch preprocess of the
        current statements: the catch-all's remainder predicate is the
        negation of everything matched, it disappears when some statement
        already matches all packets, and it (re)appears when coverage
        becomes partial again.  A user-authored statement that happens to be
        named "default" is never touched (and, exactly like preprocess,
        blocks the catch-all from being generated).
        """
        if not self.add_catch_all:
            return
        others = self._real_statements(session)
        journal = session.journal
        if session.generated_default:
            journal.del_item(session.statements, DEFAULT_STATEMENT_ID)
            journal.del_item(session.local_rates, DEFAULT_STATEMENT_ID)
            journal.del_item(session.endpoints, DEFAULT_STATEMENT_ID)
            journal.del_item(session.seq, DEFAULT_STATEMENT_ID)
            journal.set_attr(session, "generated_default", False)
        if any(isinstance(statement.predicate, PTrue) for statement in others):
            return
        if any(
            statement.identifier == DEFAULT_STATEMENT_ID for statement in others
        ):
            raise PolicyError(
                f"cannot add catch-all: identifier {DEFAULT_STATEMENT_ID!r} "
                "already used"
            )
        remainder = (
            pred_and(*[pred_not(statement.predicate) for statement in others])
            if others
            else TRUE
        )
        catch_all = Statement(
            identifier=DEFAULT_STATEMENT_ID, predicate=remainder, path=any_path()
        )
        journal.set_item(session.statements, DEFAULT_STATEMENT_ID, catch_all)
        session.stamp(DEFAULT_STATEMENT_ID)
        journal.set_item(
            session.local_rates,
            DEFAULT_STATEMENT_ID,
            LocalRates(identifier=DEFAULT_STATEMENT_ID),
        )
        journal.set_item(
            session.endpoints,
            DEFAULT_STATEMENT_ID,
            infer_endpoints(catch_all, self._active(session)),
        )
        journal.set_attr(session, "generated_default", True)

    def _refresh_sink_trees(self, session) -> None:
        """Keep ``session.sink_trees`` consistent with the statement set.

        Mirrors :meth:`compile`: sink trees exist exactly while some
        best-effort statement (the generated catch-all included) has an
        unconstrained path.  They are dropped when the last such statement
        disappears, so codegen stops emitting default-forwarding
        instructions a from-scratch compile would not produce.
        """
        needed = any(
            not session.local_rates[identifier].is_guaranteed
            and _is_unconstrained_path(statement.path)
            for identifier, statement in session.statements.items()
        )
        if not needed:
            if session.sink_trees:
                session.journal.set_attr(session, "sink_trees", {})
        elif not session.sink_trees:
            session.journal.set_attr(
                session, "sink_trees", compute_sink_trees(self._active(session))
            )

    # -- shared helpers --------------------------------------------------------------

    # Distinct (path, source, destination) product graphs kept per session;
    # bounded (LRU) so a long-running controller streaming deltas with
    # ever-new path expressions does not grow resident memory monotonically.
    _LOGICAL_CACHE_LIMIT = 1024

    def _logical_for(self, cache, statement, source, destination, topology=None):
        # The cache key does not encode the topology: callers pass the
        # session's active topology and the topology-delta path clears the
        # session cache on every change, so entries never outlive the
        # topology they were built on.
        key = (statement.path, source, destination)
        cached = cache.pop(key, None)
        if cached is None:
            telemetry.counter("logical_memo_misses")
            fresh = True
            build_on = topology if topology is not None else self.topology
            cached = build_logical_topology(
                statement,
                build_on,
                self.placements,
                source=source,
                destination=destination,
                # On a degraded topology, names of failed elements stay
                # valid path-expression references (they match nothing).
                known_locations=(
                    None if build_on is self.topology else self.topology.locations()
                ),
            )
        else:
            telemetry.counter("logical_memo_hits")
            fresh = False
        cache[key] = cached  # (re)insert as most recently used
        while len(cache) > self._LOGICAL_CACHE_LIMIT:
            cache.pop(next(iter(cache)))
        return cached if fresh else cached.rebadged(statement.identifier)

    def _best_effort_assignment(
        self,
        statement: Statement,
        logical: LogicalTopology,
        topology: Optional[Topology] = None,
    ) -> Optional[PathAssignment]:
        found = logical.find_path()
        if found is None:
            return None
        return PathAssignment(
            statement_id=statement.identifier,
            path=tuple(found),
            function_placements=_best_effort_placements(
                statement.path,
                found,
                self.placements,
                topology if topology is not None else self.topology,
            ),
            guaranteed_rate=None,
        )

    def _link_capacities(
        self, topology: Optional[Topology] = None
    ) -> Dict[Tuple[str, str], Bandwidth]:
        if topology is None:
            topology = self.topology
        return {
            tuple(sorted((link.source, link.target))): link.capacity
            for link in topology.links()
        }


def _best_effort_placements(
    path_expression: Regex,
    location_path: List[str],
    placements: Mapping[str, Iterable[str]],
    topology: Topology,
) -> Dict[str, str]:
    """Function placements for a best-effort path (same greedy rule as the MIP)."""
    from .provisioning import _assign_functions

    return _assign_functions(path_expression, location_path, placements, topology)


def compile_policy(
    policy: Union[str, Policy],
    topology: Topology,
    placements: Optional[Mapping[str, Iterable[str]]] = None,
    heuristic: PathSelectionHeuristic = PathSelectionHeuristic.MIN_MAX_RATIO,
    **options,
) -> CompilationResult:
    """One-call compilation: build a :class:`MerlinCompiler` and run it."""
    compiler = MerlinCompiler(
        topology=topology,
        placements=placements or {},
        heuristic=heuristic,
        **options,
    )
    return compiler.compile(policy)
