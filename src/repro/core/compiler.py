"""The Merlin compiler (§3): localize, provision, and generate code.

:class:`MerlinCompiler` performs the three essential tasks described in the
paper: translating global policies into locally-enforceable ones
(localization), determining forwarding paths / function placements /
bandwidth allocations (provisioning via the MIP for guaranteed traffic and
sink trees or product-graph BFS for best-effort traffic), and generating
low-level instructions for switches, middleboxes, and end hosts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..codegen.generator import CodeGenerator
from ..errors import ProvisioningError
from ..regex.ast import Dot, Regex, Star
from ..topology.graph import Topology
from ..units import Bandwidth
from .allocation import (
    CompilationResult,
    CompilationStatistics,
    PathAssignment,
    RateAllocation,
)
from .ast import Policy
from .localization import LocalRates, localize
from .logical import LogicalTopology, build_logical_topology, infer_endpoints
from .parser import parse_policy
from .preprocessor import preprocess
from .provisioning import PathSelectionHeuristic, provision
from .sink_tree import compute_sink_trees


def _is_unconstrained_path(path: Regex) -> bool:
    """Whether a path expression is the universal ``.*`` (no constraint)."""
    return isinstance(path, Star) and isinstance(path.operand, Dot)


@dataclass
class MerlinCompiler:
    """Compiles Merlin policies against a physical topology.

    ``placements`` maps packet-processing function names (``"dpi"``,
    ``"nat"``, ...) to the locations able to host them — the auxiliary input
    described in §3.2.  ``heuristic`` selects the path-selection objective,
    ``overlap`` selects how the pre-processor treats overlapping statement
    predicates, and ``generate_code`` can be disabled for pure provisioning
    benchmarks.
    """

    topology: Topology
    placements: Mapping[str, Iterable[str]] = field(default_factory=dict)
    heuristic: PathSelectionHeuristic = PathSelectionHeuristic.MIN_MAX_RATIO
    overlap: str = "reject"
    add_catch_all: bool = True
    generate_code: bool = True
    localization_weights: Optional[Mapping[str, float]] = None
    solver: Optional[object] = None

    def compile(self, policy: Union[str, Policy]) -> CompilationResult:
        """Compile a policy (source text or AST) into a :class:`CompilationResult`."""
        total_start = time.perf_counter()
        if isinstance(policy, str):
            policy = parse_policy(policy, topology=self.topology)

        preprocessed = preprocess(
            policy, overlap=self.overlap, add_catch_all=self.add_catch_all
        ).policy
        local_rates = localize(preprocessed, weights=self.localization_weights)

        endpoints: Dict[str, Tuple[Optional[str], Optional[str]]] = {}
        for statement in preprocessed.statements:
            endpoints[statement.identifier] = infer_endpoints(statement, self.topology)

        guaranteed = [
            statement
            for statement in preprocessed.statements
            if local_rates[statement.identifier].is_guaranteed
        ]
        best_effort = [
            statement
            for statement in preprocessed.statements
            if not local_rates[statement.identifier].is_guaranteed
        ]

        # Logical topologies are memoized per compile on the statement's
        # (path expression, endpoint pair) shape: statements sharing that
        # shape produce identical product graphs (the topology and function
        # placements are fixed for the whole compile), so duplicates reuse
        # the built graph instead of recompiling the automaton and re-running
        # the product construction.
        logical_cache: Dict[
            Tuple[Regex, Optional[str], Optional[str]], "LogicalTopology"
        ] = {}

        def logical_for(statement, source, destination):
            key = (statement.path, source, destination)
            cached = logical_cache.get(key)
            if cached is None:
                cached = build_logical_topology(
                    statement,
                    self.topology,
                    self.placements,
                    source=source,
                    destination=destination,
                )
                logical_cache[key] = cached
                return cached
            return cached.rebadged(statement.identifier)

        # --- Guaranteed traffic: logical topologies + MIP (§3.2) -------------
        lp_construction_seconds = 0.0
        construction_start = time.perf_counter()
        logical_topologies = {}
        for statement in guaranteed:
            source, destination = endpoints[statement.identifier]
            if source is None or destination is None:
                raise ProvisioningError(
                    f"statement {statement.identifier!r} requests a bandwidth "
                    "guarantee but its source/destination hosts cannot be "
                    "determined from its predicate or path expression"
                )
            logical_topologies[statement.identifier] = logical_for(
                statement, source, destination
            )
        lp_construction_seconds += time.perf_counter() - construction_start

        provisioning = provision(
            guaranteed,
            logical_topologies,
            local_rates,
            self.topology,
            self.placements,
            heuristic=self.heuristic,
            solver=self.solver,
        )
        lp_construction_seconds += provisioning.lp_construction_seconds

        paths: Dict[str, PathAssignment] = dict(provisioning.paths)
        infeasible: List[str] = []

        # --- Best-effort traffic: sink trees and product-graph BFS (§3.3) ----
        rateless_start = time.perf_counter()
        needs_sink_trees = any(
            _is_unconstrained_path(statement.path) for statement in best_effort
        )
        sink_trees = compute_sink_trees(self.topology) if needs_sink_trees else {}
        for statement in best_effort:
            if _is_unconstrained_path(statement.path):
                continue
            source, destination = endpoints[statement.identifier]
            logical = logical_for(statement, source, destination)
            found = logical.find_path()
            if found is None:
                infeasible.append(statement.identifier)
                continue
            paths[statement.identifier] = PathAssignment(
                statement_id=statement.identifier,
                path=tuple(found),
                function_placements=_best_effort_placements(
                    statement.path, found, self.placements, self.topology
                ),
                guaranteed_rate=None,
            )
        rateless_seconds = time.perf_counter() - rateless_start

        rates = {
            identifier: RateAllocation.from_local_rates(local)
            for identifier, local in local_rates.items()
        }

        # --- Code generation (§3.4) -------------------------------------------
        codegen_seconds = 0.0
        instructions = None
        if self.generate_code:
            codegen_start = time.perf_counter()
            instructions = CodeGenerator(topology=self.topology).generate(
                preprocessed,
                paths,
                rates,
                sink_trees,
                endpoints=endpoints,
                infeasible_statements=tuple(infeasible),
            )
            codegen_seconds = time.perf_counter() - codegen_start

        statistics = CompilationStatistics(
            lp_construction_seconds=lp_construction_seconds,
            lp_solve_seconds=provisioning.lp_solve_seconds,
            rateless_seconds=rateless_seconds,
            codegen_seconds=codegen_seconds,
            total_seconds=time.perf_counter() - total_start,
            num_statements=len(preprocessed.statements),
            num_guaranteed_statements=len(guaranteed),
            num_mip_variables=provisioning.num_variables,
            num_mip_constraints=provisioning.num_constraints,
        )

        result = CompilationResult(
            policy=preprocessed,
            paths=paths,
            rates=rates,
            sink_trees=sink_trees,
            instructions=instructions,
            statistics=statistics,
            link_reservations=provisioning.link_reservations,
        )
        result.attach_link_capacities(
            {
                tuple(sorted((link.source, link.target))): link.capacity
                for link in self.topology.links()
            }
        )
        return result


def _best_effort_placements(
    path_expression: Regex,
    location_path: List[str],
    placements: Mapping[str, Iterable[str]],
    topology: Topology,
) -> Dict[str, str]:
    """Function placements for a best-effort path (same greedy rule as the MIP)."""
    from .provisioning import _assign_functions

    return _assign_functions(path_expression, location_path, placements, topology)


def compile_policy(
    policy: Union[str, Policy],
    topology: Topology,
    placements: Optional[Mapping[str, Iterable[str]]] = None,
    heuristic: PathSelectionHeuristic = PathSelectionHeuristic.MIN_MAX_RATIO,
    **options,
) -> CompilationResult:
    """One-call compilation: build a :class:`MerlinCompiler` and run it."""
    compiler = MerlinCompiler(
        topology=topology,
        placements=placements or {},
        heuristic=heuristic,
        **options,
    )
    return compiler.compile(policy)
