"""Best-effort provisioning via sink trees (§3.3).

Traffic that requires no bandwidth guarantee does not need the MIP.  The
compiler instead computes, for each egress switch, a *sink tree* that
forwards traffic from everywhere in the network towards that switch, by
breadth-first search.  Two optimisations from the paper are implemented:

* the BFS runs over the switch-only subgraph, so the complexity is
  ``O(|V||E|)`` with ``|V|`` the number of switches rather than hosts, and
* hosts are attached during code generation (the egress switch forwards to
  the destination host using its unique identifier).

Best-effort statements whose path expression is more constrained than ``.*``
are routed individually with a BFS over their logical topology instead (see
:meth:`~repro.core.logical.LogicalTopology.find_path`).
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import TopologyError
from ..topology.graph import Topology


@dataclass
class SinkTree:
    """A forwarding tree rooted at (sinking into) one egress switch.

    ``next_hop[u]`` is the neighbour that switch ``u`` forwards to on the way
    to the root; the root itself has no entry.  ``hosts`` lists the hosts
    attached to the root switch (the final delivery step).
    """

    root: str
    next_hop: Dict[str, str] = field(default_factory=dict)
    hosts: Tuple[str, ...] = ()

    def path_from(self, switch: str) -> List[str]:
        """The switch-level path from ``switch`` to the root."""
        if switch == self.root:
            return [self.root]
        path = [switch]
        current = switch
        seen = {switch}
        while current != self.root:
            current = self.next_hop.get(current)
            if current is None:
                raise TopologyError(
                    f"switch {path[0]!r} cannot reach sink {self.root!r}"
                )
            if current in seen:
                raise TopologyError("sink tree contains a cycle")
            seen.add(current)
            path.append(current)
        return path

    def depth(self) -> int:
        """The longest switch-level path length in the tree."""
        return max((len(self.path_from(switch)) - 1 for switch in self.next_hop), default=0)

    def num_switches(self) -> int:
        return len(self.next_hop) + 1


def compute_sink_tree(topology: Topology, root_switch: str) -> SinkTree:
    """BFS sink tree over the switch-only subgraph, rooted at ``root_switch``."""
    switches = topology.switch_subgraph()
    if not switches.has_node(root_switch):
        raise TopologyError(f"{root_switch!r} is not a switch")
    next_hop: Dict[str, str] = {}
    visited = {root_switch}
    queue = collections.deque([root_switch])
    while queue:
        current = queue.popleft()
        for neighbor in switches.neighbors(current):
            if neighbor not in visited:
                visited.add(neighbor)
                next_hop[neighbor] = current
                queue.append(neighbor)
    hosts = tuple(sorted(topology.hosts_on_switch(root_switch)))
    return SinkTree(root=root_switch, next_hop=next_hop, hosts=hosts)


def compute_sink_trees(
    topology: Topology, roots: Optional[Iterable[str]] = None
) -> Dict[str, SinkTree]:
    """Sink trees for every egress switch (or the given subset of switches).

    An egress switch is one with at least one attached host; switches without
    hosts never need a tree of their own.
    """
    if roots is None:
        roots = [
            switch.name
            for switch in topology.switches()
            if topology.hosts_on_switch(switch.name)
        ]
    return {root: compute_sink_tree(topology, root) for root in roots}


def host_path(topology: Topology, tree: SinkTree, source_host: str, destination_host: str) -> List[str]:
    """The full host-to-host path implied by a sink tree.

    The path enters the network at the source host's attachment switch,
    follows the tree to the destination's egress switch, and ends at the
    destination host.
    """
    ingress = topology.attachment_switch(source_host)
    egress = topology.attachment_switch(destination_host)
    if egress != tree.root:
        raise TopologyError(
            f"sink tree rooted at {tree.root!r} does not serve host {destination_host!r}"
        )
    return [source_host, *tree.path_from(ingress), destination_host]
