"""Policy deltas: the unit of work of incremental re-provisioning.

A :class:`PolicyDelta` describes how a statement population changes —
statements added (with their localized rates), statements removed, and
statements whose rates changed without touching predicate or path.
Deltas are consumed by :meth:`MerlinCompiler.recompile` and produced either
directly by callers or by :func:`policy_delta`, which diffs two policies
(the negotiator uses it to turn a verified refinement into the minimal
re-provisioning work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.ast import Policy, Statement
from ..core.localization import localize
from ..units import Bandwidth


@dataclass(frozen=True)
class DeltaStatement:
    """A statement entering the policy, with its localized rates."""

    statement: Statement
    guarantee: Optional[Bandwidth] = None
    cap: Optional[Bandwidth] = None


@dataclass(frozen=True)
class RateUpdate:
    """New localized rates for an existing statement (shape unchanged)."""

    identifier: str
    guarantee: Optional[Bandwidth] = None
    cap: Optional[Bandwidth] = None


@dataclass(frozen=True)
class PolicyDelta:
    """A set of statement-level changes applied atomically by ``recompile``.

    ``remove`` is applied first, then ``add``, then ``update_rates`` — so a
    statement whose predicate or path changed appears in both ``remove`` and
    ``add`` under the same identifier.
    """

    add: Tuple[DeltaStatement, ...] = ()
    remove: Tuple[str, ...] = ()
    update_rates: Tuple[RateUpdate, ...] = ()

    def is_empty(self) -> bool:
        return not (self.add or self.remove or self.update_rates)

    def num_changes(self) -> int:
        return len(self.add) + len(self.remove) + len(self.update_rates)

    def touched_identifiers(self) -> frozenset:
        """Every statement identifier this delta adds, removes, or updates."""
        return frozenset(
            [entry.statement.identifier for entry in self.add]
            + list(self.remove)
            + [update.identifier for update in self.update_rates]
        )

    def __str__(self) -> str:
        return (
            f"PolicyDelta(+{len(self.add)} -{len(self.remove)} "
            f"~{len(self.update_rates)})"
        )


@dataclass(frozen=True)
class TopologyDelta:
    """A set of topology changes applied atomically by ``recompile``.

    Link keys are undirected (u, v) name pairs and are normalized to sorted
    order on construction.  Failures and recoveries are *absolute* edits to
    the session's failed-element sets: failing an already-failed element or
    recovering a healthy one is a validation error, so replaying a stream
    of deltas is unambiguous.  Applied by
    :meth:`MerlinCompiler.recompile` / :meth:`Session.apply`, which derive
    the new active topology, rebuild only the product graphs whose pristine
    footprint touches the changed elements, and re-solve only the MIP
    components those statements belong to.
    """

    fail_links: Tuple[Tuple[str, str], ...] = ()
    recover_links: Tuple[Tuple[str, str], ...] = ()
    fail_nodes: Tuple[str, ...] = ()
    recover_nodes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "fail_links",
            tuple(tuple(sorted(link)) for link in self.fail_links),
        )
        object.__setattr__(
            self,
            "recover_links",
            tuple(tuple(sorted(link)) for link in self.recover_links),
        )
        object.__setattr__(self, "fail_nodes", tuple(self.fail_nodes))
        object.__setattr__(self, "recover_nodes", tuple(self.recover_nodes))

    def is_empty(self) -> bool:
        return not (
            self.fail_links
            or self.recover_links
            or self.fail_nodes
            or self.recover_nodes
        )

    def num_changes(self) -> int:
        return (
            len(self.fail_links)
            + len(self.recover_links)
            + len(self.fail_nodes)
            + len(self.recover_nodes)
        )

    def __str__(self) -> str:
        return (
            f"TopologyDelta(-L{len(self.fail_links)} +L{len(self.recover_links)} "
            f"-N{len(self.fail_nodes)} +N{len(self.recover_nodes)})"
        )


def same_rate(left: Optional[Bandwidth], right: Optional[Bandwidth]) -> bool:
    """Value equality over optional bandwidths (``None`` only equals ``None``).

    Shared by the policy diff below and the negotiator's delegated-delta
    rewrite, which must agree on what counts as "the tenant changed this
    rate".
    """
    if left is None or right is None:
        return left is None and right is None
    return left.bps_value == right.bps_value


def policy_delta(
    old: Policy,
    new: Policy,
    weights: Optional[Mapping[str, float]] = None,
) -> PolicyDelta:
    """Diff two policies into the minimal statement-level delta.

    Statements are matched by identifier.  A matched statement whose
    predicate or path expression changed becomes a remove + add pair (its
    forwarding state must be re-provisioned); one whose localized rates
    changed becomes a rate update (reservation rows only — the cheap
    adaptation of §4.3); identical statements produce no work at all.

    ``weights`` are the localization split weights and must match the
    compiler's ``localization_weights``, or the delta's rates would diverge
    from what a full compile of ``new`` localizes.
    """
    old_rates = localize(old, weights=weights)
    new_rates = localize(new, weights=weights)
    old_by_id: Dict[str, Statement] = {s.identifier: s for s in old.statements}
    new_by_id: Dict[str, Statement] = {s.identifier: s for s in new.statements}

    removed: List[str] = [
        identifier for identifier in old_by_id if identifier not in new_by_id
    ]
    added: List[DeltaStatement] = []
    updates: List[RateUpdate] = []
    for identifier, statement in new_by_id.items():
        rates = new_rates[identifier]
        if identifier not in old_by_id:
            added.append(
                DeltaStatement(statement, guarantee=rates.guarantee, cap=rates.cap)
            )
            continue
        previous = old_by_id[identifier]
        if (
            previous.predicate != statement.predicate
            or previous.path != statement.path
        ):
            removed.append(identifier)
            added.append(
                DeltaStatement(statement, guarantee=rates.guarantee, cap=rates.cap)
            )
            continue
        before = old_rates[identifier]
        if not same_rate(before.guarantee, rates.guarantee) or not same_rate(
            before.cap, rates.cap
        ):
            updates.append(
                RateUpdate(identifier, guarantee=rates.guarantee, cap=rates.cap)
            )
    return PolicyDelta(
        add=tuple(added), remove=tuple(removed), update_rates=tuple(updates)
    )


def merge_policy_deltas(deltas) -> PolicyDelta:
    """Merge independent :class:`PolicyDelta`\\ s into one transaction.

    The control-plane daemon batches concurrently-submitted tenant deltas
    into a single recompile; the merge is sound only when the deltas are
    *disjoint* — no statement identifier is touched (added, removed, or
    rate-updated) by more than one of them — because ``recompile`` applies
    all removes, then all adds, then all updates, which reorders operations
    across deltas sharing an identifier.  Raises :class:`ValueError` on
    any overlap; callers fall back to applying the offenders separately.
    """
    add: List[DeltaStatement] = []
    remove: List[str] = []
    updates: List[RateUpdate] = []
    touched: set = set()
    for delta in deltas:
        mine = delta.touched_identifiers()
        overlap = touched & mine
        if overlap:
            raise ValueError(
                "cannot merge deltas touching the same statements: "
                + ", ".join(sorted(overlap))
            )
        touched |= mine
        add.extend(delta.add)
        remove.extend(delta.remove)
        updates.extend(delta.update_rates)
    return PolicyDelta(
        add=tuple(add), remove=tuple(remove), update_rates=tuple(updates)
    )
