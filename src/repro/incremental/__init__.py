"""Incremental re-provisioning: delta compilation with partitioned solves.

The paper's adaptation story (§4.3, Figure 10) is that run-time bandwidth
re-allocation is cheap because it avoids global recompilation.  This package
extends that property to changes that *do* need new paths: instead of
rebuilding and re-solving the whole provisioning MIP, an
:class:`IncrementalProvisioner` keeps a transactional, lazily-materialized
session of per-statement bookkeeping, partitions the statements into
link-disjoint components over cost-bound-tightened footprints, and
re-solves only the components a delta touched — in parallel, warm-started
from the previous incumbent.  See ``README.md`` in this directory for the
session lifecycle (lazy materialization, checkpoints, commit/rollback,
partition invariants).

Layout:

* :mod:`repro.incremental.partition` — union-find decomposition of the MIP
  along shared physical links, plus footprint tightening,
* :mod:`repro.incremental.solve` — canonical component model construction,
  (optionally pooled) solving, and solution merging; also the back end of
  the full compiler's partitioned ``provision()``,
* :mod:`repro.incremental.engine` — the lazily-materialized delta engine,
* :mod:`repro.incremental.delta` — :class:`PolicyDelta` and policy diffing
  for :meth:`MerlinCompiler.recompile` and the negotiator hierarchy,
* :mod:`repro.incremental.journal` — the undo journal behind O(1)
  checkpoints / O(delta) rollbacks (see the README's journal lifecycle
  section).
"""

from .delta import (
    DeltaStatement,
    PolicyDelta,
    RateUpdate,
    TopologyDelta,
    merge_policy_deltas,
    policy_delta,
)
from .engine import EngineCheckpoint, EngineMark, IncrementalProvisioner
from .journal import JournalError, JournalMark, UndoJournal
from .partition import (
    LinkKey,
    PartitionSpec,
    UnionFind,
    partition_statements,
    tighten_logical_topologies,
)
from .solve import (
    INFEASIBLE_COMPONENT,
    PartitionSolution,
    WideningOutcome,
    build_partition_model,
    merge_partition_solutions,
    project_warm_start,
    provision_partitioned,
    solve_components_with_widening,
)

__all__ = [
    "DeltaStatement",
    "PolicyDelta",
    "RateUpdate",
    "TopologyDelta",
    "merge_policy_deltas",
    "policy_delta",
    "EngineCheckpoint",
    "EngineMark",
    "IncrementalProvisioner",
    "JournalError",
    "JournalMark",
    "UndoJournal",
    "tighten_logical_topologies",
    "LinkKey",
    "PartitionSpec",
    "UnionFind",
    "partition_statements",
    "INFEASIBLE_COMPONENT",
    "PartitionSolution",
    "WideningOutcome",
    "build_partition_model",
    "merge_partition_solutions",
    "project_warm_start",
    "provision_partitioned",
    "solve_components_with_widening",
]
