"""Incremental re-provisioning: delta compilation with partitioned solves.

The paper's adaptation story (§4.3, Figure 10) is that run-time bandwidth
re-allocation is cheap because it avoids global recompilation.  This package
extends that property to changes that *do* need new paths: instead of
rebuilding and re-solving the whole provisioning MIP, an
:class:`IncrementalProvisioner` splices statements in and out of a live
model, partitions the statements into link-disjoint components, and
re-solves only the components a delta touched — in parallel, warm-started
from the previous incumbent.

Layout:

* :mod:`repro.incremental.partition` — union-find decomposition of the MIP
  along shared physical links,
* :mod:`repro.incremental.solve` — canonical component model construction,
  (optionally pooled) solving, and solution merging; also the back end of
  the full compiler's partitioned ``provision()``,
* :mod:`repro.incremental.engine` — the live-model delta engine,
* :mod:`repro.incremental.delta` — :class:`PolicyDelta` and policy diffing
  for :meth:`MerlinCompiler.recompile` and the negotiator hierarchy.
"""

from .delta import DeltaStatement, PolicyDelta, RateUpdate, policy_delta
from .engine import IncrementalProvisioner
from .partition import LinkKey, PartitionSpec, UnionFind, partition_statements
from .solve import (
    PartitionSolution,
    build_partition_model,
    merge_partition_solutions,
    project_warm_start,
    provision_partitioned,
)

__all__ = [
    "DeltaStatement",
    "PolicyDelta",
    "RateUpdate",
    "policy_delta",
    "IncrementalProvisioner",
    "LinkKey",
    "PartitionSpec",
    "UnionFind",
    "partition_statements",
    "PartitionSolution",
    "build_partition_model",
    "merge_partition_solutions",
    "project_warm_start",
    "provision_partitioned",
]
