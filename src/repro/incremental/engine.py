"""The incremental re-provisioning engine (delta compilation).

:class:`IncrementalProvisioner` owns the *session state* of a changing
statement population — per-statement metadata only, never a live MIP:

* :meth:`add_statement` records a statement's (cost-bound-tightened) logical
  topology, rates, link footprint, and a fresh revision number,
* :meth:`remove_statement` forgets them (and prunes the statement's
  incumbent values),
* :meth:`update_rates` rewrites the statement's rates and bumps its
  revision.

All three are pure bookkeeping: O(statement) dictionary updates, no model
splicing, no pass over live constraint rows.  The fully-spliced global
model — historically maintained eagerly, putting O(total logical edges)
splice work on every session setup and removal — is now *lazily
materialized*: only :meth:`solve_live` (and the ``live_model`` /
``num_live_*`` introspection properties) builds it, on demand, from the
same bookkeeping dicts, via the exact canonical constructor
(:func:`~repro.core.provisioning.build_model_for_links`) the batch path
uses.  ``live_materializations`` counts those builds so tests can assert
the delta path never pays for one.

:meth:`resolve` re-provisions: the active statements are partitioned into
link-disjoint components (union-find over *tightened* logical link
footprints), components whose membership and rates are unchanged since the
previous solve re-use their cached
:class:`~repro.incremental.solve.PartitionSolution` verbatim, and only the
*dirty* components are rebuilt (in canonical order) and re-solved —
concurrently in a process pool when several are dirty, each warm-started
from the previous incumbent projected onto its surviving variables.  The
merged result is identical to a from-scratch ``provision()`` of the same
statements because both paths tighten the same way and construct and solve
exactly the same canonical component models.

Warm-started re-solves pick the same optima as cold ones: provisioning
models declare their tiebreaker epsilon as ``objective_resolution`` and the
branch-and-bound backend scales its pruning gap below it, so a seeded
incumbent can never shadow the marginally-cheaper-tiebreaker tie a cold
solve would return.

Transactions
------------
Because the engine's state is a handful of dictionaries over immutable
values, a transaction is a shadow snapshot: :meth:`checkpoint` captures the
session (shallow dict copies — statements, topologies, rates, and solutions
are never mutated in place) and :meth:`restore` reinstates it exactly,
including the solution cache, incumbent values, and revision counter.
:meth:`MerlinCompiler.recompile` wraps every delta in one, so a delta that
fails *after* validation — an infeasible solve, a code-generation error —
rolls the session back to its precise pre-delta state instead of
invalidating it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..core.ast import Statement
from ..core.localization import LocalRates
from ..core.logical import (
    LogicalTopology,
    build_logical_topology,
    infer_endpoints,
    prune_to_cost_bound,
)
from ..core.provisioning import (
    DEFAULT_FOOTPRINT_SLACK,
    PathSelectionHeuristic,
    ProvisioningModel,
    ProvisioningResult,
    build_model_for_links,
)
from ..errors import ProvisioningError
from ..topology.graph import Topology
from ..units import Bandwidth
from .partition import PartitionSpec, partition_statements
from .solve import (
    PartitionSolution,
    build_partition_model,
    extract_partition_solution,
    merge_partition_solutions,
    project_warm_start,
    solver_consumes_warm_starts,
    solve_partition_models,
    topology_capacities_mbps,
)

#: A partition's cache key: heuristic plus each member's (id, revision).
Signature = Tuple[str, Tuple[Tuple[str, int], ...]]


@dataclass(frozen=True)
class EngineCheckpoint:
    """A shadow snapshot of the engine's session state.

    Dict copies are shallow: every value (statements, logical topologies,
    rates, footprints, cached solutions, incumbent floats) is immutable
    once stored, so restoring the copies reinstates the exact state.  The
    revision counter is captured too — a rolled-back engine assigns the
    same revisions (and therefore the same cache signatures) to future
    deltas as an engine that never saw the failed one.
    """

    statements: Dict[str, Statement]
    logical: Dict[str, LogicalTopology]
    rates: Dict[str, LocalRates]
    footprints: Dict[str, frozenset]
    revisions: Dict[str, int]
    next_revision: int
    cache: Dict[Signature, PartitionSolution]
    last_values: Dict[str, float]


class IncrementalProvisioner:
    """A lazily-materialized provisioning session: add/remove/update + resolve.

    ``max_workers`` > 1 enables the process pool for multi-component
    re-solves; 0 (the default) solves dirty components in-process, which is
    the right choice for the common single-component delta.
    ``footprint_slack`` is the cost-bound tightening applied to each
    statement's logical topology (extra physical hops over its optimum;
    ``None`` disables tightening) — it must match the value the seeding
    full compile used for cached solutions to be adoptable.
    """

    def __init__(
        self,
        topology: Topology,
        placements: Optional[Mapping[str, Iterable[str]]] = None,
        heuristic: PathSelectionHeuristic = PathSelectionHeuristic.MIN_MAX_RATIO,
        solver=None,
        max_workers: int = 0,
        cache_limit: int = 512,
        footprint_slack: Optional[int] = DEFAULT_FOOTPRINT_SLACK,
    ) -> None:
        self.topology = topology
        self.placements = dict(placements or {})
        self.heuristic = heuristic
        self.solver = solver
        self.max_workers = max_workers
        self.footprint_slack = footprint_slack
        self._cache_limit = cache_limit

        self._capacity_mbps = topology_capacities_mbps(topology)
        self._statements: Dict[str, Statement] = {}
        #: Tightened (cost-bounded) logical topologies — what partitioning,
        #: the component models, and the lazy live model are all built from.
        self._logical: Dict[str, LogicalTopology] = {}
        self._rates: Dict[str, LocalRates] = {}
        # Per-statement link footprint, computed once at add time: logical
        # topologies are immutable, and re-walking every statement's edges
        # on each resolve would put O(total logical edges) back on the
        # latency path this engine exists to shrink.
        self._footprints: Dict[str, frozenset] = {}
        self._revisions: Dict[str, int] = {}
        self._next_revision = 1

        self._cache: Dict[Signature, PartitionSolution] = {}
        self._last_values: Dict[str, float] = {}

        # --- the lazily-materialized live model --------------------------------
        self._live: Optional[ProvisioningModel] = None
        self._live_signature: Optional[Signature] = None
        #: How many times the spliced global model was actually built; the
        #: delta path must never increment it (counter/spy for tests).
        self.live_materializations = 0

    # -- introspection -----------------------------------------------------------

    def statement_ids(self) -> List[str]:
        return list(self._statements)

    def has_statement(self, identifier: str) -> bool:
        return identifier in self._statements

    def rates_for(self, identifier: str) -> LocalRates:
        return self._rates[identifier]

    def logical_for(self, identifier: str) -> LogicalTopology:
        """The statement's *tightened* logical topology (the MIP's view)."""
        return self._logical[identifier]

    @property
    def live_model(self):
        """The spliced global model, materialized on demand (and memoized
        until the next delta)."""
        return self._materialize_live().model

    def num_live_variables(self) -> int:
        return self._materialize_live().model.num_variables()

    def num_live_constraints(self) -> int:
        return self._materialize_live().model.num_constraints()

    # -- transactions -------------------------------------------------------------

    def checkpoint(self) -> EngineCheckpoint:
        """Capture the session state for a later :meth:`restore`."""
        return EngineCheckpoint(
            statements=dict(self._statements),
            logical=dict(self._logical),
            rates=dict(self._rates),
            footprints=dict(self._footprints),
            revisions=dict(self._revisions),
            next_revision=self._next_revision,
            cache=dict(self._cache),
            last_values=dict(self._last_values),
        )

    def restore(self, saved: EngineCheckpoint) -> None:
        """Reinstate a :meth:`checkpoint` exactly (the rollback half of a
        transaction; committing is simply discarding the checkpoint)."""
        self._statements = dict(saved.statements)
        self._logical = dict(saved.logical)
        self._rates = dict(saved.rates)
        self._footprints = dict(saved.footprints)
        self._revisions = dict(saved.revisions)
        self._next_revision = saved.next_revision
        self._cache = dict(saved.cache)
        self._last_values = dict(saved.last_values)
        # Drop the memoized live model: rollback rewinds the revision
        # counter, so a post-rollback delta re-issues revision numbers and
        # a model materialized *inside* the failed transaction could
        # otherwise collide with the new population's signature.
        self._live = None
        self._live_signature = None

    # -- delta operations ---------------------------------------------------------

    def add_statement(
        self,
        statement: Statement,
        guarantee: Bandwidth,
        cap: Optional[Bandwidth] = None,
        logical: Optional[LogicalTopology] = None,
    ) -> None:
        """Enter a guaranteed statement into the session (bookkeeping only).

        ``logical`` may be supplied when the caller already built the
        statement's product graph (the compiler's memoized pipeline does);
        otherwise it is constructed here from the statement's inferred
        endpoints.  Either way it is tightened to its cost-bounded subgraph
        before being stored.  No model is built or spliced.
        """
        identifier = statement.identifier
        if identifier in self._statements:
            raise ProvisioningError(
                f"statement {identifier!r} is already provisioned; remove it "
                "first or use update_rates"
            )
        if guarantee is None or guarantee.bps_value <= 0:
            raise ProvisioningError(
                f"statement {identifier!r} needs a positive bandwidth "
                "guarantee to enter the provisioning MIP"
            )
        if logical is None:
            source, destination = infer_endpoints(statement, self.topology)
            if source is None or destination is None:
                raise ProvisioningError(
                    f"statement {identifier!r} requests a bandwidth guarantee "
                    "but its source/destination hosts cannot be determined"
                )
            logical = build_logical_topology(
                statement,
                self.topology,
                self.placements,
                source=source,
                destination=destination,
            )
        if logical.num_edges() == 0:
            raise ProvisioningError(
                f"statement {identifier!r} has no feasible path satisfying "
                "its path expression"
            )
        if self.footprint_slack is not None:
            logical = prune_to_cost_bound(logical, self.footprint_slack)

        self._statements[identifier] = statement
        self._logical[identifier] = logical
        self._footprints[identifier] = frozenset(logical.physical_links_used())
        self._rates[identifier] = LocalRates(
            identifier=identifier, guarantee=guarantee, cap=cap
        )
        self._revisions[identifier] = self._bump_revision()

    def remove_statement(self, identifier: str) -> None:
        """Forget a statement (bookkeeping only — no rows to splice out)."""
        if identifier not in self._statements:
            raise ProvisioningError(f"unknown statement {identifier!r}")
        # Drop the statement's incumbent values: a later re-add under the
        # same identifier reuses variable names, and a projection built from
        # a different logical topology must not masquerade as a warm start
        # (it also keeps the incumbent map from growing without bound).
        # Variable names are deterministic — x__{id}__{edge index}, the
        # format splice_statement_rows emits; its docstring cross-references
        # this dependency — so the pruning costs O(statement edges), not a
        # pass over the whole model.
        for index in range(self._logical[identifier].num_edges()):
            self._last_values.pop(f"x__{identifier}__{index}", None)
        del self._statements[identifier]
        del self._logical[identifier]
        del self._footprints[identifier]
        del self._rates[identifier]
        del self._revisions[identifier]

    def update_rates(
        self,
        identifier: str,
        guarantee: Bandwidth,
        cap: Optional[Bandwidth] = None,
    ) -> None:
        """Rewrite a statement's rates (bookkeeping only)."""
        if identifier not in self._statements:
            raise ProvisioningError(f"unknown statement {identifier!r}")
        if guarantee is None or guarantee.bps_value <= 0:
            raise ProvisioningError(
                f"statement {identifier!r} needs a positive guarantee; remove "
                "it instead to make it best-effort"
            )
        previous = self._rates[identifier].guarantee
        self._rates[identifier] = LocalRates(
            identifier=identifier, guarantee=guarantee, cap=cap
        )
        if previous is not None and previous.bps_value == guarantee.bps_value:
            # Cap-only change: the cap never enters the provisioning MIP, so
            # the statement's partition stays clean (its cached solution and
            # the memoized live model remain valid).
            return
        self._revisions[identifier] = self._bump_revision()

    def _bump_revision(self) -> int:
        revision = self._next_revision
        self._next_revision += 1
        return revision

    # -- solving -------------------------------------------------------------------

    def _signature(self, spec: PartitionSpec) -> Signature:
        return (
            self.heuristic.value,
            tuple((sid, self._revisions[sid]) for sid in spec.statement_ids),
        )

    def prime(self, solutions: Iterable[PartitionSolution]) -> int:
        """Seed the component cache from a previous full provisioning run.

        Solutions are matched to the current components by statement-id set;
        the number of adopted solutions is returned.  This lets a compiler
        hand its ``ProvisioningResult.partition_solutions`` to a fresh
        engine so the first delta only re-solves what it touched.
        """
        by_members = {
            frozenset(solution.spec.statement_ids): solution
            for solution in solutions
        }
        adopted = 0
        for spec in self._current_partitions():
            solution = by_members.get(frozenset(spec.statement_ids))
            if solution is not None:
                self._cache[self._signature(spec)] = solution
                self._last_values.update(solution.values_by_name)
                adopted += 1
        return adopted

    def _current_partitions(self) -> List[PartitionSpec]:
        return partition_statements(self._footprints)

    def resolve(self) -> ProvisioningResult:
        """Re-provision the active statements, re-solving only dirty components.

        The returned :class:`ProvisioningResult` is identical to what a
        from-scratch partitioned ``provision()`` of the same statements
        would produce; ``solve_statistics`` additionally reports
        ``partitions_dirty`` / ``partitions_reused``.
        """
        if not self._statements:
            return ProvisioningResult(
                paths={},
                link_reservations={},
                max_utilization=0.0,
                max_reservation=Bandwidth(0.0),
                lp_construction_seconds=0.0,
                lp_solve_seconds=0.0,
                num_variables=0,
                num_constraints=0,
            )
        specs = self._current_partitions()
        reused: Dict[PartitionSpec, PartitionSolution] = {}
        dirty: List[PartitionSpec] = []
        for spec in specs:
            cached = self._cache.get(self._signature(spec))
            if cached is not None:
                reused[spec] = cached
            else:
                dirty.append(spec)

        construction_start = time.perf_counter()
        built_models = []
        build_seconds = []
        for spec in dirty:
            build_start = time.perf_counter()
            built_models.append(
                build_partition_model(
                    spec,
                    self._statements,
                    self._logical,
                    self._rates,
                    self._capacity_mbps,
                    self.heuristic,
                )
            )
            build_seconds.append(time.perf_counter() - build_start)
        lp_construction_seconds = time.perf_counter() - construction_start

        seed_starts = bool(self._last_values) and solver_consumes_warm_starts(
            self.solver
        )
        warm_starts = [
            project_warm_start(built, self._last_values) if seed_starts else None
            for built in built_models
        ]
        solve_start = time.perf_counter()
        outcomes = solve_partition_models(
            built_models,
            solver=self.solver,
            warm_starts=warm_starts,
            max_workers=self.max_workers,
        )
        lp_solve_seconds = time.perf_counter() - solve_start

        solved = {
            spec: extract_partition_solution(spec, built, outcome, seconds)
            for spec, built, outcome, seconds in zip(
                dirty, built_models, outcomes, build_seconds
            )
        }
        solutions = [
            reused[spec] if spec in reused else solved[spec] for spec in specs
        ]

        result = merge_partition_solutions(
            solutions,
            self._statements,
            self._rates,
            self.topology,
            self.placements,
            lp_construction_seconds,
            lp_solve_seconds,
            heuristic=self.heuristic,
        )
        result.solve_statistics["partitions_dirty"] = float(len(dirty))
        result.solve_statistics["partitions_reused"] = float(len(reused))
        # The merge sums work diagnostics over every component it was
        # handed, cached ones included; report only the work THIS resolve
        # performed (reused components were solved by an earlier call).
        result.solve_statistics["solve_cpu_seconds"] = float(
            sum(solution.solve_seconds for solution in solved.values())
        )
        dirty_nodes = [
            solution.statistics.get("nodes") for solution in solved.values()
        ]
        if any(value is not None for value in dirty_nodes):
            result.solve_statistics["nodes"] = float(
                sum(value or 0.0 for value in dirty_nodes)
            )
        else:
            result.solve_statistics.pop("nodes", None)

        # Retain previous entries (bounded, LRU): oscillating deltas — add
        # then revert, AIMD up/down — bring back signatures solved a resolve
        # or two ago, and those must be cache hits, not re-solves.
        for spec, solution in zip(specs, solutions):
            signature = self._signature(spec)
            self._cache.pop(signature, None)
            self._cache[signature] = solution
        while len(self._cache) > self._cache_limit:
            self._cache.pop(next(iter(self._cache)))
        for solution in solved.values():
            self._last_values.update(solution.values_by_name)
        return result

    # -- the live model as a (lazily built) solvable artifact ------------------------

    def _population_signature(self) -> Signature:
        return (
            self.heuristic.value,
            tuple(sorted(self._revisions.items())),
        )

    def _materialize_live(self) -> ProvisioningModel:
        """Build (or reuse) the fully-spliced global model.

        Constructed from the same bookkeeping dicts ``resolve()`` reads,
        through the same canonical constructor the batch path uses, so it
        is coefficient-identical to a from-scratch
        :func:`~repro.core.provisioning.build_provisioning_model` of the
        current statements over the whole topology.  Memoized on the
        population signature: repeated solves without intervening deltas
        reuse the build, any delta invalidates it implicitly, and
        :meth:`restore` drops it explicitly (revision numbers are re-issued
        after a rollback, so signatures alone could not be trusted).
        """
        signature = self._population_signature()
        if self._live is None or self._live_signature != signature:
            self.live_materializations += 1
            self._live = build_model_for_links(
                list(self._statements.values()),
                self._logical,
                self._rates,
                list(self._capacity_mbps.items()),
                heuristic=self.heuristic,
            )
            self._live_signature = signature
        return self._live

    def solve_live(self, solver=None):
        """Solve the lazily-built global model directly (no partitioning,
        no cache).

        Exists as a correctness escape hatch and as the splice-equivalence
        oracle for the test suite; :meth:`resolve` is the fast path.  This
        is the only place the spliced model's construction cost is paid.
        """
        return self._materialize_live().model.solve(solver or self.solver)
