"""The incremental re-provisioning engine (delta compilation).

:class:`IncrementalProvisioner` owns the *session state* of a changing
statement population — per-statement metadata only, never a live MIP:

* :meth:`add_statement` records a statement's (cost-bound-tightened) logical
  topology, rates, link footprint, and a fresh revision number,
* :meth:`remove_statement` forgets them (and prunes the statement's
  incumbent values),
* :meth:`update_rates` rewrites the statement's rates and bumps its
  revision.

All three are pure bookkeeping: O(statement) dictionary updates, no model
splicing, no pass over live constraint rows.  The fully-spliced global
model — historically maintained eagerly, putting O(total logical edges)
splice work on every session setup and removal — is now *lazily
materialized*: only :meth:`solve_live` (and the ``live_model`` /
``num_live_*`` introspection properties) builds it, on demand, from the
same bookkeeping dicts, via the exact canonical constructor
(:func:`~repro.core.provisioning.build_model_for_links`) the batch path
uses.  ``live_materializations`` counts those builds so tests can assert
the delta path never pays for one.

:meth:`resolve` re-provisions: the active statements are partitioned into
link-disjoint components (union-find over *tightened* logical link
footprints), components whose membership and rates are unchanged since the
previous solve re-use their cached
:class:`~repro.incremental.solve.PartitionSolution` verbatim, and only the
*dirty* components are rebuilt (in canonical order) and re-solved —
concurrently in a process pool when several are dirty, each warm-started
from the previous incumbent projected onto its surviving variables.  The
merged result is identical to a from-scratch ``provision()`` of the same
statements because both paths tighten the same way and construct and solve
exactly the same canonical component models.

Warm-started re-solves pick the same optima as cold ones: provisioning
models declare their tiebreaker epsilon as ``objective_resolution`` and the
branch-and-bound backend scales its pruning gap below it, so a seeded
incumbent can never shadow the marginally-cheaper-tiebreaker tie a cold
solve would return.

Transactions
------------
Transactions are an **undo journal**, not a shadow copy: every mutator
(:meth:`add_statement` / :meth:`remove_statement` / :meth:`update_rates` /
:meth:`replace_logical` / :meth:`set_topology`) records inverse operations
for exactly the entries it touches, so :meth:`checkpoint` is O(1) — it
marks a journal position (plus a bounded snapshot of the LRU solution
cache, see below) — :meth:`restore` replays O(delta) undo entries, and
:meth:`release` (commit) truncates the journal.  The copying
implementation survives as :meth:`snapshot` (returning the legacy
:class:`EngineCheckpoint`), kept as the equivalence oracle: the
transaction property tests run both side by side and assert the journal
restores state byte-identical to the copies.

The one piece *not* journaled is the component-solution cache.  Revision
numbers are re-issued after a rollback, so a solution cached inside a
failed transaction could later collide with an identical-looking
signature from a different population — the cache must be restored
*exactly*, including LRU order.  Since it is bounded by
``options.cache_limit`` (default 512) independent of population size,
each checkpoint snapshots it outright: O(cache_limit), not
O(population).

:meth:`MerlinCompiler.recompile` wraps every delta in one transaction, so
a delta that fails *after* validation — an infeasible solve, a
code-generation error — rolls the session back to its precise pre-delta
state instead of invalidating it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .. import telemetry
from ..core.ast import Statement
from ..core.localization import LocalRates
from ..core.logical import (
    LogicalTopology,
    build_logical_topology,
    infer_endpoints,
    prune_to_cost_bound,
)
from ..core.options import _UNSET, ProvisionOptions, coalesce_options
from ..core.provisioning import (
    DEFAULT_FOOTPRINT_SLACK,
    PathSelectionHeuristic,
    ProvisioningModel,
    ProvisioningResult,
    build_model_for_links,
)
from ..errors import ProvisioningError
from ..topology.graph import Topology
from ..units import Bandwidth
from .journal import JournalMark, UndoJournal
from .partition import PartitionSpec, partition_statements
from .solve import (
    INFEASIBLE_COMPONENT,
    ComponentKey,
    PartitionSolution,
    merge_partition_solutions,
    record_widening_statistics,
    solve_components_with_widening,
    topology_capacities_mbps,
)

#: A partition's cache key: heuristic, each member's (id, revision), and
#: each member's footprint slack (the same members at a different widening
#: level are a different model).
Signature = Tuple[str, Tuple[Tuple[str, int], ...], Tuple[Optional[int], ...]]


@dataclass(frozen=True)
class EngineCheckpoint:
    """A full shadow snapshot of the engine's session state (legacy).

    This is the pre-journal copying implementation: O(population) to
    capture, kept as :meth:`IncrementalProvisioner.snapshot` so the
    transaction property tests can prove the undo journal restores state
    byte-identical to the copies.  Dict copies are shallow: every value
    (statements, logical topologies, rates, footprints, cached solutions,
    incumbent floats) is immutable once stored, so restoring the copies
    reinstates the exact state.  The revision counter is captured too — a
    rolled-back engine assigns the same revisions (and therefore the same
    cache signatures) to future deltas as an engine that never saw the
    failed one.
    """

    statements: Dict[str, Statement]
    logical: Dict[str, LogicalTopology]
    logical_full: Dict[str, LogicalTopology]
    rates: Dict[str, LocalRates]
    footprints: Dict[str, frozenset]
    revisions: Dict[str, int]
    next_revision: int
    cache: Dict[Signature, object]
    last_values: Dict[str, float]
    topology: Topology


@dataclass(frozen=True)
class EngineMark:
    """An O(1) transaction token: a journal position + cache snapshot.

    ``mark`` names the undo-journal position to rewind to; ``cache`` is
    the bounded (``cache_limit``-capped, population-independent) snapshot
    of the component-solution cache, restored outright on rollback —
    see the module docstring for why the cache cannot be journaled.
    """

    mark: JournalMark
    cache: Dict[Signature, object]


class IncrementalProvisioner:
    """A lazily-materialized provisioning session: add/remove/update + resolve.

    ``max_workers`` > 1 enables the process pool for multi-component
    re-solves; 0 (the default) solves dirty components in-process, which is
    the right choice for the common single-component delta.
    ``footprint_slack`` is the cost-bound tightening applied to each
    statement's logical topology (extra physical hops over its optimum;
    ``None`` disables tightening) — it must match the value the seeding
    full compile used for cached solutions to be adoptable.
    """

    def __init__(
        self,
        topology: Topology,
        placements: Optional[Mapping[str, Iterable[str]]] = None,
        heuristic: PathSelectionHeuristic = PathSelectionHeuristic.MIN_MAX_RATIO,
        options: Optional[ProvisionOptions] = None,
        solver=_UNSET,
        max_workers=_UNSET,
        cache_limit=_UNSET,
        footprint_slack=_UNSET,
    ) -> None:
        options = coalesce_options(
            options,
            owner="IncrementalProvisioner()",
            solver=solver,
            max_workers=max_workers,
            cache_limit=cache_limit,
            footprint_slack=footprint_slack,
        )
        self.topology = topology
        self.placements = dict(placements or {})
        self.heuristic = heuristic
        self.options = options
        self.solver = options.backend()
        self.max_workers = options.max_workers
        self.footprint_slack = options.footprint_slack
        self._cache_limit = options.cache_limit
        #: The solve fabric (persistent worker pool) and the cross-run
        #: content-addressed component cache, both optional and both owned
        #: by the caller (typically the control plane) — the engine only
        #: routes work through them.
        self._fabric = options.fabric
        self._component_cache = options.component_cache

        #: Session-persistent cost-bound tightening memo, shaped
        #: ``{sid: {slack: (base, tightened, footprint)}}`` and handed to
        #: every ``solve_components_with_widening`` call so tightening work
        #: survives across recompiles instead of being rebuilt per delta.
        #: Deliberately unjournaled: entries self-invalidate by identity
        #: against the *current* untightened topology (a rollback that
        #: restores an older ``_logical_full`` object simply misses), so a
        #: stale entry can cost a recompute but never a wrong footprint.
        #: Mutators that reshape a statement drop its entries outright to
        #: bound memory (O(1) per-sid pop, keyed by statement).
        self._tighten_cache: Dict[str, Dict[Optional[int], tuple]] = {}

        self._capacity_mbps = topology_capacities_mbps(topology)
        self._statements: Dict[str, Statement] = {}
        #: Tightened (cost-bounded) logical topologies — what partitioning,
        #: the component models, and the lazy live model are all built from.
        self._logical: Dict[str, LogicalTopology] = {}
        #: The *untightened* product graphs, kept alongside: slack widening
        #: re-tightens from these at wider bounds, and incumbent pruning on
        #: removal must cover the widest variable range ever emitted.
        self._logical_full: Dict[str, LogicalTopology] = {}
        self._rates: Dict[str, LocalRates] = {}
        # Per-statement link footprint, computed once at add time: logical
        # topologies are immutable, and re-walking every statement's edges
        # on each resolve would put O(total logical edges) back on the
        # latency path this engine exists to shrink.
        self._footprints: Dict[str, frozenset] = {}
        self._revisions: Dict[str, int] = {}
        self._next_revision = 1

        self._cache: Dict[Signature, object] = {}
        self._last_values: Dict[str, float] = {}

        #: The undo journal behind O(1) checkpoints; mutators record
        #: inverse operations here whenever a transaction is open.
        self._journal = UndoJournal()

        # --- the lazily-materialized live model --------------------------------
        self._live: Optional[ProvisioningModel] = None
        self._live_signature: Optional[Signature] = None
        #: How many times the spliced global model was actually built; the
        #: delta path must never increment it (counter/spy for tests).
        self.live_materializations = 0

    # -- introspection -----------------------------------------------------------

    def statement_ids(self) -> List[str]:
        return list(self._statements)

    def has_statement(self, identifier: str) -> bool:
        return identifier in self._statements

    def rates_for(self, identifier: str) -> LocalRates:
        return self._rates[identifier]

    def logical_for(self, identifier: str) -> LogicalTopology:
        """The statement's *tightened* logical topology (the MIP's view)."""
        return self._logical[identifier]

    @property
    def live_model(self):
        """The spliced global model, materialized on demand (and memoized
        until the next delta)."""
        return self._materialize_live().model

    def num_live_variables(self) -> int:
        return self._materialize_live().model.num_variables()

    def num_live_constraints(self) -> int:
        return self._materialize_live().model.num_constraints()

    # -- transactions -------------------------------------------------------------

    def checkpoint(self) -> EngineMark:
        """Open a transaction: O(1) journal mark + bounded cache snapshot.

        Rolling back via :meth:`restore` replays only the undo entries the
        transaction recorded (O(delta)); committing via :meth:`release`
        truncates them.  Marks are stacked: rolling back to an earlier
        mark invalidates later ones.
        """
        return EngineMark(mark=self._journal.mark(), cache=dict(self._cache))

    def restore(self, saved) -> None:
        """Reinstate a :meth:`checkpoint` (or legacy :meth:`snapshot`) exactly.

        For an :class:`EngineMark` this replays the undo journal back to
        the mark and reinstates the cache snapshot — O(changes since the
        checkpoint), not O(population).  The legacy :class:`EngineCheckpoint`
        path rebinds full dict copies; it invalidates every outstanding
        journal mark (the journal's undo closures reference the replaced
        dicts), so the two styles must not be interleaved within one
        transaction.
        """
        if isinstance(saved, EngineCheckpoint):
            self._statements = dict(saved.statements)
            self._logical = dict(saved.logical)
            self._logical_full = dict(saved.logical_full)
            self._rates = dict(saved.rates)
            self._footprints = dict(saved.footprints)
            self._revisions = dict(saved.revisions)
            self._next_revision = saved.next_revision
            self._cache = dict(saved.cache)
            self._last_values = dict(saved.last_values)
            if saved.topology is not self.topology:
                self.set_topology(saved.topology)
            self._journal.invalidate_all()
        else:
            self._journal.rollback(saved.mark)
            self._cache = dict(saved.cache)
        # Drop the memoized live model: rollback rewinds the revision
        # counter, so a post-rollback delta re-issues revision numbers and
        # a model materialized *inside* the failed transaction could
        # otherwise collide with the new population's signature.
        self._live = None
        self._live_signature = None

    def release(self, saved) -> None:
        """Commit a transaction opened by :meth:`checkpoint`.

        Drops the journal mark and truncates undo entries no outstanding
        mark can reach.  Legacy :class:`EngineCheckpoint` snapshots need no
        release (discarding them is the commit); passing one is a no-op.
        """
        if isinstance(saved, EngineMark):
            self._journal.release(saved.mark)

    def snapshot(self) -> EngineCheckpoint:
        """Capture a legacy full shadow copy of the session state.

        O(population).  Superseded by :meth:`checkpoint` for transactions;
        kept as the equivalence oracle for the journal property tests and
        for callers that want a state capture surviving arbitrary later
        rollbacks (copies are independent, journal marks are stacked).
        """
        return EngineCheckpoint(
            statements=dict(self._statements),
            logical=dict(self._logical),
            logical_full=dict(self._logical_full),
            rates=dict(self._rates),
            footprints=dict(self._footprints),
            revisions=dict(self._revisions),
            next_revision=self._next_revision,
            cache=dict(self._cache),
            last_values=dict(self._last_values),
            topology=self.topology,
        )

    # -- delta operations ---------------------------------------------------------

    def add_statement(
        self,
        statement: Statement,
        guarantee: Bandwidth,
        cap: Optional[Bandwidth] = None,
        logical: Optional[LogicalTopology] = None,
    ) -> None:
        """Enter a guaranteed statement into the session (bookkeeping only).

        ``logical`` may be supplied when the caller already built the
        statement's product graph (the compiler's memoized pipeline does);
        otherwise it is constructed here from the statement's inferred
        endpoints.  Either way it is tightened to its cost-bounded subgraph
        before being stored.  No model is built or spliced.
        """
        identifier = statement.identifier
        if identifier in self._statements:
            raise ProvisioningError(
                f"statement {identifier!r} is already provisioned; remove it "
                "first or use update_rates"
            )
        if guarantee is None or guarantee.bps_value <= 0:
            raise ProvisioningError(
                f"statement {identifier!r} needs a positive bandwidth "
                "guarantee to enter the provisioning MIP"
            )
        if logical is None:
            source, destination = infer_endpoints(statement, self.topology)
            if source is None or destination is None:
                raise ProvisioningError(
                    f"statement {identifier!r} requests a bandwidth guarantee "
                    "but its source/destination hosts cannot be determined"
                )
            logical = build_logical_topology(
                statement,
                self.topology,
                self.placements,
                source=source,
                destination=destination,
            )
        if logical.num_edges() == 0:
            raise ProvisioningError(
                f"statement {identifier!r} has no feasible path satisfying "
                "its path expression"
            )
        full = logical
        if self.footprint_slack is not None:
            logical = prune_to_cost_bound(logical, self.footprint_slack)

        journal = self._journal
        journal.set_item(self._statements, identifier, statement)
        journal.set_item(self._logical, identifier, logical)
        journal.set_item(self._logical_full, identifier, full)
        journal.set_item(
            self._footprints, identifier, frozenset(logical.physical_links_used())
        )
        journal.set_item(
            self._rates,
            identifier,
            LocalRates(identifier=identifier, guarantee=guarantee, cap=cap),
        )
        journal.set_item(self._revisions, identifier, self._bump_revision())

    def remove_statement(self, identifier: str) -> None:
        """Forget a statement (bookkeeping only — no rows to splice out)."""
        if identifier not in self._statements:
            raise ProvisioningError(f"unknown statement {identifier!r}")
        self._prune_incumbents(identifier)
        self._tighten_cache.pop(identifier, None)
        journal = self._journal
        journal.del_item(self._statements, identifier)
        journal.del_item(self._logical, identifier)
        journal.del_item(self._logical_full, identifier)
        journal.del_item(self._footprints, identifier)
        journal.del_item(self._rates, identifier)
        journal.del_item(self._revisions, identifier)

    def _prune_incumbents(self, identifier: str) -> None:
        """Drop a statement's incumbent values (on removal or reshaping).

        A later re-add under the same identifier reuses variable names, and
        a projection built from a different logical topology must not
        masquerade as a warm start (pruning also keeps the incumbent map
        from growing without bound).  Variable names are deterministic —
        x__{id}__{edge index}, the format splice_statement_rows emits; its
        docstring cross-references this dependency — so the pruning costs
        O(statement edges), not a pass over the whole model.  The range is
        the *untightened* edge count: widened component models emit
        variables beyond the base-tightened range.
        """
        for index in range(self._logical_full[identifier].num_edges()):
            self._journal.del_item(self._last_values, f"x__{identifier}__{index}")

    def replace_logical(self, identifier: str, logical: LogicalTopology) -> None:
        """Swap a statement's (untightened) product graph for a new one.

        The compiler's topology-delta path calls this for every statement
        whose product graph changed on the new active topology: the
        tightened view and link footprint are recomputed, the statement's
        revision is bumped (invalidating cached component solutions that
        could route over vanished links), and stale incumbents over the old
        edge indexing are pruned.
        """
        if identifier not in self._statements:
            raise ProvisioningError(f"unknown statement {identifier!r}")
        if logical.num_edges() == 0:
            raise ProvisioningError(
                f"statement {identifier!r} has no feasible path satisfying "
                "its path expression"
            )
        self._prune_incumbents(identifier)
        self._tighten_cache.pop(identifier, None)
        journal = self._journal
        journal.set_item(self._logical_full, identifier, logical)
        tightened = (
            logical
            if self.footprint_slack is None
            else prune_to_cost_bound(logical, self.footprint_slack)
        )
        journal.set_item(self._logical, identifier, tightened)
        journal.set_item(
            self._footprints, identifier, frozenset(tightened.physical_links_used())
        )
        journal.set_item(self._revisions, identifier, self._bump_revision())

    def set_topology(self, topology: Topology) -> None:
        """Point the engine at a new (e.g. degraded) physical topology.

        Only the capacity map and the memoized live model depend on it
        directly; per-statement logical topologies must be re-supplied by
        the caller via :meth:`replace_logical` where they changed.
        """
        self._journal.set_attr(self, "topology", topology)
        self._journal.set_attr(
            self, "_capacity_mbps", topology_capacities_mbps(topology)
        )
        self._live = None
        self._live_signature = None

    def update_rates(
        self,
        identifier: str,
        guarantee: Bandwidth,
        cap: Optional[Bandwidth] = None,
    ) -> None:
        """Rewrite a statement's rates (bookkeeping only)."""
        if identifier not in self._statements:
            raise ProvisioningError(f"unknown statement {identifier!r}")
        if guarantee is None or guarantee.bps_value <= 0:
            raise ProvisioningError(
                f"statement {identifier!r} needs a positive guarantee; remove "
                "it instead to make it best-effort"
            )
        previous = self._rates[identifier].guarantee
        self._journal.set_item(
            self._rates,
            identifier,
            LocalRates(identifier=identifier, guarantee=guarantee, cap=cap),
        )
        if previous is not None and previous.bps_value == guarantee.bps_value:
            # Cap-only change: the cap never enters the provisioning MIP, so
            # the statement's partition stays clean (its cached solution and
            # the memoized live model remain valid).
            return
        self._journal.set_item(self._revisions, identifier, self._bump_revision())

    def _bump_revision(self) -> int:
        revision = self._next_revision
        self._journal.set_attr(self, "_next_revision", revision + 1)
        return revision

    # -- solving -------------------------------------------------------------------

    def _signature_for(
        self,
        statement_ids: Tuple[str, ...],
        member_slacks: Tuple[Optional[int], ...],
    ) -> Signature:
        return (
            self.heuristic.value,
            tuple((sid, self._revisions[sid]) for sid in statement_ids),
            member_slacks,
        )

    def _signature(self, spec: PartitionSpec) -> Signature:
        base = self.footprint_slack
        return self._signature_for(
            spec.statement_ids, tuple(base for _ in spec.statement_ids)
        )

    def prime(
        self,
        solutions: Iterable[PartitionSolution],
        infeasible: Iterable[ComponentKey] = (),
    ) -> int:
        """Seed the component cache from a previous full provisioning run.

        Every solution whose members all exist in the session is adopted
        under its own (members, slacks) identity — including components the
        full compile solved at a *widened* slack level, which do not match
        the base-slack partitioning but are exactly what ``resolve``'s
        widening ladder will ask for.  ``infeasible`` seeds the
        :data:`~repro.incremental.solve.INFEASIBLE_COMPONENT` markers the
        full compile discovered on its way up the ladder, so the first
        resolve skips those rungs instead of re-proving them.  Returns the
        number of adopted solutions.
        """
        adopted = 0
        for solution in solutions:
            ids = solution.spec.statement_ids
            if any(sid not in self._revisions for sid in ids):
                continue
            slacks = solution.member_slacks or tuple(
                self.footprint_slack for _ in ids
            )
            # Cache inserts are deliberately unjournaled: the transaction
            # token carries a full (bounded) cache snapshot instead.
            self._cache[self._signature_for(ids, slacks)] = solution
            self._journal.update_items(self._last_values, solution.values_by_name)
            adopted += 1
        for ids, slacks in infeasible:
            if any(sid not in self._revisions for sid in ids):
                continue
            self._cache[self._signature_for(ids, slacks)] = INFEASIBLE_COMPONENT
        return adopted

    def _current_partitions(self) -> List[PartitionSpec]:
        return partition_statements(self._footprints)

    def resolve(self) -> ProvisioningResult:
        """Re-provision the active statements, re-solving only dirty components.

        The returned :class:`ProvisioningResult` is identical to what a
        from-scratch partitioned ``provision()`` of the same statements
        would produce; ``solve_statistics`` additionally reports
        ``partitions_dirty`` / ``partitions_reused``.
        """
        if not self._statements:
            return ProvisioningResult(
                paths={},
                link_reservations={},
                max_utilization=0.0,
                max_reservation=Bandwidth(0.0),
                lp_construction_seconds=0.0,
                lp_solve_seconds=0.0,
                num_variables=0,
                num_constraints=0,
            )
        def lookup(spec: PartitionSpec, slacks: Tuple[Optional[int], ...]):
            found = self._cache.get(
                self._signature_for(spec.statement_ids, slacks)
            )
            if found is None:
                telemetry.counter("component_cache_misses")
            elif found is INFEASIBLE_COMPONENT:
                telemetry.counter("component_cache_infeasible_hits")
            else:
                telemetry.counter("component_cache_hits")
            return found

        warm_values = (
            self._last_values if self.options.warm_start != "off" else None
        )
        with telemetry.span(
            "resolve", statements=len(self._statements)
        ) as resolve_span:
            outcome = solve_components_with_widening(
                self._statements,
                self._logical_full,
                self._rates,
                self._capacity_mbps,
                self.heuristic,
                solver=self.solver,
                max_workers=self.max_workers,
                footprint_slack=self.footprint_slack,
                widen=self.options.widen_slack,
                base_tightened=self._logical,
                warm_values=warm_values,
                lookup=lookup,
                tighten_cache=self._tighten_cache,
                component_cache=self._component_cache,
                fabric=self._fabric,
            )
            resolve_span.annotate(
                partitions=len(outcome.specs), dirty=outcome.solver_calls
            )

            result = merge_partition_solutions(
                outcome.solutions,
                self._statements,
                self._rates,
                self.topology,
                self.placements,
                outcome.construction_seconds,
                outcome.solve_seconds,
                heuristic=self.heuristic,
            )
        result.solve_statistics["partitions_dirty"] = float(outcome.solver_calls)
        result.solve_statistics["partitions_reused"] = float(
            len(outcome.specs) - len(outcome.fresh)
        )
        # The merge sums work diagnostics over every component it was
        # handed, cached ones included; report only the work THIS resolve
        # performed (reused components were solved by an earlier call).
        result.solve_statistics["solve_cpu_seconds"] = float(
            outcome.solve_cpu_seconds
        )
        if outcome.nodes is not None:
            result.solve_statistics["nodes"] = float(outcome.nodes)
        else:
            result.solve_statistics.pop("nodes", None)
        record_widening_statistics(result, outcome, self.footprint_slack)

        # Retain previous entries (bounded, LRU): oscillating deltas — add
        # then revert, AIMD up/down — bring back signatures solved a resolve
        # or two ago, and those must be cache hits, not re-solves.  Markers
        # for rungs proven infeasible on the way up the ladder are cached
        # too, so the next resolve of the same population skips them.
        for spec, solution in zip(outcome.specs, outcome.solutions):
            slacks = solution.member_slacks or tuple(
                self.footprint_slack for _ in spec.statement_ids
            )
            signature = self._signature_for(spec.statement_ids, slacks)
            self._cache.pop(signature, None)
            self._cache[signature] = solution
        for key in outcome.infeasible_keys:
            self._cache[self._signature_for(*key)] = INFEASIBLE_COMPONENT
        while len(self._cache) > self._cache_limit:
            self._cache.pop(next(iter(self._cache)))
        # Content-cache adoptions carry incumbent values this session has
        # never seen; they seed warm starts exactly like fresh solves.
        for solution in (*outcome.fresh, *outcome.adopted):
            self._journal.update_items(self._last_values, solution.values_by_name)
        return result

    # -- the live model as a (lazily built) solvable artifact ------------------------

    def _population_signature(self) -> Signature:
        return (
            self.heuristic.value,
            tuple(sorted(self._revisions.items())),
        )

    def _materialize_live(self) -> ProvisioningModel:
        """Build (or reuse) the fully-spliced global model.

        Constructed from the same bookkeeping dicts ``resolve()`` reads,
        through the same canonical constructor the batch path uses, so it
        is coefficient-identical to a from-scratch
        :func:`~repro.core.provisioning.build_provisioning_model` of the
        current statements over the whole topology.  Memoized on the
        population signature: repeated solves without intervening deltas
        reuse the build, any delta invalidates it implicitly, and
        :meth:`restore` drops it explicitly (revision numbers are re-issued
        after a rollback, so signatures alone could not be trusted).
        """
        signature = self._population_signature()
        if self._live is None or self._live_signature != signature:
            self.live_materializations += 1
            self._live = build_model_for_links(
                list(self._statements.values()),
                self._logical,
                self._rates,
                list(self._capacity_mbps.items()),
                heuristic=self.heuristic,
            )
            self._live_signature = signature
        return self._live

    def solve_live(self, solver=None):
        """Solve the lazily-built global model directly (no partitioning,
        no cache).

        Exists as a correctness escape hatch and as the splice-equivalence
        oracle for the test suite; :meth:`resolve` is the fast path.  This
        is the only place the spliced model's construction cost is paid.
        """
        return self._materialize_live().model.solve(solver or self.solver)
