"""The incremental re-provisioning engine (delta compilation).

:class:`IncrementalProvisioner` owns a *live* provisioning model and keeps
it in sync with a changing statement population without ever rebuilding it:

* :meth:`add_statement` splices a statement's flow-conservation rows and
  per-link reservation terms into the model (re-using the indexed
  construction's per-vertex and per-link buckets),
* :meth:`remove_statement` splices them back out,
* :meth:`update_rates` rewrites the statement's guarantee coefficients in
  the reservation rows it touches.

:meth:`resolve` then re-provisions: the active statements are partitioned
into link-disjoint components (union-find over logical link footprints),
components whose membership and rates are unchanged since the previous
solve re-use their cached :class:`~repro.incremental.solve.PartitionSolution`
verbatim, and only the *dirty* components are rebuilt (in canonical order)
and re-solved — concurrently in a process pool when several are dirty, each
warm-started from the previous incumbent projected onto its surviving
variables.  The merged result is bit-identical to a from-scratch
``provision()`` of the same statements because both paths construct and
solve exactly the same canonical component models.

One caveat on that identity: the default SciPy/HiGHS backend ignores warm
starts, so it is exact there.  With the pure-Python
:class:`~repro.lp.branch_and_bound.BranchAndBoundSolver`, a seeded
incumbent prunes open nodes within the solver's ``absolute_gap`` (1e-6),
so on components whose tiebreaker epsilon falls below that gap (more than
roughly a thousand logical edges in one component) a warm-started re-solve
may keep a previous optimum that a cold solve would replace with an
equal-``r_max``, marginally-cheaper-tiebreaker one.  Allocations remain
optimal either way; only tie selection can differ (see the ROADMAP
follow-on on warm-start determinism).

The live model itself is solvable too (:meth:`solve_live`), which is how the
test suite proves that splicing maintains a model coefficient-identical to a
fresh :func:`~repro.core.provisioning.build_provisioning_model` build.
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..core.ast import Statement
from ..core.localization import LocalRates
from ..core.logical import LogicalTopology, build_logical_topology, infer_endpoints
from ..core.provisioning import (
    _MBPS,
    PathSelectionHeuristic,
    ProvisioningResult,
    emit_link_rows,
    set_provisioning_objective,
    splice_statement_rows,
)
from ..errors import ProvisioningError
from ..lp.constraint import Constraint
from ..lp.expr import Variable
from ..lp.model import Model
from ..topology.graph import Topology
from ..units import Bandwidth
from .partition import LinkKey, PartitionSpec, partition_statements
from .solve import (
    PartitionSolution,
    build_partition_model,
    extract_partition_solution,
    merge_partition_solutions,
    project_warm_start,
    solver_consumes_warm_starts,
    solve_partition_models,
    topology_capacities_mbps,
)

#: A partition's cache key: heuristic plus each member's (id, revision).
Signature = Tuple[str, Tuple[Tuple[str, int], ...]]


class IncrementalProvisioner:
    """A live provisioning model supporting add/remove/update + resolve.

    ``max_workers`` > 1 enables the process pool for multi-component
    re-solves; 0 (the default) solves dirty components in-process, which is
    the right choice for the common single-component delta.
    """

    def __init__(
        self,
        topology: Topology,
        placements: Optional[Mapping[str, Iterable[str]]] = None,
        heuristic: PathSelectionHeuristic = PathSelectionHeuristic.MIN_MAX_RATIO,
        solver=None,
        max_workers: int = 0,
        cache_limit: int = 512,
    ) -> None:
        self.topology = topology
        self.placements = dict(placements or {})
        self.heuristic = heuristic
        self.solver = solver
        self.max_workers = max_workers
        self._cache_limit = cache_limit

        self._capacity_mbps = topology_capacities_mbps(topology)
        self._statements: Dict[str, Statement] = {}
        self._logical: Dict[str, LogicalTopology] = {}
        self._rates: Dict[str, LocalRates] = {}
        # Per-statement link footprint, computed once at add time: logical
        # topologies are immutable, and re-walking every statement's edges
        # on each resolve would put O(total logical edges) back on the
        # latency path this engine exists to shrink.
        self._footprints: Dict[str, frozenset] = {}
        self._revisions: Dict[str, int] = {}
        self._revision_counter = itertools.count(1)

        self._cache: Dict[Signature, PartitionSolution] = {}
        self._last_values: Dict[str, float] = {}

        # --- the live global model -------------------------------------------
        self._model = Model(name="merlin-provisioning-live")
        self._edge_variables: Dict[str, Dict[int, Variable]] = {}
        self._flow_rows: Dict[str, List[Constraint]] = {}
        # Per link, per statement: the edge variables contributing to the
        # link's Equation-2 row (the live per-link buckets).
        self._link_members: Dict[LinkKey, Dict[str, List[Variable]]] = {}
        links = list(self._capacity_mbps.items())
        (
            self._r_max,
            self._big_r_max,
            self._reservation_fraction,
            self._reserve_rows,
            self._max_capacity_mbps,
        ) = emit_link_rows(self._model, links, {})
        self._objective_stale = True

    # -- introspection -----------------------------------------------------------

    def statement_ids(self) -> List[str]:
        return list(self._statements)

    def has_statement(self, identifier: str) -> bool:
        return identifier in self._statements

    def rates_for(self, identifier: str) -> LocalRates:
        return self._rates[identifier]

    def logical_for(self, identifier: str) -> LogicalTopology:
        return self._logical[identifier]

    @property
    def live_model(self) -> Model:
        """The spliced global model (objective possibly stale; see sync)."""
        return self._model

    def num_live_variables(self) -> int:
        return self._model.num_variables()

    def num_live_constraints(self) -> int:
        return self._model.num_constraints()

    # -- delta operations ---------------------------------------------------------

    def add_statement(
        self,
        statement: Statement,
        guarantee: Bandwidth,
        cap: Optional[Bandwidth] = None,
        logical: Optional[LogicalTopology] = None,
    ) -> None:
        """Splice a guaranteed statement into the live model.

        ``logical`` may be supplied when the caller already built the
        statement's product graph (the compiler's memoized pipeline does);
        otherwise it is constructed here from the statement's inferred
        endpoints.
        """
        identifier = statement.identifier
        if identifier in self._statements:
            raise ProvisioningError(
                f"statement {identifier!r} is already provisioned; remove it "
                "first or use update_rates"
            )
        if guarantee is None or guarantee.bps_value <= 0:
            raise ProvisioningError(
                f"statement {identifier!r} needs a positive bandwidth "
                "guarantee to enter the provisioning MIP"
            )
        if logical is None:
            source, destination = infer_endpoints(statement, self.topology)
            if source is None or destination is None:
                raise ProvisioningError(
                    f"statement {identifier!r} requests a bandwidth guarantee "
                    "but its source/destination hosts cannot be determined"
                )
            logical = build_logical_topology(
                statement,
                self.topology,
                self.placements,
                source=source,
                destination=destination,
            )
        if logical.num_edges() == 0:
            raise ProvisioningError(
                f"statement {identifier!r} has no feasible path satisfying "
                "its path expression"
            )

        guarantee_mbps = guarantee.bps_value / _MBPS
        variables, flow_rows, touched = splice_statement_rows(
            self._model, statement, logical
        )
        for key, members in touched.items():
            row = self._reserve_rows[key].expression
            for variable in members:
                row.add_term(variable, -guarantee_mbps)

        self._statements[identifier] = statement
        self._logical[identifier] = logical
        self._footprints[identifier] = frozenset(logical.physical_links_used())
        self._rates[identifier] = LocalRates(
            identifier=identifier, guarantee=guarantee, cap=cap
        )
        self._edge_variables[identifier] = variables
        self._flow_rows[identifier] = flow_rows
        for key, members in touched.items():
            self._link_members.setdefault(key, {})[identifier] = members
        self._revisions[identifier] = next(self._revision_counter)
        self._objective_stale = True

    def remove_statement(self, identifier: str) -> None:
        """Splice a statement's rows and variables back out of the live model."""
        if identifier not in self._statements:
            raise ProvisioningError(f"unknown statement {identifier!r}")
        for key in self._footprints[identifier]:
            members = self._link_members.get(key)
            if members is None:
                continue
            variables = members.pop(identifier, None)
            if variables:
                row = self._reserve_rows[key].expression
                for variable in variables:
                    row.remove_term(variable)
            if not members:
                del self._link_members[key]
        self._model.remove_constraints(self._flow_rows.pop(identifier))
        removed_variables = self._edge_variables.pop(identifier)
        self._model.remove_variables(removed_variables.values())
        # Drop the statement's incumbent values: a later re-add under the
        # same identifier reuses variable names, and a projection built from
        # a different logical topology must not masquerade as a warm start
        # (it also keeps the incumbent map from growing without bound).
        for variable in removed_variables.values():
            self._last_values.pop(variable.name, None)
        del self._statements[identifier]
        del self._logical[identifier]
        del self._footprints[identifier]
        del self._rates[identifier]
        del self._revisions[identifier]
        self._objective_stale = True

    def update_rates(
        self,
        identifier: str,
        guarantee: Bandwidth,
        cap: Optional[Bandwidth] = None,
    ) -> None:
        """Rewrite a statement's guarantee in every reservation row it touches."""
        if identifier not in self._statements:
            raise ProvisioningError(f"unknown statement {identifier!r}")
        if guarantee is None or guarantee.bps_value <= 0:
            raise ProvisioningError(
                f"statement {identifier!r} needs a positive guarantee; remove "
                "it instead to make it best-effort"
            )
        previous = self._rates[identifier].guarantee
        self._rates[identifier] = LocalRates(
            identifier=identifier, guarantee=guarantee, cap=cap
        )
        if previous is not None and previous.bps_value == guarantee.bps_value:
            # Cap-only change: the cap never enters the provisioning MIP, so
            # the model is untouched and the statement's partition stays
            # clean (its cached solution remains valid).
            return
        guarantee_mbps = guarantee.bps_value / _MBPS
        for key in self._footprints[identifier]:
            members = self._link_members.get(key)
            if members is None:
                continue
            for variable in members.get(identifier, ()):
                self._reserve_rows[key].expression.set_term(
                    variable, -guarantee_mbps
                )
        self._revisions[identifier] = next(self._revision_counter)
        self._objective_stale = True

    # -- solving -------------------------------------------------------------------

    def _signature(self, spec: PartitionSpec) -> Signature:
        return (
            self.heuristic.value,
            tuple((sid, self._revisions[sid]) for sid in spec.statement_ids),
        )

    def prime(self, solutions: Iterable[PartitionSolution]) -> int:
        """Seed the component cache from a previous full provisioning run.

        Solutions are matched to the current components by statement-id set;
        the number of adopted solutions is returned.  This lets a compiler
        hand its ``ProvisioningResult.partition_solutions`` to a fresh
        engine so the first delta only re-solves what it touched.
        """
        by_members = {
            frozenset(solution.spec.statement_ids): solution
            for solution in solutions
        }
        adopted = 0
        for spec in self._current_partitions():
            solution = by_members.get(frozenset(spec.statement_ids))
            if solution is not None:
                self._cache[self._signature(spec)] = solution
                self._last_values.update(solution.values_by_name)
                adopted += 1
        return adopted

    def _current_partitions(self) -> List[PartitionSpec]:
        return partition_statements(self._footprints)

    def resolve(self) -> ProvisioningResult:
        """Re-provision the active statements, re-solving only dirty components.

        The returned :class:`ProvisioningResult` is identical to what a
        from-scratch partitioned ``provision()`` of the same statements
        would produce; ``solve_statistics`` additionally reports
        ``partitions_dirty`` / ``partitions_reused``.
        """
        if not self._statements:
            return ProvisioningResult(
                paths={},
                link_reservations={},
                max_utilization=0.0,
                max_reservation=Bandwidth(0.0),
                lp_construction_seconds=0.0,
                lp_solve_seconds=0.0,
                num_variables=0,
                num_constraints=0,
            )
        specs = self._current_partitions()
        reused: Dict[PartitionSpec, PartitionSolution] = {}
        dirty: List[PartitionSpec] = []
        for spec in specs:
            cached = self._cache.get(self._signature(spec))
            if cached is not None:
                reused[spec] = cached
            else:
                dirty.append(spec)

        construction_start = time.perf_counter()
        built_models = []
        build_seconds = []
        for spec in dirty:
            build_start = time.perf_counter()
            built_models.append(
                build_partition_model(
                    spec,
                    self._statements,
                    self._logical,
                    self._rates,
                    self._capacity_mbps,
                    self.heuristic,
                )
            )
            build_seconds.append(time.perf_counter() - build_start)
        lp_construction_seconds = time.perf_counter() - construction_start

        seed_starts = bool(self._last_values) and solver_consumes_warm_starts(
            self.solver
        )
        warm_starts = [
            project_warm_start(built, self._last_values) if seed_starts else None
            for built in built_models
        ]
        solve_start = time.perf_counter()
        outcomes = solve_partition_models(
            built_models,
            solver=self.solver,
            warm_starts=warm_starts,
            max_workers=self.max_workers,
        )
        lp_solve_seconds = time.perf_counter() - solve_start

        solved = {
            spec: extract_partition_solution(spec, built, outcome, seconds)
            for spec, built, outcome, seconds in zip(
                dirty, built_models, outcomes, build_seconds
            )
        }
        solutions = [
            reused[spec] if spec in reused else solved[spec] for spec in specs
        ]

        result = merge_partition_solutions(
            solutions,
            self._statements,
            self._rates,
            self.topology,
            self.placements,
            lp_construction_seconds,
            lp_solve_seconds,
            heuristic=self.heuristic,
        )
        result.solve_statistics["partitions_dirty"] = float(len(dirty))
        result.solve_statistics["partitions_reused"] = float(len(reused))
        # The merge sums work diagnostics over every component it was
        # handed, cached ones included; report only the work THIS resolve
        # performed (reused components were solved by an earlier call).
        result.solve_statistics["solve_cpu_seconds"] = float(
            sum(solution.solve_seconds for solution in solved.values())
        )
        dirty_nodes = [
            solution.statistics.get("nodes") for solution in solved.values()
        ]
        if any(value is not None for value in dirty_nodes):
            result.solve_statistics["nodes"] = float(
                sum(value or 0.0 for value in dirty_nodes)
            )
        else:
            result.solve_statistics.pop("nodes", None)

        # Retain previous entries (bounded, LRU): oscillating deltas — add
        # then revert, AIMD up/down — bring back signatures solved a resolve
        # or two ago, and those must be cache hits, not re-solves.
        for spec, solution in zip(specs, solutions):
            signature = self._signature(spec)
            self._cache.pop(signature, None)
            self._cache[signature] = solution
        while len(self._cache) > self._cache_limit:
            self._cache.pop(next(iter(self._cache)))
        for solution in solved.values():
            self._last_values.update(solution.values_by_name)
        return result

    # -- the live model as a solvable artifact --------------------------------------

    def sync_objective(self) -> None:
        """Refresh the live model's objective after deltas.

        The tiebreaker epsilon and the guarantee quantum depend on the
        statement population, so the objective is rebuilt lazily rather than
        patched on every delta.
        """
        if not self._objective_stale:
            return
        set_provisioning_objective(
            self._model,
            list(self._statements.values()),
            self._logical,
            self._rates,
            self._edge_variables,
            self._r_max,
            self._big_r_max,
            self.heuristic,
            self._max_capacity_mbps,
        )
        self._objective_stale = False

    def solve_live(self, solver=None):
        """Solve the live global model directly (no partitioning, no cache).

        Exists as a correctness escape hatch and for the splice-equivalence
        tests; :meth:`resolve` is the fast path.
        """
        self.sync_objective()
        return self._model.solve(solver or self.solver)
