"""Partitioning of provisioning statements into link-disjoint components.

The provisioning MIP couples statements only through the per-link
reservation rows (Equation 2): two statements interact iff their logical
topologies can map traffic onto a common physical link.  The connected
components of that "shares a link" relation therefore decompose the MIP
exactly — each component can be built and solved independently, and the
union of the component solutions is a solution of the whole program.

Components are computed with a union-find over each statement's *link
footprint* (the set of undirected physical links its logical topology uses,
:meth:`~repro.core.logical.LogicalTopology.physical_links_used`).  The
result is canonical: statement identifiers and link keys inside a
:class:`PartitionSpec` are sorted, and the partition list is ordered by each
component's smallest statement identifier, so the same statement population
always produces the same specs — the property the incremental engine's
solution cache and the full-compile/incremental equivalence rely on.

Footprint tightening
--------------------
An unconstrained ``.*`` path expression touches every physical link, so one
such statement used to glue the whole MIP into a single component and erase
the partition parallelism.  :func:`tighten_logical_topologies` therefore
restricts each statement's product graph to its *cost-bounded* subgraph
(:func:`~repro.core.logical.prune_to_cost_bound`: edges on some
source-to-sink path of at most optimal-hops + slack physical links) before
footprints are taken.  Crucially the tightened topology is also what the
component MIPs are built from, so the decomposition stays exact — a
statement cannot reserve bandwidth on a link its footprint excludes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from ..core.logical import LogicalTopology, prune_to_cost_bound

#: An undirected physical link, keyed as ``tuple(sorted((u, v)))``.
LinkKey = Tuple[str, str]


def tighten_logical_topologies(
    logical_topologies: Mapping[str, LogicalTopology],
    slack: Optional[int],
) -> Dict[str, LogicalTopology]:
    """Cost-bound every statement's logical topology for partitioning.

    ``slack`` is the number of extra physical hops allowed over each
    statement's optimum (``None`` disables tightening and returns the
    inputs unchanged).  Already-tight topologies are returned by reference,
    so memoized product graphs keep being shared.
    """
    if slack is None:
        return dict(logical_topologies)
    return {
        identifier: prune_to_cost_bound(logical, slack)
        for identifier, logical in logical_topologies.items()
    }


@dataclass(frozen=True)
class PartitionSpec:
    """One link-disjoint component of the provisioning problem."""

    statement_ids: Tuple[str, ...]
    links: Tuple[LinkKey, ...]

    def __len__(self) -> int:
        return len(self.statement_ids)


class UnionFind:
    """A small union-find (disjoint-set) structure over hashable items."""

    def __init__(self) -> None:
        self._parent: Dict[object, object] = {}
        self._rank: Dict[object, int] = {}

    def add(self, item) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0

    def find(self, item):
        root = item
        while self._parent[root] is not root:
            root = self._parent[root]
        # Path compression.
        while self._parent[item] is not root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, left, right) -> None:
        self.add(left)
        self.add(right)
        left_root, right_root = self.find(left), self.find(right)
        if left_root is right_root:
            return
        if self._rank[left_root] < self._rank[right_root]:
            left_root, right_root = right_root, left_root
        self._parent[right_root] = left_root
        if self._rank[left_root] == self._rank[right_root]:
            self._rank[left_root] += 1


def partition_statements(
    footprints: Mapping[str, Iterable[LinkKey]],
) -> List[PartitionSpec]:
    """Group statements into link-disjoint components.

    ``footprints`` maps each statement identifier to the physical links its
    logical topology can use.  Statements with an empty footprint (paths
    that never leave a host) form singleton components with no links.
    """
    uf = UnionFind()
    link_sets: Dict[str, FrozenSet[LinkKey]] = {}
    first_owner: Dict[LinkKey, str] = {}
    for identifier in sorted(footprints):
        links = frozenset(footprints[identifier])
        link_sets[identifier] = links
        uf.add(identifier)
        for link in links:
            owner = first_owner.setdefault(link, identifier)
            if owner != identifier:
                uf.union(owner, identifier)

    members: Dict[object, List[str]] = {}
    for identifier in link_sets:
        members.setdefault(uf.find(identifier), []).append(identifier)

    specs = []
    for group in members.values():
        ids = tuple(sorted(group))
        links = sorted(set().union(*(link_sets[identifier] for identifier in ids)))
        specs.append(PartitionSpec(statement_ids=ids, links=tuple(links)))
    specs.sort(key=lambda spec: spec.statement_ids[0])
    return specs
