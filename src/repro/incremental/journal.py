"""Undo journal: O(1) checkpoints, O(delta) rollback, O(1) commit.

The shadow-checkpoint transactions introduced in PR 5 copied *every*
session dict on each ``recompile(delta)`` — exact, but O(population) per
delta, which dominates once a long-running provisioner carries 100k+
statements and each delta touches a handful of them.  This module
replaces the copies with the classic inverse-operation log used by
in-memory databases:

* every mutation of journaled state appends a closure that undoes *just
  that mutation* (restore the old value, delete the inserted key,
  re-insert the removed list element at its old index);
* ``mark()`` — taking a checkpoint — merely records the current journal
  position: O(1), no copying;
* ``rollback(mark)`` pops and runs undo closures from the tail back to
  the mark's position: O(entries since the mark) = O(delta);
* ``release(mark)`` — committing — drops the mark and truncates any
  journal prefix no outstanding mark can still reach: O(freed entries),
  amortized O(1) per recorded entry.

When no marks are outstanding ``record`` is a no-op, so code outside a
transaction pays one predicate check per mutation and nothing else.

Marks are *stacked*, not independent: rolling back to an earlier mark
invalidates every later one (their positions no longer exist), and the
journal refuses stale marks loudly rather than silently corrupting
state.  This matches the transaction discipline of ``recompile`` (one
mark per delta, strictly nested) and of the session facade's
``checkpoint()``/``rollback()`` unit-of-work pattern.

Ordering caveat: undoing a dict deletion re-inserts the key at the *end*
of the dict, so journaled rollback preserves dict *contents* but not
insertion order.  State whose iteration order is behaviorally visible
(e.g. the statement order that drives VLAN/queue allocation in codegen)
must carry explicit sequence stamps and sort on use — see
``_CompilerSession.seq`` in ``core/compiler.py``.  The engine's dicts
are all order-insensitive (partitioning canonicalizes by sorted ids).
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, MutableMapping, Tuple

__all__ = ["JournalError", "JournalMark", "UndoJournal"]


class JournalError(RuntimeError):
    """A mark was used after the position it names ceased to exist."""


@dataclass(frozen=True)
class JournalMark:
    """An O(1) checkpoint token: a position in the undo journal.

    ``serial`` distinguishes marks that share a position (nested
    checkpoints taken back-to-back) and lets the journal detect stale
    tokens after a rollback invalidated them.
    """

    position: int
    serial: int


_ABSENT = object()


class UndoJournal:
    """An inverse-operation log over arbitrary Python containers.

    The journal does not own the state it protects; mutations flow
    through the helper methods (``set_item`` / ``del_item`` /
    ``set_attr`` / ``update_items`` / ``list_append`` / ``list_remove``)
    which perform the mutation *and* record its inverse when at least
    one mark is outstanding.  Arbitrary inverses can be attached with
    ``record``.
    """

    def __init__(self) -> None:
        self._entries: List[Callable[[], None]] = []
        self._offset = 0  # absolute position of _entries[0]
        self._marks: Dict[int, int] = {}  # serial -> absolute position
        self._serial = 0

    # ------------------------------------------------------------------
    # transaction surface
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True when at least one mark is outstanding (recording on)."""
        return bool(self._marks)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def position(self) -> int:
        """Absolute position of the journal tail."""
        return self._offset + len(self._entries)

    def mark(self) -> JournalMark:
        """Take an O(1) checkpoint at the current journal position."""
        self._serial += 1
        mark = JournalMark(position=self.position, serial=self._serial)
        self._marks[mark.serial] = mark.position
        return mark

    def rollback(self, mark: JournalMark) -> int:
        """Undo every mutation recorded since ``mark``; keep it live.

        Returns the number of undo entries replayed.  Later marks are
        invalidated (their positions no longer exist); the rolled-back
        mark itself stays valid so a unit of work can retry.
        """
        target = self._marks.get(mark.serial)
        if target is None or target != mark.position:
            raise JournalError(
                "stale journal mark: a rollback to an earlier mark (or a "
                "legacy snapshot restore) already discarded this position"
            )
        replayed = 0
        while self.position > target:
            undo = self._entries.pop()
            undo()
            replayed += 1
        # Positions beyond the target no longer exist.
        self._marks = {
            serial: pos for serial, pos in self._marks.items() if pos <= target
        }
        return replayed

    def release(self, mark: JournalMark) -> None:
        """Commit: drop ``mark`` and truncate unreachable journal prefix.

        Releasing an already-invalidated mark is a no-op (the rollback
        that invalidated it already discarded its entries).
        """
        position = self._marks.pop(mark.serial, None)
        if position is None:
            return
        if not self._marks:
            # No outstanding mark can reach any entry: drop the whole log.
            self._offset = self.position
            self._entries.clear()
            return
        floor = min(self._marks.values())
        if floor > self._offset:
            del self._entries[: floor - self._offset]
            self._offset = floor

    def invalidate_all(self) -> None:
        """Discard every entry and mark (legacy snapshot restore path)."""
        self._offset += len(self._entries)
        self._entries.clear()
        self._marks.clear()

    # ------------------------------------------------------------------
    # journaled mutation helpers
    # ------------------------------------------------------------------
    def record(self, undo: Callable[[], None]) -> None:
        """Attach an arbitrary inverse operation (no-op when inactive)."""
        if self._marks:
            self._entries.append(undo)

    def set_item(self, mapping: MutableMapping, key: Any, value: Any) -> None:
        if self._marks:
            old = mapping.get(key, _ABSENT)
            if old is _ABSENT:
                def undo() -> None:
                    mapping.pop(key, None)
            else:
                def undo() -> None:
                    mapping[key] = old
            self._entries.append(undo)
        mapping[key] = value

    def del_item(self, mapping: MutableMapping, key: Any) -> None:
        """Delete ``key`` if present (missing keys are a silent no-op)."""
        if key not in mapping:
            return
        old = mapping[key]
        if self._marks:
            def undo() -> None:
                mapping[key] = old
            self._entries.append(undo)
        del mapping[key]

    def update_items(self, mapping: MutableMapping, items: Mapping) -> None:
        """``mapping.update(items)`` with a single bulk undo entry."""
        if self._marks and items:
            saved: List[Tuple[Any, Any]] = [
                (key, mapping.get(key, _ABSENT)) for key in items
            ]

            def undo() -> None:
                for key, old in saved:
                    if old is _ABSENT:
                        mapping.pop(key, None)
                    else:
                        mapping[key] = old

            self._entries.append(undo)
        mapping.update(items)

    def set_attr(self, obj: Any, name: str, value: Any) -> None:
        if self._marks:
            old = getattr(obj, name)

            def undo() -> None:
                setattr(obj, name, old)

            self._entries.append(undo)
        setattr(obj, name, value)

    def list_append(self, lst: List, item: Any) -> None:
        if self._marks:
            self._entries.append(lst.pop)
        lst.append(item)

    def list_remove(self, lst: List, item: Any) -> None:
        """Remove ``item``; undo re-inserts it at its original index."""
        index = lst.index(item)
        if self._marks:
            def undo() -> None:
                lst.insert(index, item)
            self._entries.append(undo)
        del lst[index]
