"""Partition-parallel solving of the provisioning MIP.

This module is the shared back half of both provisioning paths:

* :func:`provision_partitioned` — the full-compile path: partition the
  statements, build one sub-model per component
  (:func:`build_partition_model`), solve every component, and merge.
* the incremental engine (:mod:`repro.incremental.engine`) — builds and
  solves only the *dirty* components of a delta, re-using cached
  :class:`PartitionSolution` objects for untouched ones, then merges with
  the same :func:`merge_partition_solutions`.

Both paths construct each component's model with the same canonical
ordering (statements sorted by identifier, links sorted by key), so a
component's model — and therefore the solver's answer — depends only on the
component's content, never on how the caller arrived at it.  That is the
property behind the engine's equivalence guarantee: a sequence of deltas
followed by ``resolve()`` yields exactly the allocations of a from-scratch
``compile()`` of the final policy.

Disjoint components are independent MIPs, so they can be solved
concurrently: ``max_workers > 1`` ships the built models to the solve
fabric (:mod:`repro.fabric` — a *persistent* worker pool shared across
calls; models pickle cleanly and results return as name-keyed value maps).
A worker crash degrades to a serial in-process solve, never to an error.
Warm starts are projected onto each component's binary edge variables and
repaired (the dependent continuous reservation variables are recomputed)
before being handed to the solver backend.  An optional content-addressed
:class:`~repro.fabric.ComponentSolutionCache` is consulted before any
model is built, so identical components across tenants, sessions, and
sweep runs solve once.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .. import telemetry
from ..core.localization import LocalRates
from ..core.logical import LogicalTopology, prune_to_cost_bound
from ..core.options import _UNSET, ProvisionOptions, coalesce_options, widen_slack
from ..core.provisioning import (
    _MBPS,
    DEFAULT_FOOTPRINT_SLACK,
    PathSelectionHeuristic,
    ProvisioningModel,
    ProvisioningResult,
    _assign_functions,
    _extract_path,
    build_model_for_links,
)
from ..core.allocation import PathAssignment
from ..core.ast import Statement
from ..errors import ProvisioningError
from ..lp.backends import backend_name, capabilities
from ..lp.result import SolveStatus
from ..topology.graph import Topology
from ..units import Bandwidth
from .partition import (
    LinkKey,
    PartitionSpec,
    partition_statements,
    tighten_logical_topologies,
)

#: A component's identity at one widening level: the member statement ids
#: (sorted, as in :class:`PartitionSpec`) plus each member's slack.
ComponentKey = Tuple[Tuple[str, ...], Tuple[Optional[int], ...]]


class _InfeasibleComponent:
    """Cache marker: a (members, slacks) component proven to have no solution."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<infeasible-component>"


#: Singleton marker cached (by the incremental engine) for component keys
#: whose model came back infeasible, so a later resolve walking the same
#: widening ladder skips straight past the levels already proven hopeless.
INFEASIBLE_COMPONENT = _InfeasibleComponent()


@dataclass
class PartitionSolution:
    """The solved state of one link-disjoint component.

    Everything the merge step (and the incremental engine's cache) needs:
    the location paths selected for each member statement, the reservation
    fraction of each component link, the raw variable assignment by name
    (the warm-start source for later re-solves), and solver diagnostics.
    """

    spec: PartitionSpec
    location_paths: Dict[str, Tuple[str, ...]]
    fractions: Dict[LinkKey, float]
    values_by_name: Dict[str, float]
    status: str
    objective: Optional[float]
    statistics: Dict[str, float] = field(default_factory=dict)
    num_variables: int = 0
    num_constraints: int = 0
    construction_seconds: float = 0.0
    solve_seconds: float = 0.0
    #: The worker-side ``component_solve`` span, serialized
    #: (``Span.to_payload`` shape).  Solves run in a process pool whose
    #: workers cannot reach the parent's recorder; the payload rides back
    #: with the solution and the consuming side re-parents it via
    #: ``telemetry.adopt``.  ``solve_seconds`` above is this span's
    #: duration — the wall time of the component solve.
    span: Optional[Dict[str, object]] = None
    #: The footprint slack each member was tightened with when this
    #: component was solved, aligned with ``spec.statement_ids`` (``None``
    #: = untightened; empty for solutions predating slack widening).  Part
    #: of the component's cache identity: the same members at a different
    #: widening level are a different model.
    member_slacks: Tuple[Optional[int], ...] = ()


def link_footprints(
    statement_ids: Iterable[str],
    logical_topologies: Mapping[str, LogicalTopology],
) -> Dict[str, frozenset]:
    """Each statement's set of usable physical links (partitioning input)."""
    return {
        identifier: frozenset(logical_topologies[identifier].physical_links_used())
        for identifier in statement_ids
    }


def topology_capacities_mbps(topology: Topology) -> Dict[LinkKey, float]:
    """Undirected link key -> capacity in Mbps (the MIP's unit)."""
    return {
        tuple(sorted((link.source, link.target))): link.capacity.bps_value / _MBPS
        for link in topology.links()
    }


def build_partition_model(
    spec: PartitionSpec,
    statements_by_id: Mapping[str, Statement],
    logical_topologies: Mapping[str, LogicalTopology],
    rates: Mapping[str, LocalRates],
    capacity_mbps: Mapping[LinkKey, float],
    heuristic: PathSelectionHeuristic,
) -> ProvisioningModel:
    """Build one component's sub-model in canonical order.

    Statement order is the spec's (sorted) identifier order and link order
    is the spec's (sorted) key order, making the model a pure function of
    the component's content.
    """
    members = [statements_by_id[identifier] for identifier in spec.statement_ids]
    links = [(key, capacity_mbps[key]) for key in spec.links]
    return build_model_for_links(
        members, logical_topologies, rates, links, heuristic=heuristic
    )


def solver_consumes_warm_starts(solver) -> bool:
    """Whether computing a MIP start for this backend is worthwhile.

    Delegates to the backend capability protocol
    (:func:`repro.lp.backends.capabilities`): a backend receives starts iff
    it declares ``consumes_warm_starts = True``.  ``None`` (the default
    backend, :class:`~repro.lp.scipy_backend.ScipySolver`) records-and-
    ignores starts, and an unknown third-party backend that declares
    nothing gets the one documented default — no starts — so projection
    work is never wasted on the delta-latency path.
    """
    if solver is None:
        return False
    return capabilities(solver).consumes_warm_starts


def project_warm_start(
    built: ProvisioningModel, previous_values: Mapping[str, float]
) -> Optional[Dict[str, float]]:
    """Project a prior incumbent onto a component model and repair it.

    Binary edge variables take their previous values (statements absent from
    the prior solution contribute nothing and the projection is abandoned —
    a partial path cannot be feasible).  The dependent continuous variables
    are recomputed from the projected edges: each link's reservation
    fraction from its Equation-2 row, then ``r_max`` / ``R_max`` as the
    maxima.  The solver still validates the start before seeding its
    incumbent, so a stale projection degrades to a cold solve, never to a
    wrong answer.
    """
    values: Dict[str, float] = {}
    for variables in built.edge_variables.values():
        for variable in variables.values():
            previous = previous_values.get(variable.name)
            if previous is None:
                return None
            values[variable.name] = previous
    r_max = 0.0
    big_r_max = 0.0
    for key, r_uv in built.reservation_fraction.items():
        # Equation 2 row: capacity * r_uv - sum(g_i * x_e) == 0.
        reserve = built.reserve_rows[key].expression
        reserved_mbps = 0.0
        capacity = 0.0
        for variable, coefficient in reserve.coefficients.items():
            if variable == r_uv:
                capacity = coefficient
            else:
                reserved_mbps += -coefficient * values.get(variable.name, 0.0)
        fraction = reserved_mbps / capacity if capacity > 0.0 else 0.0
        values[r_uv.name] = fraction
        r_max = max(r_max, fraction)
        big_r_max = max(big_r_max, reserved_mbps)
    values[built.r_max.name] = r_max
    values[built.big_r_max.name] = big_r_max
    return values


def _solve_model_payload(payload):
    """Process-pool worker: solve one component model.

    Takes ``(model, solver, warm_start)`` and returns a picklable tuple
    ``(status value, values by variable name, objective, statistics,
    span payload)``.  The span payload is the worker-side
    ``component_solve`` timing in ``Span.to_payload`` form: workers have
    no recorder (and their ``perf_counter`` origin is not comparable
    across processes), so the parent re-anchors and re-parents it via
    ``telemetry.adopt``.
    """
    model, solver, warm_start = payload
    started = telemetry.clock()
    result = model.solve(solver, warm_start=warm_start)
    duration = telemetry.clock() - started
    statistics = dict(result.statistics)
    # Which backend produced the numbers: the portfolio driver records the
    # winner itself; fixed backends are stamped with their declared name.
    statistics.setdefault("backend", backend_name(solver))
    span_payload = {
        "name": "component_solve",
        "duration": duration,
        "attributes": {
            "backend": statistics.get("backend", ""),
            "status": result.status.value,
            "warm_started": warm_start is not None,
        },
    }
    return (
        result.status.value,
        result.values_by_name(),
        result.objective,
        statistics,
        span_payload,
    )


def solve_partition_models(
    built_models: Sequence[ProvisioningModel],
    solver=None,
    warm_starts: Optional[Sequence[Optional[Mapping[str, float]]]] = None,
    max_workers: int = 0,
    fabric=None,
) -> List[Tuple[str, Dict[str, float], Optional[float], Dict[str, float], Dict[str, object]]]:
    """Solve component models, in-process or on the solve fabric.

    Returns one ``(status, values_by_name, objective, statistics,
    span payload)`` tuple per model, in input order.  Multi-model solves go
    to ``fabric`` (a :class:`repro.fabric.SolveFabric`) when one is
    configured, else — with ``max_workers > 1`` — to the process-wide
    :func:`repro.fabric.shared_fabric`, whose workers persist across
    calls; a single dirty component (the common 1-statement delta) never
    pays IPC.  Models are dispatched largest-first by a variables x
    constraints estimate.  If the pool breaks beyond the fabric's own
    respawn budget (``BrokenProcessPool``), the remaining models are solved
    serially in-process instead of propagating the executor error.
    """
    if warm_starts is None:
        warm_starts = [None] * len(built_models)
    payloads = [
        (built.model, solver, warm)
        for built, warm in zip(built_models, warm_starts)
    ]
    if len(payloads) > 1 and (fabric is not None or max_workers > 1):
        if fabric is None:
            from ..fabric.pool import shared_fabric

            fabric = shared_fabric(max_workers)
        estimates = [
            float(built.model.num_variables() * built.model.num_constraints())
            for built in built_models
        ]
        try:
            return fabric.solve(payloads, estimates=estimates)
        except BrokenExecutor:
            # Belt and braces under the fabric's own crash handling: a pool
            # that dies during submission must degrade to a serial solve,
            # not surface executor plumbing to the provisioning caller.
            telemetry.counter("fabric_serial_fallbacks")
            return [_solve_model_payload(payload) for payload in payloads]
    return [_solve_model_payload(payload) for payload in payloads]


def _raise_component_infeasible(spec: PartitionSpec, status_value: str) -> None:
    members = ", ".join(spec.statement_ids)
    raise ProvisioningError(
        "bandwidth provisioning is infeasible for the statement group "
        f"[{members}]: the requested guarantees cannot be satisfied "
        f"(solver status: {status_value})"
    )


def extract_partition_solution(
    spec: PartitionSpec,
    built: ProvisioningModel,
    outcome: Tuple[str, Dict[str, float], Optional[float], Dict[str, float], Dict[str, object]],
    construction_seconds: float = 0.0,
    member_slacks: Tuple[Optional[int], ...] = (),
) -> PartitionSolution:
    """Read a component's solve outcome into a :class:`PartitionSolution`."""
    status_value, values_by_name, objective, statistics, span_payload = outcome
    status = SolveStatus(status_value)
    if not status.has_solution:
        _raise_component_infeasible(spec, status_value)
    location_paths: Dict[str, Tuple[str, ...]] = {}
    for identifier in spec.statement_ids:
        logical = built.logical_topologies[identifier]
        selected = [
            logical.edges[index]
            for index, variable in built.edge_variables[identifier].items()
            if values_by_name.get(variable.name, 0.0) > 0.5
        ]
        location_paths[identifier] = tuple(_extract_path(selected))
    fractions = {
        key: max(0.0, values_by_name.get(variable.name, 0.0))
        for key, variable in built.reservation_fraction.items()
    }
    return PartitionSolution(
        spec=spec,
        location_paths=location_paths,
        fractions=fractions,
        values_by_name=values_by_name,
        status=status_value,
        objective=objective,
        statistics=statistics,
        num_variables=built.model.num_variables(),
        num_constraints=built.model.num_constraints(),
        construction_seconds=construction_seconds,
        # Span-derived: the component's solve wall time is the worker
        # span's duration, not a parallel stopwatch.  Falls back to the
        # backend's own measure for spanless (synthetic/test) outcomes.
        solve_seconds=float(
            (span_payload or {}).get(
                "duration", statistics.get("solve_seconds", 0.0)
            )
        ),
        member_slacks=member_slacks,
        span=span_payload,
    )


@dataclass
class WideningOutcome:
    """What :func:`solve_components_with_widening` hands back to its caller.

    ``specs`` / ``solutions`` are the *final* partition (after any widening
    merged components) and its solutions, aligned.  ``fresh`` is the subset
    of final solutions actually solved by this call (the rest came from the
    caller's ``lookup``); ``adopted`` is the subset re-addressed out of the
    content-addressed component cache — no solve happened, but their
    incumbent values are new to the caller, so the incremental engine
    updates its warm-start map from ``fresh`` *and* ``adopted``.
    ``infeasible_keys`` lists every (members, slacks) combination proven
    infeasible along the ladder, so callers can cache the markers and skip
    those rungs next time.
    """

    specs: List[PartitionSpec]
    solutions: List[PartitionSolution]
    fresh: List[PartitionSolution]
    infeasible_keys: List[ComponentKey]
    adopted: List[PartitionSolution] = field(default_factory=list)
    slack_retries: int = 0
    solver_calls: int = 0
    construction_seconds: float = 0.0
    solve_seconds: float = 0.0
    solve_cpu_seconds: float = 0.0
    nodes: Optional[float] = None

    def slack_used(
        self, base_slack: Optional[int]
    ) -> Optional[float]:
        """The widest slack any final component was solved with.

        ``None``-slack (untightened) components dominate every finite one
        and are reported as ``inf``; with no widening information recorded
        the base slack is reported unchanged.
        """
        widest: Optional[float] = (
            float("inf") if base_slack is None else float(base_slack)
        )
        for solution in self.solutions:
            for slack in solution.member_slacks:
                value = float("inf") if slack is None else float(slack)
                if widest is None or value > widest:
                    widest = value
        return widest


def solve_components_with_widening(
    statements_by_id: Mapping[str, Statement],
    logical_topologies: Mapping[str, LogicalTopology],
    rates: Mapping[str, LocalRates],
    capacity_mbps: Mapping[LinkKey, float],
    heuristic: PathSelectionHeuristic,
    solver=None,
    max_workers: int = 0,
    footprint_slack: Optional[int] = DEFAULT_FOOTPRINT_SLACK,
    widen: bool = True,
    base_tightened: Optional[Mapping[str, LogicalTopology]] = None,
    warm_values: Optional[Mapping[str, float]] = None,
    lookup: Optional[
        Callable[[PartitionSpec, Tuple[Optional[int], ...]], object]
    ] = None,
    tighten_cache: Optional[Dict[str, Dict[Optional[int], tuple]]] = None,
    component_cache=None,
    fabric=None,
) -> WideningOutcome:
    """Partition, solve, and self-heal cost-bound infeasibilities.

    This is the one shared solving loop of both provisioning paths — the
    full compile (:func:`provision_partitioned`) and the incremental
    engine's ``resolve()`` — which is what makes slack widening
    transactional-equivalence-safe: both paths walk the identical,
    deterministic ladder from the same inputs, so a session that widened
    its way through a failure ends at exactly the allocations a
    from-scratch compile of the same statements would produce.

    The fixpoint loop per round:

    1. tighten every statement's *untightened* logical topology at its
       current slack level (all statements start at ``footprint_slack``;
       levels are per-resolve transient, never sticky across calls),
    2. re-partition the entire population — widened footprints can merge
       previously link-disjoint components, and the exactness of the
       decomposition (no link is shared across components) must be
       re-established every round,
    3. solve the components not already known (from ``lookup``, or solved
       earlier in this call), warm-started from ``warm_values`` when the
       backend consumes starts,
    4. for every component that came back infeasible, widen **all** its
       members one rung (2 -> 4 -> 8 -> ``None``) and repeat; a component
       infeasible with every member untightened is genuinely infeasible
       and raises :class:`ProvisioningError`.

    ``lookup`` may return a cached :class:`PartitionSolution`, the
    :data:`INFEASIBLE_COMPONENT` marker (skip the rung without re-solving),
    or ``None``.  With ``widen=False`` the first infeasible component
    raises immediately (the pre-widening behaviour).

    ``tighten_cache`` is the (hoistable) memo of cost-bound tightening
    work, shaped ``{sid: {slack: (base, tightened, footprint)}}``.  Passing
    the same dict across calls — the incremental engine passes a
    session-owned one — makes tightening survive recompiles; entries
    self-invalidate by identity (an entry whose recorded ``base`` is not
    the caller's current untightened topology is recomputed), so a stale
    dict can cost a recompute but never a wrong footprint.  ``None`` uses a
    per-call memo, the original behaviour.

    ``component_cache`` (a :class:`repro.fabric.ComponentSolutionCache`)
    is consulted *after* ``lookup`` misses and *before* the model is built:
    a content hit is re-addressed to this component's statement ids and
    reported in ``WideningOutcome.adopted``; fresh proven-optimal solves
    (and proven infeasibilities) are stored back.  ``fabric`` routes
    multi-component solves onto a persistent worker pool (see
    :func:`solve_partition_models`).
    """
    slack_by_id: Dict[str, Optional[int]] = {
        sid: footprint_slack for sid in statements_by_id
    }
    if tighten_cache is None:
        tighten_cache = {}
    local: Dict[ComponentKey, PartitionSolution] = {}
    infeasible_local: Dict[ComponentKey, str] = {}
    solved_keys: set = set()
    adopted_keys: set = set()
    fresh_by_key: Dict[ComponentKey, PartitionSolution] = {}
    discovered_infeasible: List[ComponentKey] = []
    slack_retries = 0
    solver_calls = 0
    construction_total = 0.0
    solve_total = 0.0
    cpu_total = 0.0
    nodes_total = 0.0
    nodes_seen = False
    seed_starts = bool(warm_values) and solver_consumes_warm_starts(solver)

    # The ladder has at most 6 rungs per statement (0 -> 1 -> 2 -> 4 -> 8 ->
    # None); every round either terminates or widens some member, so the
    # loop is finite.  The guard is belt-and-braces.
    for _round in range(32):
        # The partition span covers everything before the solve — tighten,
        # re-partition, cache lookups, model building, warm-start
        # projection — matching what ``construction_seconds`` reports.
        with telemetry.span("partition", round=_round) as partition_span:
            tightened: Dict[str, LogicalTopology] = {}
            footprints: Dict[str, frozenset] = {}
            for sid in statements_by_id:
                slack = slack_by_id[sid]
                base = logical_topologies[sid]
                per_sid = tighten_cache.get(sid)
                if per_sid is None:
                    per_sid = tighten_cache[sid] = {}
                entry = per_sid.get(slack)
                if entry is None or entry[0] is not base:
                    # Entry missing or stale (tightened from a different
                    # untightened topology — e.g. after replace_logical or
                    # a rollback): recompute.  The caller's pre-tightened
                    # base view, when supplied, seeds the base rung.
                    logical = None
                    if base_tightened is not None and slack == footprint_slack:
                        logical = base_tightened.get(sid)
                    if logical is None:
                        logical = (
                            base if slack is None else prune_to_cost_bound(base, slack)
                        )
                    entry = (base, logical, frozenset(logical.physical_links_used()))
                    per_sid[slack] = entry
                tightened[sid] = entry[1]
                footprints[sid] = entry[2]
            specs = partition_statements(footprints)

            resolved: Dict[PartitionSpec, PartitionSolution] = {}
            to_solve: List[Tuple[PartitionSpec, ComponentKey, object]] = []
            widen_specs: List[PartitionSpec] = []
            for spec in specs:
                slacks = tuple(slack_by_id[sid] for sid in spec.statement_ids)
                key = (spec.statement_ids, slacks)
                if key in infeasible_local:
                    widen_specs.append(spec)
                    continue
                solution = local.get(key)
                if solution is None and lookup is not None:
                    found = lookup(spec, slacks)
                    if found is INFEASIBLE_COMPONENT:
                        infeasible_local[key] = "infeasible"
                        widen_specs.append(spec)
                        continue
                    if found is not None:
                        solution = found
                        local[key] = solution
                canon = None
                if solution is None and component_cache is not None:
                    from ..fabric.signature import (
                        canonicalize_component,
                        decode_solution,
                    )

                    canon = canonicalize_component(
                        spec, tightened, rates, capacity_mbps,
                        heuristic, solver, slacks,
                    )
                    record = component_cache.get(canon.signature)
                    if record is not None:
                        if record.get("infeasible"):
                            infeasible_local[key] = str(
                                record.get("status", "infeasible")
                            )
                            widen_specs.append(spec)
                            continue
                        solution = decode_solution(record, canon, spec, slacks)
                        local[key] = solution
                        adopted_keys.add(key)
                if solution is not None:
                    resolved[spec] = solution
                else:
                    to_solve.append((spec, key, canon))

            built_models: List[ProvisioningModel] = []
            build_seconds: List[float] = []
            warm_starts: List[Optional[Dict[str, float]]] = []
            for spec, _key, _canon in to_solve:
                with telemetry.span("build_model") as build_span:
                    built_models.append(
                        build_partition_model(
                            spec,
                            statements_by_id,
                            tightened,
                            rates,
                            capacity_mbps,
                            heuristic,
                        )
                    )
                build_seconds.append(build_span.duration)
            for built in built_models:
                if not seed_starts:
                    warm_starts.append(None)
                    continue
                projected = project_warm_start(built, warm_values)
                warm_starts.append(projected)
                telemetry.counter(
                    "warm_start_projected" if projected is not None
                    else "warm_start_abandoned"
                )
            partition_span.annotate(
                components=len(specs), to_solve=len(to_solve)
            )
        construction_total += partition_span.duration

        if to_solve:
            with telemetry.span("solve", components=len(to_solve)) as solve_span:
                outcomes = solve_partition_models(
                    built_models,
                    solver=solver,
                    warm_starts=warm_starts,
                    max_workers=max_workers,
                    fabric=fabric,
                )
                received = telemetry.clock()
                for (spec, key, canon), built, outcome, seconds in zip(
                    to_solve, built_models, outcomes, build_seconds
                ):
                    solver_calls += 1
                    status_value, _values, _objective, statistics, span_payload = outcome
                    backend = str(statistics.get("backend", "")) or "unknown"
                    telemetry.adopt(
                        span_payload,
                        end=received,
                        members=",".join(spec.statement_ids),
                    )
                    telemetry.counter("solver_calls", backend=backend)
                    telemetry.observe(
                        "solve_seconds",
                        float((span_payload or {}).get("duration", 0.0)),
                        backend=backend,
                    )
                    if backend_name(solver) == "auto":
                        telemetry.counter("portfolio_wins", backend=backend)
                    if statistics.get("warm_start_used"):
                        telemetry.counter("warm_start_accepted")
                    if statistics.get("warm_start_rejected"):
                        telemetry.counter("warm_start_rejected")
                    cpu_total += statistics.get("solve_seconds", 0.0)
                    if statistics.get("nodes") is not None:
                        nodes_seen = True
                        nodes_total += statistics.get("nodes") or 0.0
                    if SolveStatus(status_value).has_solution:
                        solution = extract_partition_solution(
                            spec, built, outcome, seconds, member_slacks=key[1]
                        )
                        local[key] = solution
                        solved_keys.add(key)
                        fresh_by_key[key] = solution
                        resolved[spec] = solution
                        if component_cache is not None and canon is not None:
                            from ..fabric.signature import encode_solution

                            if SolveStatus(status_value) is SolveStatus.OPTIMAL:
                                component_cache.put(
                                    canon.signature,
                                    encode_solution(solution, canon),
                                )
                            else:
                                # An unproven (time/node-limited or
                                # heuristic) incumbent must not freeze one
                                # run's luck into every later run.
                                component_cache.bypass()
                    else:
                        if component_cache is not None and canon is not None:
                            from ..fabric.signature import encode_infeasible

                            component_cache.put(
                                canon.signature, encode_infeasible(status_value)
                            )
                        if not widen:
                            _raise_component_infeasible(spec, status_value)
                        telemetry.counter("components_infeasible")
                        infeasible_local[key] = status_value
                        discovered_infeasible.append(key)
                        widen_specs.append(spec)
            solve_total += solve_span.duration

        if not widen_specs:
            solutions = [resolved[spec] for spec in specs]
            final_keys = [
                (
                    spec.statement_ids,
                    tuple(slack_by_id[sid] for sid in spec.statement_ids),
                )
                for spec in specs
            ]
            fresh = [
                resolved[spec]
                for spec, key in zip(specs, final_keys)
                if key in solved_keys
            ]
            adopted = [
                resolved[spec]
                for spec, key in zip(specs, final_keys)
                if key in adopted_keys
            ]
            return WideningOutcome(
                specs=specs,
                solutions=solutions,
                fresh=fresh,
                adopted=adopted,
                infeasible_keys=discovered_infeasible,
                slack_retries=slack_retries,
                solver_calls=solver_calls,
                construction_seconds=construction_total,
                solve_seconds=solve_total,
                solve_cpu_seconds=cpu_total,
                nodes=nodes_total if nodes_seen else None,
            )

        for spec in widen_specs:
            slacks = tuple(slack_by_id[sid] for sid in spec.statement_ids)
            if all(slack is None for slack in slacks):
                # Every member already solves the untightened reference
                # model: the infeasibility is genuine, not a tightening
                # artifact.
                status_value = infeasible_local.get(
                    (spec.statement_ids, slacks), "infeasible"
                )
                _raise_component_infeasible(spec, status_value)
            if not widen:
                _raise_component_infeasible(
                    spec,
                    infeasible_local.get(
                        (spec.statement_ids, slacks), "infeasible"
                    ),
                )
            slack_retries += 1
            telemetry.counter("slack_widening_retries")
            for sid in spec.statement_ids:
                slack_by_id[sid] = widen_slack(slack_by_id[sid])

    raise ProvisioningError(
        "slack widening failed to converge (internal error)"
    )  # pragma: no cover


def merge_partition_solutions(
    solutions: Sequence[PartitionSolution],
    statements_by_id: Mapping[str, Statement],
    rates: Mapping[str, LocalRates],
    topology: Topology,
    placements: Mapping[str, Iterable[str]],
    lp_construction_seconds: float,
    lp_solve_seconds: float,
    heuristic: PathSelectionHeuristic = PathSelectionHeuristic.MIN_MAX_RATIO,
) -> ProvisioningResult:
    """Merge disjoint component solutions into one :class:`ProvisioningResult`.

    Links outside every component's footprint carry zero reservation; the
    maxima (``r_max`` / ``R_max``) are the maxima over components.
    ``heuristic`` determines how the per-component dual bounds aggregate:
    the weighted-shortest-path objective is a sum across components, the
    min-max objectives are maxima, and the merged ``best_bound`` follows
    the same shape.
    """
    paths: Dict[str, PathAssignment] = {}
    for solution in solutions:
        for identifier, location_path in solution.location_paths.items():
            statement = statements_by_id[identifier]
            paths[identifier] = PathAssignment(
                statement_id=identifier,
                path=tuple(location_path),
                function_placements=_assign_functions(
                    statement.path, location_path, placements, topology
                ),
                guaranteed_rate=rates[identifier].guarantee,
            )

    fractions: Dict[LinkKey, float] = {}
    for solution in solutions:
        fractions.update(solution.fractions)
    link_reservations: Dict[LinkKey, Bandwidth] = {}
    max_utilization = 0.0
    max_reservation = Bandwidth(0.0)
    for link in topology.links():
        key = tuple(sorted((link.source, link.target)))
        fraction = fractions.get(key, 0.0)
        reserved = Bandwidth(fraction * link.capacity.bps_value)
        link_reservations[key] = reserved
        max_utilization = max(max_utilization, fraction)
        if reserved.bps_value > max_reservation.bps_value:
            max_reservation = reserved

    statistics: Dict[str, float] = {"partitions": float(len(solutions))}
    nodes = [s.statistics.get("nodes") for s in solutions]
    if any(value is not None for value in nodes):
        statistics["nodes"] = float(sum(value or 0.0 for value in nodes))
    bounds = [s.statistics.get("best_bound") for s in solutions]
    if bounds and all(value is not None for value in bounds):
        objectives = [s.objective for s in solutions]
        if heuristic is PathSelectionHeuristic.WEIGHTED_SHORTEST_PATH:
            merged_bound = float(sum(bounds))
            merged_objective = (
                float(sum(objectives))
                if all(value is not None for value in objectives)
                else None
            )
        else:
            merged_bound = float(max(bounds))
            merged_objective = (
                float(max(objectives))
                if all(value is not None for value in objectives)
                else None
            )
        statistics["best_bound"] = merged_bound
        if merged_objective is not None:
            # Recompute the absolute gap from the *merged* incumbent and
            # bound rather than max-ing per-component gaps, which misstates
            # it in both directions: summed objectives accumulate gaps,
            # and under min-max an optimal dominant component closes a
            # smaller feasible component's gap entirely.
            statistics["gap"] = max(0.0, merged_objective - merged_bound)
    statistics["solve_cpu_seconds"] = float(
        sum(solution.solve_seconds for solution in solutions)
    )
    status = (
        SolveStatus.FEASIBLE.value
        if any(s.status == SolveStatus.FEASIBLE.value for s in solutions)
        else SolveStatus.OPTIMAL.value
    )

    return ProvisioningResult(
        paths=paths,
        link_reservations=link_reservations,
        max_utilization=max_utilization,
        max_reservation=max_reservation,
        lp_construction_seconds=lp_construction_seconds,
        lp_solve_seconds=lp_solve_seconds,
        num_variables=sum(s.num_variables for s in solutions),
        num_constraints=sum(s.num_constraints for s in solutions),
        solve_status=status,
        solve_statistics=statistics,
        num_partitions=len(solutions),
        partition_solutions=list(solutions),
    )


def record_widening_statistics(
    result: ProvisioningResult,
    outcome: WideningOutcome,
    base_slack: Optional[int],
) -> None:
    """Surface the widening ladder's work in a result's solve statistics."""
    result.solve_statistics["slack_retries"] = float(outcome.slack_retries)
    used = outcome.slack_used(base_slack)
    if used is not None:
        result.solve_statistics["footprint_slack_used"] = used
    result.infeasible_components = list(outcome.infeasible_keys)


def provision_partitioned(
    statements: Sequence[Statement],
    logical_topologies: Mapping[str, LogicalTopology],
    rates: Mapping[str, LocalRates],
    topology: Topology,
    placements: Mapping[str, Iterable[str]],
    heuristic: PathSelectionHeuristic = PathSelectionHeuristic.MIN_MAX_RATIO,
    options: Optional[ProvisionOptions] = None,
    solver=_UNSET,
    max_workers=_UNSET,
    footprint_slack=_UNSET,
) -> ProvisioningResult:
    """The partitioned full-compile provisioning path (see module docstring).

    Logical topologies are tightened to their cost-bounded subgraphs first
    (``options.footprint_slack`` extra hops over each statement's optimum;
    ``None`` disables tightening), so unconstrained ``.*`` paths no longer
    collapse the partition graph into one component.  The tightened
    topologies are used both for footprints and for the component models,
    keeping the decomposition exact; components infeasible under the bound
    are retried with geometrically widened slack
    (:func:`solve_components_with_widening`) unless ``options.widen_slack``
    is off.
    """
    options = coalesce_options(
        options,
        owner="provision_partitioned()",
        solver=solver,
        max_workers=max_workers,
        footprint_slack=footprint_slack,
    )
    statements_by_id = {statement.identifier: statement for statement in statements}
    capacity_mbps = topology_capacities_mbps(topology)

    outcome = solve_components_with_widening(
        statements_by_id,
        logical_topologies,
        rates,
        capacity_mbps,
        heuristic,
        solver=options.backend(),
        max_workers=options.max_workers,
        footprint_slack=options.footprint_slack,
        widen=options.widen_slack,
        component_cache=options.component_cache,
        fabric=options.fabric,
    )
    result = merge_partition_solutions(
        outcome.solutions,
        statements_by_id,
        rates,
        topology,
        placements,
        outcome.construction_seconds,
        outcome.solve_seconds,
        heuristic=heuristic,
    )
    record_widening_statistics(result, outcome, options.footprint_slack)
    return result
