"""Tiny statistics helpers used by benchmarks and EXPERIMENTS.md generation."""

from __future__ import annotations

import math
from typing import Dict, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation (0.0 for fewer than two values)."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    centre = mean(values)
    return math.sqrt(sum((value - centre) ** 2 for value in values) / len(values))


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile; ``fraction`` in [0, 1]."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return ordered[lower]
    weight = position - lower
    return ordered[lower] * (1 - weight) + ordered[upper] * weight


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """A compact summary: mean, standard deviation, min, median, p95, max."""
    ordered = sorted(values)
    return {
        "count": float(len(ordered)),
        "mean": mean(ordered),
        "stdev": stdev(ordered),
        "min": ordered[0] if ordered else 0.0,
        "median": percentile(ordered, 0.5),
        "p95": percentile(ordered, 0.95),
        "max": ordered[-1] if ordered else 0.0,
    }
