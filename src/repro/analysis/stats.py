"""Tiny statistics helpers used by benchmarks and EXPERIMENTS.md generation."""

from __future__ import annotations

import math
from typing import Dict, Sequence

from .reporting import percentile as reporting_percentile


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation (0.0 for fewer than two values)."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    centre = mean(values)
    return math.sqrt(sum((value - centre) ** 2 for value in values) / len(values))


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile; ``fraction`` in [0, 1].

    Thin wrapper over :func:`repro.analysis.reporting.percentile` (which
    speaks the 0–100 scale and raises on empty input), kept for the
    callers that prefer fractions and a 0.0 empty-sequence default.
    """
    values = list(values)
    if not values:
        return 0.0
    return reporting_percentile(values, fraction * 100.0)


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """A compact summary: mean, standard deviation, min, median, p95, max."""
    ordered = sorted(values)
    return {
        "count": float(len(ordered)),
        "mean": mean(ordered),
        "stdev": stdev(ordered),
        "min": ordered[0] if ordered else 0.0,
        "median": percentile(ordered, 0.5),
        "p95": percentile(ordered, 0.95),
        "max": ordered[-1] if ordered else 0.0,
    }
