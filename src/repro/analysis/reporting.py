"""Plain-text table and series formatting.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output consistent and readable in a
terminal (no plotting dependencies are available offline).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0–100) by linear interpolation.

    Matches numpy's default ("linear") method so reported p50/p95/p99
    latencies are comparable across harnesses.  Raises ``ValueError`` on an
    empty sequence — a percentile of nothing is a bug upstream, not a zero.
    """
    if not values:
        raise ValueError("percentile() of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    return float(ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction)


def format_percentiles(
    values: Sequence[float],
    quantiles: Sequence[float] = (50.0, 95.0, 99.0),
    unit: str = "ms",
    float_format: str = "{:.2f}",
) -> str:
    """A one-line ``p50=… p95=… p99=…`` summary of a latency sample."""
    if not values:
        return "no samples"
    parts = [
        f"p{int(q) if float(q).is_integer() else q}="
        + float_format.format(percentile(values, q))
        + unit
        for q in quantiles
    ]
    return " ".join(parts)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str],
    title: str = "",
    float_format: str = "{:.2f}",
) -> str:
    """Render rows of dictionaries as an aligned text table."""
    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    header = [str(column) for column in columns]
    body = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
        for i in range(len(columns))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header[i].rjust(widths[i]) for i in range(len(columns))))
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for line in body:
        lines.append("  ".join(line[i].rjust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_series(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    x_label: str = "x",
    title: str = "",
    max_points: int = 20,
) -> str:
    """Render one or more y-series against a shared x-axis as a text table.

    Long series are downsampled to at most ``max_points`` evenly spaced
    samples so benchmark output stays readable.
    """
    n = len(xs)
    if n == 0:
        return title
    if n > max_points:
        step = max(1, n // max_points)
        indices = list(range(0, n, step))
        if indices[-1] != n - 1:
            indices.append(n - 1)
    else:
        indices = list(range(n))
    rows = []
    for index in indices:
        row: Dict[str, object] = {x_label: xs[index]}
        for name, values in series.items():
            row[name] = values[index] if index < len(values) else ""
        rows.append(row)
    return format_table(rows, [x_label, *series.keys()], title=title)
