"""Plain-text table and series formatting.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output consistent and readable in a
terminal (no plotting dependencies are available offline).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str],
    title: str = "",
    float_format: str = "{:.2f}",
) -> str:
    """Render rows of dictionaries as an aligned text table."""
    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    header = [str(column) for column in columns]
    body = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
        for i in range(len(columns))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header[i].rjust(widths[i]) for i in range(len(columns))))
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for line in body:
        lines.append("  ".join(line[i].rjust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_series(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    x_label: str = "x",
    title: str = "",
    max_points: int = 20,
) -> str:
    """Render one or more y-series against a shared x-axis as a text table.

    Long series are downsampled to at most ``max_points`` evenly spaced
    samples so benchmark output stays readable.
    """
    n = len(xs)
    if n == 0:
        return title
    if n > max_points:
        step = max(1, n // max_points)
        indices = list(range(0, n, step))
        if indices[-1] != n - 1:
            indices.append(n - 1)
    else:
        indices = list(range(n))
    rows = []
    for index in indices:
        row: Dict[str, object] = {x_label: xs[index]}
        for name, values in series.items():
            row[name] = values[index] if index < len(values) else ""
        rows.append(row)
    return format_table(rows, [x_label, *series.keys()], title=title)
