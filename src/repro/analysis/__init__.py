"""Reporting helpers shared by the benchmarks and examples."""

from .reporting import format_series, format_table
from .stats import mean, percentile, stdev, summarize

__all__ = ["format_series", "format_table", "mean", "percentile", "stdev", "summarize"]
