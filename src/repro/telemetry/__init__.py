"""End-to-end telemetry: structured spans + a metrics registry.

See ``README.md`` in this package for the span model, the recorder
protocol, and the exporter formats.  Quick start::

    from repro import telemetry

    bundle = telemetry.Telemetry.recording()
    with bundle.use():
        session.provision(policy, topology)
    print(telemetry.render_trace(bundle.recorder.spans))
    print(telemetry.to_prometheus(bundle.snapshot()))

Instrumentation sites inside the repo use the ambient module-level API
(``telemetry.span`` / ``telemetry.counter`` / ``telemetry.clock``) and
cost nothing when no bundle is active.
"""

from .exporters import render_trace, summarize_trace, to_prometheus
from .metrics import (
    HistogramSummary,
    MetricsRegistry,
    MetricsSnapshot,
    metric_key,
    split_key,
)
from .recorder import InMemoryRecorder, JsonLinesRecorder, SpanRecorder, read_trace
from .runtime import (
    DISABLED,
    Telemetry,
    active,
    adopt,
    clock,
    counter,
    current_span,
    gauge,
    observe,
    snapshot,
    span,
    use,
)
from .spans import Span, SpanRecord

__all__ = [
    "DISABLED",
    "HistogramSummary",
    "InMemoryRecorder",
    "JsonLinesRecorder",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Span",
    "SpanRecord",
    "SpanRecorder",
    "Telemetry",
    "active",
    "adopt",
    "clock",
    "counter",
    "current_span",
    "gauge",
    "metric_key",
    "observe",
    "read_trace",
    "render_trace",
    "snapshot",
    "span",
    "split_key",
    "summarize_trace",
    "to_prometheus",
    "use",
]
