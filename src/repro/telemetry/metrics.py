"""Metrics registry: counters, gauges, and percentile histograms.

Metric identity is the name plus an optional label set, rendered
Prometheus-style into a single key string (``solve_seconds{backend="bnb"}``)
so the registry stays a flat dict and the text exposition falls out for
free.  Histograms keep raw observations and summarize through
:func:`repro.analysis.reporting.percentile` — the same helper the
scenario driver and experiment tables use — so p50/p95/p99 mean the same
thing everywhere in the repo.

``snapshot()`` freezes the registry into a :class:`MetricsSnapshot`, the
query-safe form served by ``ControlPlane.metrics()`` next to
``GroupState``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..analysis.reporting import format_percentiles, percentile

__all__ = [
    "HistogramSummary",
    "MetricsRegistry",
    "MetricsSnapshot",
    "metric_key",
    "split_key",
]


def metric_key(name: str, labels: Mapping[str, Any]) -> str:
    """Render ``name`` + labels into one canonical key string."""
    if not labels:
        return name
    rendered = ",".join(
        '%s="%s"' % (key, labels[key]) for key in sorted(labels)
    )
    return "%s{%s}" % (name, rendered)


def split_key(key: str) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
    """Invert :func:`metric_key`: ``name{a="b"}`` -> (name, ((a, b),))."""
    if "{" not in key:
        return key, ()
    name, _, rest = key.partition("{")
    body = rest.rstrip("}")
    labels = []
    for item in body.split(","):
        if not item:
            continue
        label, _, value = item.partition("=")
        labels.append((label, value.strip('"')))
    return name, tuple(labels)


@dataclass(frozen=True)
class HistogramSummary:
    """Frozen percentile summary of one histogram series."""

    count: int
    total: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @classmethod
    def from_values(cls, values: List[float]) -> "HistogramSummary":
        if not values:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            count=len(values),
            total=sum(values),
            minimum=min(values),
            maximum=max(values),
            p50=percentile(values, 50),
            p95=percentile(values, 95),
            p99=percentile(values, 99),
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """A frozen copy of every metric at one instant.

    Lookup helpers take the metric name plus labels as keyword
    arguments, mirroring how the values were recorded::

        snapshot.counter("admission_rejected", tenant="t1")
        snapshot.histogram("queue_wait_seconds")
    """

    counters: Mapping[str, float] = field(default_factory=dict)
    gauges: Mapping[str, float] = field(default_factory=dict)
    histograms: Mapping[str, HistogramSummary] = field(default_factory=dict)

    def counter(self, name: str, **labels: Any) -> float:
        return self.counters.get(metric_key(name, labels), 0.0)

    def gauge(self, name: str, **labels: Any) -> Optional[float]:
        return self.gauges.get(metric_key(name, labels))

    def histogram(self, name: str, **labels: Any) -> HistogramSummary:
        return self.histograms.get(
            metric_key(name, labels), HistogramSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        )

    def counter_total(self, name: str) -> float:
        """Sum a counter across every label combination it was recorded with."""
        total = 0.0
        for key, value in self.counters.items():
            if key == name or key.startswith(name + "{"):
                total += value
        return total


class MetricsRegistry:
    """Thread-safe counters/gauges/histograms behind one lock.

    The lock matters because partitioned solving and the control-plane
    worker record from threads (``asyncio.to_thread``) while the caller
    may snapshot concurrently.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, List[float]] = {}

    def counter(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        key = metric_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + amount

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        key = metric_key(name, labels)
        with self._lock:
            self._gauges[key] = float(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        key = metric_key(name, labels)
        with self._lock:
            self._histograms.setdefault(key, []).append(float(value))

    def values(self, name: str, **labels: Any) -> List[float]:
        """Raw observations of one histogram series (a copy)."""
        with self._lock:
            return list(self._histograms.get(metric_key(name, labels), ()))

    def format_histogram(
        self, name: str, unit: str = "ms", scale: float = 1000.0, **labels: Any
    ) -> str:
        """Render one series via the shared percentile formatter."""
        values = [value * scale for value in self.values(name, **labels)]
        return format_percentiles(values, unit=unit)

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = {
                key: HistogramSummary.from_values(values)
                for key, values in self._histograms.items()
            }
        return MetricsSnapshot(
            counters=counters, gauges=gauges, histograms=histograms
        )

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
