"""Span recorders: where finished spans go.

A recorder is anything with ``record(span_record)``; the two shipped
implementations cover the common cases — an in-memory list for tests and
console summaries, and an append-only JSON-lines file for offline trace
analysis.  ``None`` (no recorder) is the default and keeps the span path
allocation-free; see :mod:`repro.telemetry.spans`.
"""

from __future__ import annotations

import json
import threading
from typing import IO, Iterable, List, Optional, Union

try:  # pragma: no cover - typing nicety only
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

from .spans import SpanRecord

__all__ = [
    "InMemoryRecorder",
    "JsonLinesRecorder",
    "SpanRecorder",
    "read_trace",
]


class SpanRecorder(Protocol):
    """Structural protocol: any ``record(SpanRecord)`` callable target."""

    def record(self, span: SpanRecord) -> None:  # pragma: no cover
        ...


class InMemoryRecorder:
    """Collects finished spans in order; the test/debug workhorse."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.spans: List[SpanRecord] = []

    def record(self, span: SpanRecord) -> None:
        with self._lock:
            self.spans.append(span)

    def by_name(self, name: str) -> List[SpanRecord]:
        with self._lock:
            return [span for span in self.spans if span.name == name]

    def children_of(self, parent: SpanRecord) -> List[SpanRecord]:
        with self._lock:
            return [
                span for span in self.spans if span.parent_id == parent.span_id
            ]

    def roots(self) -> List[SpanRecord]:
        with self._lock:
            return [span for span in self.spans if span.parent_id is None]

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()


class JsonLinesRecorder:
    """Appends one JSON object per finished span to a file or stream.

    Spans are written in completion order (children before parents, as
    in any tracing system); :func:`read_trace` reloads them.
    """

    def __init__(self, target: Union[str, IO[str]]) -> None:
        self._lock = threading.Lock()
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "a", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False

    def record(self, span: SpanRecord) -> None:
        line = json.dumps(span.to_dict(), sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")

    def close(self) -> None:
        with self._lock:
            self._handle.flush()
            if self._owns_handle:
                self._handle.close()

    def __enter__(self) -> "JsonLinesRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def read_trace(lines: Union[str, IO[str], Iterable[str]]) -> List[SpanRecord]:
    """Parse spans back out of a JSON-lines dump.

    Accepts a file path, an open text stream, or any iterable of lines.
    """
    if isinstance(lines, str):
        with open(lines, "r", encoding="utf-8") as handle:
            raw: List[str] = handle.readlines()
    else:
        raw = list(lines)
    records = []
    for line in raw:
        line = line.strip()
        if line:
            records.append(SpanRecord.from_dict(json.loads(line)))
    return records
