"""Exporters: Prometheus-style text exposition and console summaries.

These render already-frozen data (:class:`MetricsSnapshot`, lists of
:class:`SpanRecord`) so they can run anywhere — a daemon's admin
endpoint, a benchmark report block, a test assertion — without touching
live registries.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Sequence

from .metrics import HistogramSummary, MetricsSnapshot, split_key
from .spans import SpanRecord

__all__ = ["render_trace", "summarize_trace", "to_prometheus"]

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    return _NAME_SANITIZER.sub("_", name)


def _prom_key(key: str, extra: Dict[str, str] = None) -> str:
    """Re-render a registry key for exposition, optionally adding labels."""
    name, labels = split_key(key)
    merged = list(labels) + sorted((extra or {}).items())
    if not merged:
        return _prom_name(name)
    body = ",".join('%s="%s"' % (label, value) for label, value in merged)
    return "%s{%s}" % (_prom_name(name), body)


def to_prometheus(snapshot: MetricsSnapshot, prefix: str = "repro_") -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Histograms are exposed as quantile gauges plus ``_count``/``_sum``
    series (the *summary* metric type), which is what a percentile
    registry can honestly serve without fixed buckets.
    """
    lines: List[str] = []
    seen_types: Dict[str, str] = {}

    def type_line(key: str, kind: str) -> None:
        name, _ = split_key(key)
        full = prefix + _prom_name(name)
        if seen_types.get(full) != kind:
            seen_types[full] = kind
            lines.append("# TYPE %s %s" % (full, kind))

    for key in sorted(snapshot.counters):
        type_line(key, "counter")
        lines.append("%s%s %g" % (prefix, _prom_key(key), snapshot.counters[key]))
    for key in sorted(snapshot.gauges):
        type_line(key, "gauge")
        lines.append("%s%s %g" % (prefix, _prom_key(key), snapshot.gauges[key]))
    for key in sorted(snapshot.histograms):
        summary = snapshot.histograms[key]
        type_line(key, "summary")
        name, labels = split_key(key)
        base = prefix + _prom_name(name)
        label_body = ",".join('%s="%s"' % (k, v) for k, v in labels)
        suffix = "{%s}" % label_body if label_body else ""
        for quantile, value in (
            ("0.5", summary.p50),
            ("0.95", summary.p95),
            ("0.99", summary.p99),
        ):
            lines.append(
                "%s %g" % (prefix + _prom_key(key, {"quantile": quantile}), value)
            )
        lines.append("%s_count%s %d" % (base, suffix, summary.count))
        lines.append("%s_sum%s %g" % (base, suffix, summary.total))
    return "\n".join(lines) + ("\n" if lines else "")


def render_trace(
    spans: Sequence[SpanRecord], unit_scale: float = 1000.0, unit: str = "ms"
) -> str:
    """Render a span list as an indented console tree, children in
    start order under their parents::

        compile                          12.41ms
          partition                       0.52ms
          component_solve backend=bnb     3.90ms
    """
    by_parent: Dict[object, List[SpanRecord]] = {}
    for span in spans:
        by_parent.setdefault(span.parent_id, []).append(span)
    for children in by_parent.values():
        children.sort(key=lambda span: (span.start, span.span_id))

    lines: List[str] = []

    def walk(parent_id, depth: int) -> None:
        for span in by_parent.get(parent_id, ()):  # pragma: no branch
            attrs = " ".join(
                "%s=%s" % (key, value)
                for key, value in sorted((span.attributes or {}).items())
            )
            label = span.name + (" " + attrs if attrs else "")
            lines.append(
                "%s%-48s %10.3f%s"
                % ("  " * depth, label, span.duration * unit_scale, unit)
            )
            walk(span.span_id, depth + 1)

    walk(None, 0)
    return "\n".join(lines)


def summarize_trace(spans: Iterable[SpanRecord]) -> Dict[str, HistogramSummary]:
    """Aggregate span durations by name into histogram summaries."""
    by_name: Dict[str, List[float]] = {}
    for span in spans:
        by_name.setdefault(span.name, []).append(span.duration)
    return {
        name: HistogramSummary.from_values(values)
        for name, values in sorted(by_name.items())
    }
