"""The ambient telemetry runtime.

A :class:`Telemetry` bundles the three injectable pieces — a span
recorder, a metrics registry, and a clock — and a :mod:`contextvars`
variable holds the *active* bundle, so instrumentation sites call the
module-level helpers (``span``, ``counter``, ``observe``, ``clock``)
without any handle plumbing.  The default bundle is :data:`DISABLED`:
no recorder, no metrics, ``time.perf_counter`` for the clock.  On that
path ``span()`` recycles pooled objects and the metric helpers return
immediately, so leaving instrumentation in hot loops is free (guarded by
``make bench-telemetry``).

Activation is scoped, not global::

    telemetry = Telemetry.recording()
    with telemetry.use():
        session.provision(...)
    print(render_trace(telemetry.recorder.spans))

``asyncio`` tasks and ``asyncio.to_thread`` copy the context, so spans
opened inside them nest under the caller's span automatically.  Process-
pool workers do *not* inherit context; they build a local bundle, finish
their spans, and ship ``Span.to_payload()`` dicts back for the parent to
:func:`adopt`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Mapping, Optional, Union

from .metrics import MetricsRegistry, MetricsSnapshot
from .recorder import InMemoryRecorder, JsonLinesRecorder, SpanRecorder
from .spans import CURRENT_SPAN, Span, SpanRecord, acquire_span, next_span_id

__all__ = [
    "DISABLED",
    "Telemetry",
    "active",
    "adopt",
    "clock",
    "counter",
    "current_span",
    "gauge",
    "observe",
    "snapshot",
    "span",
    "use",
]


class Telemetry:
    """One bundle of recorder + metrics + clock.

    Any piece may be absent: metrics-only telemetry (the control plane's
    default) skips span recording entirely; a pinned ``clock`` makes
    span durations and latency histograms deterministic in replay tests,
    the same injection seam ``AdmissionPolicy`` uses for rate windows.
    """

    __slots__ = ("recorder", "metrics", "clock")

    def __init__(
        self,
        recorder: Optional[SpanRecorder] = None,
        metrics: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.recorder = recorder
        self.metrics = metrics
        self.clock = clock

    @classmethod
    def recording(
        cls,
        trace_path: Optional[str] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> "Telemetry":
        """A fully-enabled bundle: metrics plus an in-memory recorder, or
        a JSON-lines recorder when ``trace_path`` is given."""
        recorder: SpanRecorder
        if trace_path is None:
            recorder = InMemoryRecorder()
        else:
            recorder = JsonLinesRecorder(trace_path)
        return cls(recorder=recorder, metrics=MetricsRegistry(), clock=clock)

    @contextmanager
    def use(self):
        """Make this bundle the active one for the dynamic extent."""
        token = _ACTIVE.set(self)
        try:
            yield self
        finally:
            _ACTIVE.reset(token)

    def span(self, name: str, **attributes: Any) -> Span:
        if self.recorder is None:
            return acquire_span(self, name)
        parent = CURRENT_SPAN.get()
        span = Span()
        span.name = name
        span.span_id = next_span_id()
        if parent is not None and parent._telemetry is self:
            span.trace_id = parent.trace_id
            span.parent_id = parent.span_id
        else:
            span.trace_id = span.span_id
            span.parent_id = None
        span.attributes = dict(attributes) if attributes else None
        span._telemetry = self
        return span

    def snapshot(self) -> MetricsSnapshot:
        if self.metrics is None:
            return MetricsSnapshot()
        return self.metrics.snapshot()


DISABLED = Telemetry()

_ACTIVE: ContextVar[Telemetry] = ContextVar("repro_telemetry", default=DISABLED)


def active() -> Telemetry:
    """The telemetry bundle for the current context."""
    return _ACTIVE.get()


def use(telemetry: Telemetry):
    """``with use(t):`` — activate ``t`` for the block (see Telemetry.use)."""
    return telemetry.use()


def clock() -> float:
    """Read the active telemetry clock (``time.perf_counter`` unless
    a deterministic clock was injected)."""
    return _ACTIVE.get().clock()


def span(name: str, **attributes: Any) -> Span:
    """Open a span on the active bundle; use as a context manager."""
    return _ACTIVE.get().span(name, **attributes)


def current_span() -> Optional[Span]:
    """The innermost open span, or ``None`` (always ``None`` when the
    active bundle has no recorder)."""
    return CURRENT_SPAN.get()


def counter(name: str, amount: float = 1.0, **labels: Any) -> None:
    metrics = _ACTIVE.get().metrics
    if metrics is not None:
        metrics.counter(name, amount, **labels)


def gauge(name: str, value: float, **labels: Any) -> None:
    metrics = _ACTIVE.get().metrics
    if metrics is not None:
        metrics.gauge(name, value, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    metrics = _ACTIVE.get().metrics
    if metrics is not None:
        metrics.observe(name, value, **labels)


def snapshot() -> MetricsSnapshot:
    """Freeze the active bundle's metrics (empty when metrics are off)."""
    return _ACTIVE.get().snapshot()


def adopt(
    payload: Union[Mapping[str, Any], Span, None],
    end: Optional[float] = None,
    **attributes: Any,
) -> None:
    """Graft a span finished elsewhere into the active trace.

    ``payload`` is a ``Span.to_payload()`` dict shipped from a worker
    process (or a finished local ``Span``).  Worker ``perf_counter``
    origins are not comparable across processes, so the adopted record
    is re-anchored on the local clock: it *ends* at ``end`` (default:
    now, i.e. when the result was received) and keeps its measured
    duration.  The current open span becomes its parent.
    """
    telemetry = _ACTIVE.get()
    recorder = telemetry.recorder
    if recorder is None or payload is None:
        return
    if isinstance(payload, Span):
        payload = payload.to_payload()
    duration = float(payload.get("duration", 0.0))
    anchor_end = telemetry.clock() if end is None else end
    merged = dict(payload.get("attributes") or {})
    merged.update(attributes)
    parent = CURRENT_SPAN.get()
    span_id = next_span_id()
    if parent is not None and parent._telemetry is telemetry:
        trace_id, parent_id = parent.trace_id, parent.span_id
    else:
        trace_id, parent_id = span_id, None
    recorder.record(
        SpanRecord(
            name=str(payload.get("name", "adopted")),
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            start=anchor_end - duration,
            duration=duration,
            attributes=merged,
        )
    )
