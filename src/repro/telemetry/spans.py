"""Structured spans: nested, context-propagated timing records.

A :class:`Span` is a live timer opened with ``telemetry.span(name)`` and
closed by its ``with`` block; on exit it freezes into a
:class:`SpanRecord` and is handed to the active recorder.  Nesting is
ambient: the innermost open span is tracked in a :mod:`contextvars`
variable, so child spans find their parent without threading handles
through call signatures, and ``asyncio`` tasks inherit the correct
parent automatically (task creation copies the context).

When no recorder is attached (the default), spans are recycled through a
thread-local free list: the ``with telemetry.span(...)`` idiom costs two
clock reads and zero allocations in steady state, so instrumented hot
paths can stay instrumented in production.  Even disabled spans measure
``duration`` — derived statistics (``CompilationStatistics`` timings,
scenario-driver latencies) read it right after the block instead of
keeping a parallel stopwatch.
"""

from __future__ import annotations

import itertools
import os
import threading
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

__all__ = ["CURRENT_SPAN", "Span", "SpanRecord", "next_span_id"]

#: The innermost open span of the current thread/task context, if any.
CURRENT_SPAN: ContextVar[Optional["Span"]] = ContextVar(
    "repro_current_span", default=None
)

# Seeded with a random per-process base: JSON-lines trace files are
# opened in append mode, so traces written by different processes (or
# separate runs of the same script) must not collide on trace/span ids.
_IDS = itertools.count((int.from_bytes(os.urandom(5), "big") << 24) | 1)


def next_span_id() -> int:
    """Allocate a process-unique span identifier."""
    return next(_IDS)


@dataclass(frozen=True)
class SpanRecord:
    """An immutable, export-ready snapshot of one finished span.

    ``start`` is in the trace clock's units (``time.perf_counter`` by
    default) and is only meaningful relative to other records of the
    same trace.  Spans adopted from worker processes are re-anchored on
    the parent's clock (see ``telemetry.adopt``).
    """

    name: str
    trace_id: int
    span_id: int
    parent_id: Optional[int]
    start: float
    duration: float
    attributes: Mapping[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
        }
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SpanRecord":
        return cls(
            name=str(payload["name"]),
            trace_id=int(payload.get("trace_id", 0)),
            span_id=int(payload.get("span_id", 0)),
            parent_id=(
                None
                if payload.get("parent_id") is None
                else int(payload["parent_id"])
            ),
            start=float(payload.get("start", 0.0)),
            duration=float(payload.get("duration", 0.0)),
            attributes=dict(payload.get("attributes") or {}),
        )


class Span:
    """A live (open) span.  Use as a context manager.

    Instances belong to the telemetry bundle that minted them.  With a
    recorder attached, exiting the block freezes the span into a
    :class:`SpanRecord`; without one the object goes back to a
    thread-local pool, so only ``duration`` (and ``name``) may be read
    after the block — and only before the next span opens on the thread.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "duration",
        "attributes",
        "_telemetry",
        "_token",
    )

    def __init__(self) -> None:
        self.name = ""
        self.trace_id = 0
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self.start = 0.0
        self.duration = 0.0
        self.attributes: Optional[Dict[str, Any]] = None
        self._telemetry = None
        self._token = None

    def annotate(self, **attributes: Any) -> "Span":
        """Attach key/value attributes; no-op when tracing is disabled."""
        if self._telemetry is None or self._telemetry.recorder is None:
            return self
        if self.attributes is None:
            self.attributes = {}
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        if self._telemetry.recorder is not None:
            self._token = CURRENT_SPAN.set(self)
        self.start = self._telemetry.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        telemetry = self._telemetry
        self.duration = telemetry.clock() - self.start
        recorder = telemetry.recorder
        if recorder is None:
            pool = _pool()
            if len(pool) < _POOL_LIMIT:
                pool.append(self)
            return False
        if self._token is not None:
            CURRENT_SPAN.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.annotate(error=exc_type.__name__)
        recorder.record(
            SpanRecord(
                name=self.name,
                trace_id=self.trace_id,
                span_id=self.span_id,
                parent_id=self.parent_id,
                start=self.start,
                duration=self.duration,
                attributes=dict(self.attributes or {}),
            )
        )
        return False

    def to_payload(self) -> Dict[str, Any]:
        """Serialize a *finished* span for cross-process shipping.

        Worker processes cannot hand ``SpanRecord`` objects to the
        parent's recorder directly (and their ``perf_counter`` origin is
        not comparable); they ship this plain dict alongside the solve
        result and the parent re-anchors it via ``telemetry.adopt``.
        """
        return {
            "name": self.name,
            "duration": self.duration,
            "attributes": dict(self.attributes or {}),
        }


_POOL_LIMIT = 64
_LOCAL = threading.local()


def _pool() -> list:
    pool = getattr(_LOCAL, "spans", None)
    if pool is None:
        pool = _LOCAL.spans = []
    return pool


def acquire_span(telemetry, name: str) -> Span:
    """Fetch a recycled span for the disabled path (no recorder)."""
    pool = _pool()
    span = pool.pop() if pool else Span()
    span.name = name
    span.trace_id = 0
    span.span_id = 0
    span.parent_id = None
    span.duration = 0.0
    span.attributes = None
    span._telemetry = telemetry
    span._token = None
    return span
