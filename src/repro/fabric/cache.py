"""The content-addressed component-solution cache.

Maps canonical component signatures (:mod:`repro.fabric.signature`) to
stored solution records.  Unlike the incremental engine's revision-keyed
cache — which answers "is this exact session's component unchanged since
the last resolve?" — this cache answers "has *anyone*, in *any* session or
run, already solved a component with this content?", which is what lets a
topology-zoo or fat-tree sweep solve each distinct pod/tenant shape once.

Policy:

* **LRU-bounded** (``limit`` entries); a hit refreshes recency.
* **Proof-aware stores.**  Only proven-``optimal`` solutions (and
  proven-infeasible markers) are stored; time-limited ``feasible``
  incumbents are *bypassed* — an unproven incumbent memoized across runs
  would freeze one run's luck into every later run's answer.  Backends
  that never prove optimality (the anytime heuristic) therefore never
  populate the cache; see ``incremental/README.md`` for when to disable
  caching outright.
* **Optional JSON-lines spill.**  With ``spill_path`` set, stores append
  ``{"signature": ..., "record": ...}`` lines and construction replays the
  file (last write wins, unreadable lines skipped), so separate sweep
  *processes* dedupe against each other's work.

Counters (``hits`` / ``misses`` / ``stores`` / ``bypasses`` locally, the
``component_signature_*`` series in :mod:`repro.telemetry` globally) make
the cache's effect visible in ``ControlPlane.metrics()``.

Thread safety: a single lock guards the map — the control plane solves
batches for different groups concurrently in worker threads.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

from .. import telemetry
from .signature import SIGNATURE_VERSION

__all__ = ["ComponentSolutionCache"]


class ComponentSolutionCache:
    """An LRU map of canonical component signature -> solution record."""

    def __init__(
        self,
        limit: int = 4096,
        spill_path: Optional[Union[str, Path]] = None,
    ) -> None:
        if limit < 1:
            raise ValueError("limit must be >= 1")
        self._limit = limit
        self._lock = threading.Lock()
        self._entries: Dict[str, Mapping[str, object]] = {}
        self._spill_path = Path(spill_path) if spill_path is not None else None
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.bypasses = 0
        if self._spill_path is not None and self._spill_path.exists():
            self._replay_spill()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def limit(self) -> int:
        return self._limit

    @property
    def spill_path(self) -> Optional[Path]:
        return self._spill_path

    def get(self, signature: str) -> Optional[Mapping[str, object]]:
        """The stored record for ``signature``, refreshing its recency."""
        with self._lock:
            record = self._entries.get(signature)
            if record is None:
                self.misses += 1
            else:
                # dict preserves insertion order; re-inserting = mark MRU.
                del self._entries[signature]
                self._entries[signature] = record
                self.hits += 1
        if record is None:
            telemetry.counter("component_signature_misses")
        else:
            telemetry.counter("component_signature_hits")
        return record

    def put(
        self, signature: str, record: Mapping[str, object], spill: bool = True
    ) -> None:
        """Store a record, evicting least-recently-used entries past the bound."""
        with self._lock:
            if signature in self._entries:
                del self._entries[signature]
            self._entries[signature] = record
            while len(self._entries) > self._limit:
                self._entries.pop(next(iter(self._entries)))
            self.stores += 1
        telemetry.counter("component_signature_stores")
        if spill and self._spill_path is not None:
            self._append_spill(signature, record)

    def bypass(self) -> None:
        """Record that a solvable component was deliberately not cached
        (unproven incumbent — see the module docstring)."""
        with self._lock:
            self.bypasses += 1
        telemetry.counter("component_signature_bypass")

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # -- disk spill --------------------------------------------------------------

    def _append_spill(self, signature: str, record: Mapping[str, object]) -> None:
        line = json.dumps({"signature": signature, "record": record})
        self._spill_path.parent.mkdir(parents=True, exist_ok=True)
        with self._spill_path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")

    def _replay_spill(self) -> None:
        """Load a spill file written by an earlier run (or another process).

        Tolerant by design: a truncated trailing line (the writer died
        mid-append) or a record from an older signature version is skipped,
        never fatal — the worst case is a re-solve.
        """
        loaded = 0
        with self._spill_path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    signature = entry["signature"]
                    record = entry["record"]
                except (ValueError, KeyError, TypeError):
                    continue
                if not isinstance(record, dict):
                    continue
                if record.get("version") != SIGNATURE_VERSION:
                    continue
                with self._lock:
                    if signature in self._entries:
                        del self._entries[signature]
                    self._entries[signature] = record
                    while len(self._entries) > self._limit:
                        self._entries.pop(next(iter(self._entries)))
                loaded += 1
        if loaded:
            telemetry.counter("component_signature_spill_loads", float(loaded))
