"""The solve fabric: persistent workers and a cross-run component cache.

Partitioned provisioning solves link-disjoint MIP components.  Before this
package, every multi-component solve paid to fork a fresh process pool and
every sweep re-solved components it had already solved under a different
tenant's name.  The fabric removes both costs:

* :class:`SolveFabric` (``pool.py``) — a persistent worker pool shared
  across ``compile`` / ``recompile`` / sweep calls.  Components are
  enqueued largest-first (by a variables x constraints estimate) so idle
  workers drain the smaller tail while the big models run; stragglers past
  an optional deadline are speculatively duplicated on the anytime
  heuristic backend and the first finisher wins (with a proof-aware
  preference for the exact result).  Worker crashes respawn the pool once
  and finish serially if it keeps dying — a dead worker degrades latency,
  never correctness.  :func:`shared_fabric` is the process-wide default
  pool that ``solve_partition_models`` falls back to, so legacy
  ``max_workers > 1`` callers get pool persistence without code changes.

* :class:`ComponentSolutionCache` (``cache.py``) — a content-addressed
  store of solved components keyed by the canonical signature of
  ``signature.py``: normalized statement bodies, the sorted link footprint
  with capacities, bandwidth terms, and a backend+options fingerprint.
  The signature is invariant under tenant renaming and statement
  permutation, so identical pods/tenant groups across a sweep solve once;
  an optional JSON-lines spill file dedupes across *runs*.

Construction of a bare ``ProcessPoolExecutor`` anywhere else in
``src/repro`` is lint-banned (``make lint-pool``): pool lifecycle belongs
here.
"""

from .cache import ComponentSolutionCache
from .pool import SolveFabric, shared_fabric, shutdown_shared_fabric
from .signature import (
    CanonicalComponent,
    backend_fingerprint,
    canonicalize_component,
    decode_solution,
    encode_infeasible,
    encode_solution,
)

__all__ = [
    "CanonicalComponent",
    "ComponentSolutionCache",
    "SolveFabric",
    "backend_fingerprint",
    "canonicalize_component",
    "decode_solution",
    "encode_infeasible",
    "encode_solution",
    "shared_fabric",
    "shutdown_shared_fabric",
]
