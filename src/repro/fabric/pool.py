"""The persistent solve pool (see the package docstring).

A :class:`SolveFabric` owns one long-lived ``ProcessPoolExecutor`` — the
only place in the tree allowed to construct one (``make lint-pool``) — and
schedules component solves onto it:

* **Largest-first dispatch.**  ``solve`` submits payloads in descending
  size order (the caller's variables x constraints estimate), so the
  models that dominate the makespan start immediately and idle workers
  steal the remaining smaller tail from the shared queue.

* **Speculative duplicates.**  With ``speculate_after_seconds`` set, any
  component still unfinished past the deadline is duplicated onto the
  anytime heuristic backend (in a thread — the primal heuristic is pure
  Python and cheap).  Whichever finishes first wins, with a proof-aware
  preference: an exact result that is ready is always taken over the
  heuristic's unproven incumbent.  Speculation trades determinism for tail
  latency, so it is off by default.

* **Crash containment.**  A worker death surfaces as ``BrokenExecutor`` on
  every pending future.  The fabric keeps the results it already collected,
  respawns the pool (at most ``max_respawns`` times), resubmits only the
  unfinished payloads, and — if the pool keeps dying — finishes them
  serially in-process.  Callers never see the raw executor error.

The pool is lazy: no processes exist until the first multi-payload
``solve``, and ``shutdown()`` reaps them while leaving the fabric usable
(the next solve respawns).  :func:`shared_fabric` is the process-wide
default instance used by ``solve_partition_models`` when no explicit
fabric is configured; it is reaped at interpreter exit.
"""

from __future__ import annotations

import atexit
import os
import threading
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import Callable, Dict, List, Optional, Sequence

from .. import telemetry

__all__ = ["SolveFabric", "shared_fabric", "shutdown_shared_fabric"]


def _default_task(payload):
    """Solve one ``(model, solver, warm_start)`` component payload."""
    from ..incremental.solve import _solve_model_payload

    return _solve_model_payload(payload)


def _speculative_payload(payload):
    """The straggler duplicate: the same model on the anytime heuristic."""
    from ..lp.backends import create_backend

    model, _solver, warm_start = payload
    return (model, create_backend("heuristic"), warm_start)


class SolveFabric:
    """A persistent, crash-tolerant worker pool for component solves.

    ``max_workers`` fixes the pool width (default: the machine's core
    count).  ``task`` is the per-payload worker function — overridable for
    tests; the default solves ``(model, solver, warm_start)`` payloads.
    All counters (``tasks``, ``respawns``, ``serial_fallbacks``,
    ``speculations``, ``speculation_wins``, ``spawned``) are cumulative
    over the fabric's lifetime and mirrored into ``repro.telemetry``.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        *,
        speculate_after_seconds: Optional[float] = None,
        max_respawns: int = 1,
        task: Optional[Callable] = None,
    ) -> None:
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")
        self._max_workers = max_workers
        self.speculate_after_seconds = speculate_after_seconds
        self._max_respawns = max_respawns
        self._task = task if task is not None else _default_task
        self._lock = threading.Lock()
        self._executor: Optional[ProcessPoolExecutor] = None
        self.spawned = 0
        self.tasks = 0
        self.respawns = 0
        self.serial_fallbacks = 0
        self.speculations = 0
        self.speculation_wins = 0

    # -- lifecycle ---------------------------------------------------------------

    @property
    def max_workers(self) -> int:
        return self._max_workers

    def ensure_workers(self, count: int) -> "SolveFabric":
        """Grow the pool to at least ``count`` workers (never shrinks).

        A live executor of the old width is discarded without waiting —
        already-queued futures still run to completion on it — and the
        next solve spawns at the new width.
        """
        stale = None
        with self._lock:
            if count > self._max_workers:
                self._max_workers = count
                stale, self._executor = self._executor, None
        if stale is not None:
            stale.shutdown(wait=False)
        return self

    def _executor_handle(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(max_workers=self._max_workers)
                self.spawned += 1
                telemetry.counter("fabric_pool_spawns")
            return self._executor

    def _discard(self, executor: ProcessPoolExecutor) -> None:
        with self._lock:
            if self._executor is executor:
                self._executor = None
        executor.shutdown(wait=False)

    def shutdown(self, wait: bool = True) -> None:
        """Reap the worker processes.  The fabric stays usable: a later
        ``solve`` lazily respawns the pool."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait)

    def __enter__(self) -> "SolveFabric":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # -- solving -----------------------------------------------------------------

    def solve(
        self,
        payloads: Sequence,
        estimates: Optional[Sequence[float]] = None,
        task: Optional[Callable] = None,
    ) -> List:
        """Run ``task`` over every payload; results come back in input order.

        ``estimates`` (model size proxies) drive largest-first dispatch.
        Single payloads — and one-worker fabrics — run in-process: the
        common single-dirty-component delta never pays IPC.
        """
        task = task if task is not None else self._task
        count = len(payloads)
        results: List = [None] * count
        if count == 0:
            return results
        self.tasks += count
        if count == 1 or self._max_workers <= 1:
            for index, payload in enumerate(payloads):
                results[index] = task(payload)
            return results
        if estimates is None:
            estimates = [0.0] * count
        order = sorted(range(count), key=lambda index: (-estimates[index], index))

        pending = list(order)
        for _attempt in range(self._max_respawns + 1):
            executor = self._executor_handle()
            try:
                futures = {
                    index: executor.submit(task, payloads[index])
                    for index in pending
                }
                self._collect(futures, results, payloads, task)
            except BrokenExecutor:
                self._discard(executor)
                self.respawns += 1
                telemetry.counter("fabric_pool_respawns")
                pending = [index for index in pending if results[index] is None]
                if not pending:
                    return results
                continue
            return results

        # The pool died on every respawn; finish what is left in-process so
        # the caller gets answers, not executor plumbing.
        self.serial_fallbacks += 1
        telemetry.counter("fabric_serial_fallbacks")
        for index in pending:
            if results[index] is None:
                results[index] = task(payloads[index])
        return results

    def _collect(
        self,
        futures: Dict[int, Future],
        results: List,
        payloads: Sequence,
        task: Callable,
    ) -> None:
        deadline = self.speculate_after_seconds
        if deadline is None:
            for index, future in futures.items():
                results[index] = future.result()
            return

        done, _ = wait(set(futures.values()), timeout=deadline)
        index_of = {future: index for index, future in futures.items()}
        stragglers: Dict[int, Future] = {}
        for index, future in futures.items():
            if future in done:
                results[index] = future.result()
            else:
                stragglers[index] = future
        if not stragglers:
            return

        spares = ThreadPoolExecutor(
            max_workers=len(stragglers), thread_name_prefix="fabric-speculate"
        )
        try:
            duplicates = {
                index: spares.submit(task, _speculative_payload(payloads[index]))
                for index in stragglers
            }
            self.speculations += len(duplicates)
            telemetry.counter("fabric_speculations", float(len(duplicates)))
            for index, primary in stragglers.items():
                duplicate = duplicates[index]
                wait({primary, duplicate}, return_when=FIRST_COMPLETED)
                if primary.done() and primary.exception() is None:
                    # Proof-aware preference: a finished exact solve always
                    # beats the heuristic's unproven incumbent.
                    results[index] = primary.result()
                    duplicate.cancel()
                else:
                    results[index] = duplicate.result()
                    self.speculation_wins += 1
                    telemetry.counter("fabric_speculation_wins")
                    primary.cancel()
        finally:
            spares.shutdown(wait=False)


_shared: Optional[SolveFabric] = None
_shared_lock = threading.Lock()


def shared_fabric(max_workers: int = 0) -> SolveFabric:
    """The process-wide fabric behind legacy ``max_workers > 1`` callers.

    Created on first use and grown (never shrunk) to the widest request
    seen, so repeated ``solve_partition_models`` calls share one set of
    long-lived workers instead of forking a pool per call.  Reaped at
    interpreter exit.
    """
    global _shared
    with _shared_lock:
        if _shared is None:
            _shared = SolveFabric(max_workers=max(1, max_workers))
            atexit.register(shutdown_shared_fabric)
    if max_workers > 1:
        _shared.ensure_workers(max_workers)
    return _shared


def shutdown_shared_fabric() -> None:
    """Reap the shared fabric's workers (it respawns lazily if used again)."""
    with _shared_lock:
        fabric = _shared
    if fabric is not None:
        fabric.shutdown()
