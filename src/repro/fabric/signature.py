"""Canonical component signatures and solution transport.

A partition component's *content* determines its model and therefore its
solution: the member statements' tightened logical topologies (edge lists
over physical links), their bandwidth terms, each member's slack rung, the
sorted link footprint with capacities, the path-selection heuristic, and
the solver backend with its limits.  Everything else — the tenant's
statement identifiers, the order statements were written in, the order
footprint links were discovered in — is presentation.

:func:`canonicalize_component` boils a component down to exactly that
content: each member is digested *without its identifier* and members are
ranked by digest, producing a signature that is invariant under tenant
renaming and statement permutation (and, trivially, footprint reordering —
links are sorted).  It is **not** invariant under physical-link renaming:
link names appear literally in capacities, footprints, and reservation
variables, so the cache only matches components on the same topology
naming.  The digest-rank order also yields a bidirectional id mapping,
which is how :func:`encode_solution` stores a
:class:`~repro.incremental.solve.PartitionSolution` in tenant-neutral form
and :func:`decode_solution` re-addresses it to a different tenant's
identifiers on a hit.

Two members with *identical* digests (interchangeable statements) keep
their relative sorted-identifier order on both sides, which maps them
position-wise — the same order the canonical model builder uses.

Records are plain JSON-able dicts so the cache can spill them to disk.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.localization import LocalRates
from ..core.logical import LogicalTopology
from ..lp.backends import backend_name

__all__ = [
    "CanonicalComponent",
    "SIGNATURE_VERSION",
    "backend_fingerprint",
    "canonicalize_component",
    "decode_solution",
    "encode_infeasible",
    "encode_solution",
]

#: Bump when anything entering the signature or record shape changes, so a
#: stale spill file from an older layout can never satisfy a lookup.
SIGNATURE_VERSION = "merlin-component-v1"

_JSON = dict(sort_keys=True, separators=(",", ":"))


def backend_fingerprint(solver) -> str:
    """What of the backend is solution-relevant: its name and limits.

    Different limits can produce different (time- or node-truncated)
    incumbents, so they key the cache alongside the registered name.
    Unregistered third-party instances fingerprint as their class name —
    distinct from every registered backend, never silently shared.
    """
    return json.dumps(
        [
            backend_name(solver),
            getattr(solver, "time_limit_seconds", None),
            getattr(solver, "node_limit", None),
            getattr(solver, "max_nodes", None),
        ],
        **_JSON,
    )


def _member_digest(
    logical: LogicalTopology, rates: LocalRates, slack: Optional[int]
) -> str:
    """Digest one member's identifier-free content.

    The tightened edge list is serialized in construction order — edge
    index *is* part of the content (it names the member's MIP variables) —
    along with the endpoints, the bandwidth terms in bps, and the slack
    rung the member is tightened at.
    """
    body = [
        logical.source_location,
        logical.destination_location,
        [
            [
                list(edge.source),
                list(edge.target),
                edge.location,
                list(edge.physical_link) if edge.physical_link else None,
            ]
            for edge in logical.edges
        ],
        rates.guarantee.bps_value if rates.guarantee is not None else None,
        rates.cap.bps_value if rates.cap is not None else None,
        slack,
    ]
    serialized = json.dumps(body, **_JSON)
    return hashlib.sha256(serialized.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CanonicalComponent:
    """A component's content signature plus the id re-addressing maps."""

    signature: str
    #: Canonical member names in rank order (``c0000``, ``c0001``, ...).
    canonical_ids: Tuple[str, ...]
    #: Requesting statement id -> canonical name.
    to_canonical: Mapping[str, str]
    #: Canonical name -> requesting statement id.
    to_actual: Mapping[str, str]


def canonicalize_component(
    spec,
    tightened: Mapping[str, LogicalTopology],
    rates: Mapping[str, LocalRates],
    capacity_mbps: Mapping[Tuple[str, str], float],
    heuristic,
    solver,
    member_slacks: Sequence[Optional[int]],
) -> CanonicalComponent:
    """Compute a component's canonical signature and id mapping.

    ``spec`` is the :class:`~repro.incremental.partition.PartitionSpec`
    (sorted statement ids, sorted links); ``member_slacks`` aligns with
    ``spec.statement_ids``.  ``tightened`` must hold each member's logical
    topology *at its slack rung* — the one the model would be built from.
    """
    digests = [
        _member_digest(tightened[sid], rates[sid], slack)
        for sid, slack in zip(spec.statement_ids, member_slacks)
    ]
    order = sorted(range(len(digests)), key=lambda i: (digests[i], i))
    canonical_ids = tuple(f"c{rank:04d}" for rank in range(len(order)))
    to_canonical = {
        spec.statement_ids[position]: canonical_ids[rank]
        for rank, position in enumerate(order)
    }
    links = [[u, v, capacity_mbps[(u, v)]] for (u, v) in sorted(spec.links)]
    header = json.dumps(
        [
            SIGNATURE_VERSION,
            heuristic.value,
            backend_fingerprint(solver),
            links,
            [digests[position] for position in order],
        ],
        **_JSON,
    )
    return CanonicalComponent(
        signature=hashlib.sha256(header.encode("utf-8")).hexdigest(),
        canonical_ids=canonical_ids,
        to_canonical=to_canonical,
        to_actual={c: sid for sid, c in to_canonical.items()},
    )


def _rename_values(
    values: Mapping[str, float], mapping: Mapping[str, str]
) -> Dict[str, float]:
    """Re-address ``x__{id}__{index}`` variable names through ``mapping``.

    Link-keyed variables (``r__{u}__{v}``, the maxima) pass through
    untouched — they name physical links, not statements.  Longest prefix
    wins, so an id that happens to be a prefix of another cannot capture
    its neighbour's variables.
    """
    prefixes = sorted(
        ((f"x__{old}__", f"x__{new}__") for old, new in mapping.items()),
        key=lambda pair: -len(pair[0]),
    )
    renamed: Dict[str, float] = {}
    for name, value in values.items():
        for old_prefix, new_prefix in prefixes:
            if name.startswith(old_prefix):
                renamed[new_prefix + name[len(old_prefix):]] = value
                break
        else:
            renamed[name] = value
    return renamed


def encode_solution(solution, canon: CanonicalComponent) -> Dict[str, object]:
    """Store a solved component in tenant-neutral (canonical-id) form."""
    mapping = canon.to_canonical
    return {
        "version": SIGNATURE_VERSION,
        "status": solution.status,
        "objective": solution.objective,
        "location_paths": {
            mapping[sid]: list(path)
            for sid, path in solution.location_paths.items()
        },
        "fractions": [
            [u, v, value] for (u, v), value in sorted(solution.fractions.items())
        ],
        "values": _rename_values(solution.values_by_name, mapping),
        "statistics": dict(solution.statistics),
        "num_variables": solution.num_variables,
        "num_constraints": solution.num_constraints,
    }


def encode_infeasible(status: str) -> Dict[str, object]:
    """Store a proven-infeasible component (so re-sweeps skip the rung)."""
    return {"version": SIGNATURE_VERSION, "infeasible": True, "status": status}


def decode_solution(
    record: Mapping[str, object],
    canon: CanonicalComponent,
    spec,
    member_slacks: Sequence[Optional[int]],
):
    """Re-address a stored record to the requesting component's identifiers.

    The timing fields are zeroed (no solve happened here) and the
    statistics gain a ``component_cache_hit`` flag; model-size and solver
    diagnostics are kept verbatim so merged statistics match a cold
    compile's.
    """
    from ..incremental.solve import PartitionSolution

    inverse = dict(canon.to_actual)
    statistics = dict(record["statistics"])
    statistics["component_cache_hit"] = 1.0
    return PartitionSolution(
        spec=spec,
        location_paths={
            inverse[cid]: tuple(path)
            for cid, path in record["location_paths"].items()
        },
        fractions={(u, v): value for u, v, value in record["fractions"]},
        values_by_name=_rename_values(record["values"], inverse),
        status=str(record["status"]),
        objective=record["objective"],
        statistics=statistics,
        num_variables=int(record["num_variables"]),
        num_constraints=int(record["num_constraints"]),
        construction_seconds=0.0,
        solve_seconds=0.0,
        span=None,
        member_slacks=tuple(member_slacks),
    )
