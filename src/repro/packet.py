"""A minimal packet model.

The Merlin compiler itself never inspects packets — classification is purely
symbolic — but predicate *evaluation* is needed by the end-host interpreter
backend, by tests that validate classification behaviour, and by the flow
simulator when it assigns traffic to statements.  A packet here is simply a
mapping from fully-qualified header field names (``"tcp.dst"``, ``"eth.src"``)
to values, plus an optional payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional


@dataclass(frozen=True)
class Packet:
    """An immutable packet with named header fields.

    Header values are stored in canonical form (integers for ports and
    protocol numbers, lower-case colon-separated strings for MAC addresses,
    dotted-quad strings for IPv4 addresses).  The :mod:`repro.predicates`
    package normalises values the same way, so comparisons are exact.
    """

    headers: Mapping[str, Any]
    payload: bytes = b""

    def get(self, field_name: str, default: Any = None) -> Any:
        """Return the value of ``field_name`` or ``default`` when absent."""
        return self.headers.get(field_name, default)

    def __contains__(self, field_name: str) -> bool:
        return field_name in self.headers

    def with_headers(self, **updates: Any) -> "Packet":
        """Return a copy of this packet with some header fields replaced.

        Packet-processing functions (NAT, proxies) are modelled as functions
        from one packet to zero or more packets; this helper makes writing
        such transformations convenient.
        """
        merged: Dict[str, Any] = dict(self.headers)
        merged.update(updates)
        return Packet(headers=merged, payload=self.payload)


def make_packet(
    eth_src: Optional[str] = None,
    eth_dst: Optional[str] = None,
    ip_src: Optional[str] = None,
    ip_dst: Optional[str] = None,
    ip_proto: Optional[Any] = None,
    tcp_src: Optional[int] = None,
    tcp_dst: Optional[int] = None,
    udp_src: Optional[int] = None,
    udp_dst: Optional[int] = None,
    vlan_id: Optional[int] = None,
    payload: bytes = b"",
    **extra: Any,
) -> Packet:
    """Build a :class:`Packet` from keyword arguments.

    Only the fields that are supplied appear in the packet's header mapping,
    mirroring how a real parser would only populate headers that exist.
    Additional fields may be passed with their fully-qualified dotted name via
    ``extra`` (e.g. ``**{"ip.tos": 4}`` is not valid Python syntax as a
    keyword, so pass ``extra`` entries using underscores: ``ip_tos=4``).
    """
    headers: Dict[str, Any] = {}

    def put(name: str, value: Any) -> None:
        if value is not None:
            headers[name] = value

    put("eth.src", _normalize_mac(eth_src) if eth_src else None)
    put("eth.dst", _normalize_mac(eth_dst) if eth_dst else None)
    put("ip.src", ip_src)
    put("ip.dst", ip_dst)
    put("ip.proto", _normalize_proto(ip_proto) if ip_proto is not None else None)
    put("tcp.src", tcp_src)
    put("tcp.dst", tcp_dst)
    put("udp.src", udp_src)
    put("udp.dst", udp_dst)
    put("vlan.id", vlan_id)
    for key, value in extra.items():
        put(key.replace("_", ".", 1), value)
    return Packet(headers=headers, payload=payload)


def _normalize_mac(mac: str) -> str:
    """Normalise a MAC address to lower-case, zero-padded, colon-separated."""
    parts = mac.replace("-", ":").split(":")
    return ":".join(part.zfill(2).lower() for part in parts)


_PROTO_NAMES = {"icmp": 1, "tcp": 6, "udp": 17}


def _normalize_proto(proto: Any) -> int:
    """Normalise an IP protocol given by name or number to its number."""
    if isinstance(proto, str):
        name = proto.strip().lower()
        if name in _PROTO_NAMES:
            return _PROTO_NAMES[name]
        return int(name)
    return int(proto)
