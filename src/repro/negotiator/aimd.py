"""Additive-increase multiplicative-decrease (AIMD) bandwidth negotiation.

One of the two proof-of-concept negotiator allocation schemes of §4.3 /
§6.3: each tenant repeatedly tries to increase its allocation by a fixed
additive step; when the sum of allocations exceeds the shared capacity the
offending tenants back off multiplicatively.  The resulting sawtooth
(Figure 10 (a)) is the classic TCP-like convergence-to-fairness dynamic, but
enforced by negotiators adjusting ``max`` clauses rather than by congestion
signals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..errors import SimulationError
from ..units import Bandwidth


@dataclass
class AimdTrace:
    """The time series produced by an AIMD run.

    Every tenant's series is kept aligned with ``times``: a tenant joining
    mid-run has its series front-padded with zeros (it held no allocation
    before it existed), and a tenant that leaves keeps accruing zeros.  This
    keeps :meth:`series` and :meth:`aggregate` index-aligned regardless of
    when tenants come and go.
    """

    times: List[float] = field(default_factory=list)
    allocations: Dict[str, List[float]] = field(default_factory=dict)

    def record(self, time: float, rates: Mapping[str, Bandwidth]) -> None:
        self.times.append(time)
        steps = len(self.times)
        for tenant, rate in rates.items():
            series = self.allocations.get(tenant)
            if series is None:
                # A late joiner: zero allocation for the steps it missed.
                series = [0.0] * (steps - 1)
                self.allocations[tenant] = series
            series.append(rate.mbps_value)
        # Tenants absent from this snapshot (e.g. removed) hold nothing.
        for series in self.allocations.values():
            if len(series) < steps:
                series.extend([0.0] * (steps - len(series)))

    def series(self, tenant: str) -> List[float]:
        """The Mbps allocation series of one tenant (aligned with ``times``)."""
        return list(self.allocations.get(tenant, []))

    def aggregate(self) -> List[float]:
        """The sum of all tenants' allocations at each step (Mbps)."""
        if not self.allocations:
            return []
        length = len(self.times)
        return [
            sum(series[index] for series in self.allocations.values())
            for index in range(length)
        ]


@dataclass
class AimdAllocator:
    """AIMD negotiation among tenants sharing a capacity.

    ``additive_increase`` is the per-step increment; ``multiplicative_decrease``
    is the back-off factor applied when the total demand exceeds the shared
    capacity.  Tenants only grow while they have demand.
    """

    capacity: Bandwidth
    additive_increase: Bandwidth = Bandwidth.mbps(25)
    multiplicative_decrease: float = 0.5
    initial_allocation: Bandwidth = Bandwidth.mbps(10)

    def __post_init__(self) -> None:
        if not 0.0 < self.multiplicative_decrease < 1.0:
            raise SimulationError(
                "multiplicative_decrease must lie strictly between 0 and 1"
            )
        self._allocations: Dict[str, Bandwidth] = {}

    # -- tenant management -----------------------------------------------------

    def add_tenant(self, name: str, initial: Optional[Bandwidth] = None) -> None:
        if name in self._allocations:
            raise SimulationError(f"duplicate tenant {name!r}")
        self._allocations[name] = initial or self.initial_allocation

    def remove_tenant(self, name: str) -> None:
        self._allocations.pop(name, None)

    def allocations(self) -> Dict[str, Bandwidth]:
        return dict(self._allocations)

    # -- the AIMD step -----------------------------------------------------------

    def step(self, demands: Optional[Mapping[str, Bandwidth]] = None) -> Dict[str, Bandwidth]:
        """Run one negotiation round and return the new allocations.

        ``demands`` optionally caps each tenant's desired rate; a tenant never
        grows beyond its demand.  The congestion test compares the *sum* of
        allocations against the shared capacity, mirroring a bottleneck link.
        """
        demands = demands or {}
        # Additive increase phase.
        for tenant in self._allocations:
            proposed = self._allocations[tenant] + self.additive_increase
            demand = demands.get(tenant)
            if demand is not None and proposed.bps_value > demand.bps_value:
                proposed = demand
            self._allocations[tenant] = proposed
        # Multiplicative decrease phase when over capacity.  The guard bounds
        # the loop when the capacity is (pathologically) zero.
        rounds = 0
        while self._total().bps_value > self.capacity.bps_value and rounds < 200:
            rounds += 1
            for tenant in self._allocations:
                self._allocations[tenant] = (
                    self._allocations[tenant] * self.multiplicative_decrease
                )
        return self.allocations()

    def run(
        self,
        steps: int,
        step_seconds: float = 1.0,
        demands: Optional[Mapping[str, Bandwidth]] = None,
    ) -> AimdTrace:
        """Run ``steps`` negotiation rounds and return the allocation trace."""
        trace = AimdTrace()
        trace.record(0.0, self.allocations())
        for index in range(1, steps + 1):
            self.step(demands)
            trace.record(index * step_seconds, self.allocations())
        return trace

    def _total(self) -> Bandwidth:
        return Bandwidth(sum(rate.bps_value for rate in self._allocations.values()))
