"""Verification of tenant policy refinements (§4.2).

A tenant's modification of a delegated policy is valid only if it makes the
policy *more restrictive*.  Verification performs a pairwise comparison of
the statements of the original and refined policies:

1. **Coverage** — every packet matched by an original statement must still be
   matched by some refined statement (the partition-totality requirement of
   §4.1), and refined statements must not claim packets outside the original
   statement they refine.
2. **Path inclusion** — for every pair of original/refined statements with
   overlapping predicates, the refined path language must be included in the
   original path language.
3. **Bandwidth implication** — for each original ``max``/``min`` clause, the
   sum of the refined allocations over the overlapping statements must not
   exceed the original allocation.

The paper discharges (1) and (3) with the Z3 SMT solver and (2) with the
Dprle library; here they are decided with the library's own predicate
satisfiability checker and automata-based language inclusion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..predicates.ast import Predicate, pred_or
from ..predicates.sat import covers, implies, overlaps
from ..regex.operations import counterexample, included
from ..units import Bandwidth
from ..core.ast import FMax, FMin, Formula, Policy, Statement, formula_clauses


@dataclass
class Violation:
    """One reason a refinement was rejected."""

    kind: str
    message: str
    original_statement: Optional[str] = None
    refined_statement: Optional[str] = None

    def __str__(self) -> str:
        return f"[{self.kind}] {self.message}"


@dataclass
class VerificationReport:
    """The outcome of verifying a refined policy against its parent."""

    valid: bool
    violations: List[Violation] = field(default_factory=list)
    checked_pairs: int = 0
    checked_clauses: int = 0

    def __bool__(self) -> bool:
        return self.valid


def verify_refinement(original: Policy, refined: Policy) -> VerificationReport:
    """Check that ``refined`` is a valid refinement of ``original``.

    Statements the tenant did not touch (identical predicate and path) are
    recognised up front and skip the expensive pairwise checks — they
    trivially refine themselves.  Only the changed statements pay for
    satisfiability and language-inclusion reasoning, which keeps verification
    time linear in the size of the *change* rather than of the whole policy
    (the behaviour Figure 9 measures).
    """
    violations: List[Violation] = []
    checked_pairs = 0

    # Index original statements by (predicate, path) to spot untouched ones.
    original_by_shape = {
        (statement.predicate, statement.path): statement
        for statement in original.statements
    }
    unchanged_partner: Dict[str, str] = {}
    changed_refined = []
    for candidate in refined.statements:
        partner = original_by_shape.get((candidate.predicate, candidate.path))
        if partner is not None:
            unchanged_partner[candidate.identifier] = partner.identifier
        else:
            changed_refined.append(candidate)
    covered_originals = set(unchanged_partner.values())

    # --- predicate coverage and containment -------------------------------
    for statement in original.statements:
        if statement.identifier in covered_originals:
            continue
        matching = [
            candidate
            for candidate in changed_refined
            if overlaps(candidate.predicate, statement.predicate)
        ]
        if not matching:
            violations.append(
                Violation(
                    kind="coverage",
                    message=(
                        f"no refined statement matches traffic of original "
                        f"statement {statement.identifier!r}"
                    ),
                    original_statement=statement.identifier,
                )
            )
            continue
        if not covers(statement.predicate, [m.predicate for m in matching]):
            violations.append(
                Violation(
                    kind="coverage",
                    message=(
                        f"refined statements do not cover all packets of original "
                        f"statement {statement.identifier!r}"
                    ),
                    original_statement=statement.identifier,
                )
            )

    original_union = pred_or(*[s.predicate for s in original.statements])
    for candidate in changed_refined:
        if not implies(candidate.predicate, original_union):
            violations.append(
                Violation(
                    kind="scope",
                    message=(
                        f"refined statement {candidate.identifier!r} matches packets "
                        "outside the delegated policy"
                    ),
                    refined_statement=candidate.identifier,
                )
            )

    # --- path-language inclusion on overlapping pairs ----------------------
    for statement in original.statements:
        for candidate in changed_refined:
            if not overlaps(candidate.predicate, statement.predicate):
                continue
            checked_pairs += 1
            if not included(candidate.path, statement.path):
                witness = counterexample(candidate.path, statement.path)
                witness_text = (
                    f" (e.g. path {' '.join(witness)})" if witness else ""
                )
                violations.append(
                    Violation(
                        kind="path",
                        message=(
                            f"refined statement {candidate.identifier!r} allows paths "
                            f"not allowed by original statement "
                            f"{statement.identifier!r}{witness_text}"
                        ),
                        original_statement=statement.identifier,
                        refined_statement=candidate.identifier,
                    )
                )

    # --- bandwidth implication ----------------------------------------------
    checked_clauses = 0
    original_caps, original_guarantees = _clause_tables(original)
    refined_caps, refined_guarantees = _clause_tables(refined)
    overlap_map = _overlap_map(original, changed_refined, unchanged_partner)

    for kind, original_table, refined_table in (
        ("max", original_caps, refined_caps),
        ("min", original_guarantees, refined_guarantees),
    ):
        # Index refined clauses by the identifiers they mention so that each
        # original clause only touches the clauses related to it (linear in
        # the policy size instead of quadratic).
        clauses_by_identifier: Dict[str, List[int]] = {}
        for position, (refined_identifiers, _) in enumerate(refined_table):
            for identifier in refined_identifiers:
                clauses_by_identifier.setdefault(identifier, []).append(position)
        for identifiers, original_rate in original_table:
            checked_clauses += 1
            related = set()
            for identifier in identifiers:
                related |= overlap_map.get(identifier, set())
            related_clause_positions = set()
            for identifier in related:
                related_clause_positions.update(clauses_by_identifier.get(identifier, ()))
            refined_total = Bandwidth(
                sum(
                    refined_table[position][1].bps_value
                    for position in related_clause_positions
                )
            )
            if refined_total.bps_value > original_rate.bps_value + 1.0:
                violations.append(
                    Violation(
                        kind="bandwidth",
                        message=(
                            f"sum of refined {kind} allocations "
                            f"({refined_total.human()}) exceeds the original "
                            f"{kind}({' + '.join(identifiers)}, {original_rate.human()})"
                        ),
                    )
                )

    return VerificationReport(
        valid=not violations,
        violations=violations,
        checked_pairs=checked_pairs,
        checked_clauses=checked_clauses,
    )


def _clause_tables(policy: Policy):
    """Split a policy's formula into (caps, guarantees) clause tables."""
    caps: List[Tuple[Tuple[str, ...], Bandwidth]] = []
    guarantees: List[Tuple[Tuple[str, ...], Bandwidth]] = []
    for clause in formula_clauses(policy.formula):
        if isinstance(clause, FMax):
            caps.append((clause.term.identifiers, clause.rate))
        elif isinstance(clause, FMin):
            guarantees.append((clause.term.identifiers, clause.rate))
    return caps, guarantees


def _overlap_map(
    original: Policy,
    changed_refined,
    unchanged_partner: Dict[str, str],
) -> Dict[str, set]:
    """Map each original statement identifier to the refined identifiers overlapping it.

    Untouched refined statements are mapped straight onto their identical
    original; only changed statements require satisfiability checks.
    """
    mapping: Dict[str, set] = {
        statement.identifier: set() for statement in original.statements
    }
    for refined_id, original_id in unchanged_partner.items():
        mapping[original_id].add(refined_id)
    for statement in original.statements:
        for candidate in changed_refined:
            if overlaps(candidate.predicate, statement.predicate):
                mapping[statement.identifier].add(candidate.identifier)
    return mapping
