"""Dynamic adaptation with negotiators (§4).

Negotiators are small run-time components that let tenants customise
delegated policies and let the provider verify that those customisations
never violate the global policy.  This package implements:

* **delegation** (:mod:`repro.negotiator.delegation`) — projecting a parent
  policy onto a tenant's scope,
* **verification** (:mod:`repro.negotiator.verification`) — checking that a
  refined policy implies the original: predicate coverage, regular-expression
  language inclusion, and bandwidth-sum implication,
* **negotiator hierarchy** (:mod:`repro.negotiator.negotiator`) — the tree of
  negotiators, parent/child delegation, and sibling renegotiation,
* two run-time allocation schemes: additive-increase multiplicative-decrease
  (:mod:`repro.negotiator.aimd`) and max-min fair sharing
  (:mod:`repro.negotiator.mmfs`), used for the adaptation experiment of
  Figure 10.
"""

from .aimd import AimdAllocator, AimdTrace
from .delegation import delegate
from .mmfs import MaxMinFairAllocator, max_min_fair_share
from .negotiator import Negotiator
from .verification import VerificationReport, verify_refinement

__all__ = [
    "AimdAllocator",
    "AimdTrace",
    "delegate",
    "MaxMinFairAllocator",
    "max_min_fair_share",
    "Negotiator",
    "VerificationReport",
    "verify_refinement",
]
