"""The negotiator hierarchy (§4).

Negotiators form a tree overlaying the network: each negotiator is
responsible for the network elements in its subtree, parents impose policies
on children, children may refine their delegated policies as long as the
refinement implies the parent policy, and siblings may renegotiate bandwidth
cooperatively as long as the parent's constraints still hold.  Bandwidth
re-allocation never requires recompiling the global policy, which is what
makes run-time adaptation cheap (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..errors import DelegationError, VerificationError
from ..predicates.ast import Predicate
from ..predicates.sat import equivalent
from ..regex.ast import Regex
from ..units import Bandwidth
from ..core.ast import (
    BandwidthTerm,
    FMax,
    FMin,
    Policy,
    Statement,
    formula_and,
    formula_clauses,
)
from .delegation import delegate
from .verification import VerificationReport, verify_refinement


@dataclass
class Negotiator:
    """A node of the negotiator tree.

    ``policy`` is the policy this negotiator currently enforces for its
    subtree.  The root negotiator holds the administrator's global policy;
    children hold delegated projections, possibly refined by their tenants.

    A negotiator may be attached to a :class:`~repro.core.compiler.
    MerlinCompiler` (typically at the root, after the global policy was
    compiled): verified refinements that change paths or guarantees then
    trigger *incremental* re-provisioning through the compiler's
    ``recompile`` fast path, while pure cap re-allocations — the common
    adaptation of §4.3 — still touch no forwarding state at all.  The most
    recent re-provisioning outcome is kept in ``last_reprovision``.
    """

    name: str
    policy: Policy
    parent: Optional["Negotiator"] = None
    children: Dict[str, "Negotiator"] = field(default_factory=dict)
    compiler: Optional[object] = None
    last_reprovision: Optional[object] = field(default=None, repr=False)

    # -- delegation -------------------------------------------------------------

    def delegate_to(
        self,
        child_name: str,
        scope_predicate: Predicate,
        scope_path: Optional[Regex] = None,
    ) -> "Negotiator":
        """Create a child negotiator holding the projection of this policy."""
        if child_name in self.children:
            raise DelegationError(f"child negotiator {child_name!r} already exists")
        child_policy = delegate(self.policy, scope_predicate, scope_path)
        child = Negotiator(name=child_name, policy=child_policy, parent=self)
        self.children[child_name] = child
        return child

    # -- refinement -------------------------------------------------------------

    def propose(self, refined: Policy) -> VerificationReport:
        """A tenant proposes a refined policy for this negotiator's subtree.

        The refinement is verified against the *current* policy; when valid
        it is adopted (and will constrain any further refinements).  If a
        compiler with an active session is attached to this negotiator or an
        ancestor, the adopted refinement is re-provisioned incrementally:
        only statements whose path or guarantee actually changed generate
        work (see :func:`repro.incremental.delta.policy_delta`).  If
        re-provisioning fails (e.g. the network lacks capacity), the
        refinement is withdrawn and the provisioning error propagates.
        Withdrawal is a pure rollback: ``recompile`` is transactional, so
        the compiler session already restored itself to the pre-delta
        state; the negotiator only reverts its own ``policy``.  The session
        stays active, and the next proposal is re-provisioned normally.
        """
        previous = self.policy
        report = verify_refinement(self.policy, refined)
        if report.valid:
            self.policy = refined
            try:
                self._reprovision(previous, refined)
            except Exception:
                self.policy = previous
                raise
        return report

    def _reprovision(self, previous: Policy, adopted: Policy) -> None:
        """Push an adopted refinement through the incremental compiler path.

        A no-op when no ancestor carries a compiler session or when the
        refinement changes nothing the provisioner cares about (the paper's
        cheap-adaptation case).  Re-provisioning failures propagate: the
        refinement was verified against the *policy*, but the network may
        still lack capacity for it.  :meth:`propose` withdraws the
        refinement on failure; the compiler session rolled back inside
        ``recompile`` and remains usable, so no re-seeding is needed.
        """
        holder = self._compiler_holder()
        if holder is None:
            return
        compiler = holder.compiler
        if not getattr(compiler, "has_session", False):
            return
        from ..incremental.delta import policy_delta

        delta = policy_delta(
            previous,
            adopted,
            weights=getattr(compiler, "localization_weights", None),
        )
        if delta.is_empty():
            return
        if holder is not self:
            delta = self._globalize_delta(compiler, previous, delta)
        result = compiler.session().apply(delta)
        self.last_reprovision = result
        if holder is not self:
            holder.last_reprovision = result

    def _globalize_delta(self, compiler, previous: Policy, delta):
        """Rewrite a delegated negotiator's delta against the global session.

        Delegation narrows each statement's predicate to the tenant scope
        (see :func:`~repro.negotiator.delegation.delegate`) while keeping
        identifiers, so a delta diffed from this negotiator's own policies
        would splice scope-narrowed predicates into the ancestor's compiler
        session — silently dropping out-of-scope traffic from network-wide
        provisioning.  Path and rate refinements instead apply to the
        session's statement with its *global* predicate kept; changes that
        cannot be expressed against the wider statement — a tenant-side
        predicate refinement, or removal of a statement the session covers
        more broadly — are refused with :class:`DelegationError` (the
        operator must recompile the root policy to apply them).

        The same projection problem applies to rates: delegation drops
        bandwidth clauses whose identifiers do not all survive the scope,
        so this negotiator's localization of a re-added statement may see
        ``guarantee=None`` where the global session holds a reservation.
        Rates the tenant did not change therefore keep the session's
        values; rates the tenant *did* change (a genuine rate refinement)
        pass through.
        """
        from ..core.localization import localize
        from ..incremental.delta import PolicyDelta, RateUpdate, same_rate

        previous_rates = localize(
            previous, weights=getattr(compiler, "localization_weights", None)
        )
        previous_by_id = {s.identifier: s for s in previous.statements}

        def merged_rates(identifier, guarantee, cap):
            """Per-field merge of tenant rates with the session's.

            A field the tenant left at its own previous (delegated) value
            keeps the session's value — the tenant's localization may have
            lost clauses delegation dropped; a field the tenant changed is
            a genuine rate refinement and passes through.
            """
            session_rates = compiler.session_rates(identifier)
            if session_rates is None:
                return guarantee, cap
            before_rates = previous_rates[identifier]
            if same_rate(guarantee, before_rates.guarantee):
                guarantee = session_rates.guarantee
            if same_rate(cap, before_rates.cap):
                cap = session_rates.cap
            return guarantee, cap

        add = []
        for entry in delta.add:
            statement = entry.statement
            identifier = statement.identifier
            current = compiler.session_statement(identifier)
            if current is None:
                # Genuinely new inside this scope: the tenant's predicate is
                # the statement's only definition, so it enters unchanged.
                add.append(entry)
                continue
            before = previous_by_id.get(identifier)
            if before is None or not equivalent(
                before.predicate, statement.predicate
            ):
                raise DelegationError(
                    f"cannot incrementally re-provision statement "
                    f"{identifier!r}: a delegated refinement changed its "
                    "predicate, which cannot be applied to the global "
                    "session's wider statement; recompile the root policy"
                )
            guarantee, cap = merged_rates(identifier, entry.guarantee, entry.cap)
            add.append(
                replace(
                    entry,
                    statement=Statement(
                        identifier=identifier,
                        predicate=current.predicate,
                        path=statement.path,
                    ),
                    guarantee=guarantee,
                    cap=cap,
                )
            )
        re_added = {entry.statement.identifier for entry in add}
        for identifier in delta.remove:
            if identifier in re_added:
                continue
            current = compiler.session_statement(identifier)
            before = previous_by_id.get(identifier)
            if current is not None and (
                before is None
                or not equivalent(current.predicate, before.predicate)
            ):
                raise DelegationError(
                    f"cannot incrementally remove statement {identifier!r}: "
                    "the global session covers more traffic than this "
                    "negotiator's delegated projection; recompile the root "
                    "policy"
                )
        updates = []
        for update in delta.update_rates:
            guarantee, cap = merged_rates(
                update.identifier, update.guarantee, update.cap
            )
            updates.append(
                RateUpdate(update.identifier, guarantee=guarantee, cap=cap)
            )
        return PolicyDelta(
            add=tuple(add), remove=delta.remove, update_rates=tuple(updates)
        )

    def _compiler_holder(self) -> Optional["Negotiator"]:
        node: Optional[Negotiator] = self
        while node is not None:
            if node.compiler is not None:
                return node
            node = node.parent
        return None

    def propose_or_raise(self, refined: Policy) -> None:
        """Like :meth:`propose` but raising :class:`VerificationError` on rejection."""
        report = self.propose(refined)
        if not report.valid:
            details = "; ".join(str(violation) for violation in report.violations)
            raise VerificationError(f"refinement rejected: {details}")

    # -- bandwidth renegotiation ---------------------------------------------------

    def total_cap(self) -> Bandwidth:
        """The sum of all ``max`` allocations in this negotiator's policy."""
        total = Bandwidth(0.0)
        for clause in formula_clauses(self.policy.formula):
            if isinstance(clause, FMax):
                total = total + clause.rate
        return total

    def total_guarantee(self) -> Bandwidth:
        """The sum of all ``min`` allocations in this negotiator's policy."""
        total = Bandwidth(0.0)
        for clause in formula_clauses(self.policy.formula):
            if isinstance(clause, FMin):
                total = total + clause.rate
        return total

    def reallocate_caps(self, new_caps: Dict[str, Bandwidth]) -> VerificationReport:
        """Redistribute ``max`` allocations across this policy's statements.

        The new per-statement caps replace the existing ``max`` clauses; the
        resulting policy is verified against the parent's policy (or against
        the current policy when this is the root), so a reallocation that
        exceeds the delegated budget is rejected.  Bandwidth re-allocation
        does not touch predicates or path expressions, so no recompilation of
        forwarding state is needed.
        """
        kept = [
            clause
            for clause in formula_clauses(self.policy.formula)
            if not isinstance(clause, FMax)
        ]
        new_clauses = [
            FMax(BandwidthTerm(identifiers=(identifier,)), rate)
            for identifier, rate in sorted(new_caps.items())
        ]
        candidate = self.policy.with_formula(formula_and(*kept, *new_clauses))
        reference = self.parent.policy if self.parent is not None else self.policy
        report = verify_refinement(reference, candidate)
        if report.valid:
            self.policy = candidate
        return report

    # -- tree queries ---------------------------------------------------------------

    def root(self) -> "Negotiator":
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def depth(self) -> int:
        depth = 0
        node = self
        while node.parent is not None:
            depth += 1
            node = node.parent
        return depth

    def descendants(self) -> List["Negotiator"]:
        found: List[Negotiator] = []
        stack = list(self.children.values())
        while stack:
            node = stack.pop()
            found.append(node)
            stack.extend(node.children.values())
        return found

    def __repr__(self) -> str:
        return (
            f"Negotiator({self.name!r}, statements={len(self.policy.statements)}, "
            f"children={sorted(self.children)})"
        )
