"""The negotiator hierarchy (§4).

Negotiators form a tree overlaying the network: each negotiator is
responsible for the network elements in its subtree, parents impose policies
on children, children may refine their delegated policies as long as the
refinement implies the parent policy, and siblings may renegotiate bandwidth
cooperatively as long as the parent's constraints still hold.  Bandwidth
re-allocation never requires recompiling the global policy, which is what
makes run-time adaptation cheap (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import DelegationError, VerificationError
from ..predicates.ast import Predicate
from ..regex.ast import Regex
from ..units import Bandwidth
from ..core.ast import BandwidthTerm, FMax, FMin, Policy, formula_and, formula_clauses
from .delegation import delegate
from .verification import VerificationReport, verify_refinement


@dataclass
class Negotiator:
    """A node of the negotiator tree.

    ``policy`` is the policy this negotiator currently enforces for its
    subtree.  The root negotiator holds the administrator's global policy;
    children hold delegated projections, possibly refined by their tenants.
    """

    name: str
    policy: Policy
    parent: Optional["Negotiator"] = None
    children: Dict[str, "Negotiator"] = field(default_factory=dict)

    # -- delegation -------------------------------------------------------------

    def delegate_to(
        self,
        child_name: str,
        scope_predicate: Predicate,
        scope_path: Optional[Regex] = None,
    ) -> "Negotiator":
        """Create a child negotiator holding the projection of this policy."""
        if child_name in self.children:
            raise DelegationError(f"child negotiator {child_name!r} already exists")
        child_policy = delegate(self.policy, scope_predicate, scope_path)
        child = Negotiator(name=child_name, policy=child_policy, parent=self)
        self.children[child_name] = child
        return child

    # -- refinement -------------------------------------------------------------

    def propose(self, refined: Policy) -> VerificationReport:
        """A tenant proposes a refined policy for this negotiator's subtree.

        The refinement is verified against the *current* policy; when valid
        it is adopted (and will constrain any further refinements).
        """
        report = verify_refinement(self.policy, refined)
        if report.valid:
            self.policy = refined
        return report

    def propose_or_raise(self, refined: Policy) -> None:
        """Like :meth:`propose` but raising :class:`VerificationError` on rejection."""
        report = self.propose(refined)
        if not report.valid:
            details = "; ".join(str(violation) for violation in report.violations)
            raise VerificationError(f"refinement rejected: {details}")

    # -- bandwidth renegotiation ---------------------------------------------------

    def total_cap(self) -> Bandwidth:
        """The sum of all ``max`` allocations in this negotiator's policy."""
        total = Bandwidth(0.0)
        for clause in formula_clauses(self.policy.formula):
            if isinstance(clause, FMax):
                total = total + clause.rate
        return total

    def total_guarantee(self) -> Bandwidth:
        """The sum of all ``min`` allocations in this negotiator's policy."""
        total = Bandwidth(0.0)
        for clause in formula_clauses(self.policy.formula):
            if isinstance(clause, FMin):
                total = total + clause.rate
        return total

    def reallocate_caps(self, new_caps: Dict[str, Bandwidth]) -> VerificationReport:
        """Redistribute ``max`` allocations across this policy's statements.

        The new per-statement caps replace the existing ``max`` clauses; the
        resulting policy is verified against the parent's policy (or against
        the current policy when this is the root), so a reallocation that
        exceeds the delegated budget is rejected.  Bandwidth re-allocation
        does not touch predicates or path expressions, so no recompilation of
        forwarding state is needed.
        """
        kept = [
            clause
            for clause in formula_clauses(self.policy.formula)
            if not isinstance(clause, FMax)
        ]
        new_clauses = [
            FMax(BandwidthTerm(identifiers=(identifier,)), rate)
            for identifier, rate in sorted(new_caps.items())
        ]
        candidate = self.policy.with_formula(formula_and(*kept, *new_clauses))
        reference = self.parent.policy if self.parent is not None else self.policy
        report = verify_refinement(reference, candidate)
        if report.valid:
            self.policy = candidate
        return report

    # -- tree queries ---------------------------------------------------------------

    def root(self) -> "Negotiator":
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def depth(self) -> int:
        depth = 0
        node = self
        while node.parent is not None:
            depth += 1
            node = node.parent
        return depth

    def descendants(self) -> List["Negotiator"]:
        found: List[Negotiator] = []
        stack = list(self.children.values())
        while stack:
            node = stack.pop()
            found.append(node)
            stack.extend(node.children.values())
        return found

    def __repr__(self) -> str:
        return (
            f"Negotiator({self.name!r}, statements={len(self.policy.statements)}, "
            f"children={sorted(self.children)})"
        )
