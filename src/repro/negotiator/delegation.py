"""Policy delegation (§4, §5).

"To delegate a policy, Merlin simply intersects the predicates and regular
expressions in each statement [of] the original policy to project out the
policy for the sub-network."  A tenant's scope is described by a predicate
(which packets the tenant controls) and, optionally, a path expression
restricting where the tenant's traffic may go.  Statements whose projection
is empty are dropped from the delegated policy; bandwidth clauses are
projected onto the surviving statement identifiers.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import DelegationError
from ..predicates.ast import Predicate, pred_and
from ..predicates.sat import is_satisfiable
from ..regex.ast import Regex
from ..regex.operations import intersection_empty
from ..core.ast import (
    BandwidthTerm,
    FAnd,
    FMax,
    FMin,
    FNot,
    FOr,
    Formula,
    FTrue,
    Policy,
    Statement,
    formula_and,
    formula_clauses,
)


def delegate(
    policy: Policy,
    scope_predicate: Predicate,
    scope_path: Optional[Regex] = None,
) -> Policy:
    """Project ``policy`` onto a tenant scope.

    Each statement's predicate is intersected with ``scope_predicate``;
    statements whose intersection is unsatisfiable are dropped.  When a
    ``scope_path`` is given, statements whose path language does not
    intersect it are also dropped (their traffic cannot exist inside the
    tenant's part of the network).  The formula keeps only the clauses whose
    identifiers all survive the projection.
    """
    surviving: List[Statement] = []
    for statement in policy.statements:
        narrowed = pred_and(statement.predicate, scope_predicate)
        if not is_satisfiable(narrowed):
            continue
        if scope_path is not None and intersection_empty(statement.path, scope_path):
            continue
        surviving.append(
            Statement(
                identifier=statement.identifier,
                predicate=narrowed,
                path=statement.path,
            )
        )
    if not surviving:
        raise DelegationError(
            "delegation scope does not overlap any statement of the policy"
        )
    survivors = {statement.identifier for statement in surviving}
    clauses = [
        clause
        for clause in formula_clauses(policy.formula)
        if clause.identifiers() and clause.identifiers() <= survivors
    ]
    return Policy(statements=tuple(surviving), formula=formula_and(*clauses))
