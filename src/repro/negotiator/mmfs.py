"""Max-min fair sharing (MMFS) bandwidth negotiation.

The second proof-of-concept allocation scheme of §4.3: tenants declare their
demands ahead of time and the negotiator satisfies them starting with the
smallest (progressive filling); remaining bandwidth is distributed among the
still-unsatisfied tenants.  Figure 10 (b) shows four hosts (two flows)
converging to the max-min fair allocation and re-adapting when demands
change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..units import Bandwidth
from .aimd import AimdTrace


def max_min_fair_share(
    capacity: Bandwidth, demands: Mapping[str, Bandwidth]
) -> Dict[str, Bandwidth]:
    """The classic water-filling max-min fair allocation.

    Demands are satisfied smallest-first; once a tenant's demand is met the
    leftover capacity is split among the rest.  Tenants with zero demand get
    nothing (their share is redistributed), and the allocation never exceeds
    a tenant's demand.
    """
    remaining = capacity.bps_value
    allocation: Dict[str, float] = {name: 0.0 for name in demands}
    pending = {name: rate.bps_value for name, rate in demands.items() if rate.bps_value > 0}
    while pending and remaining > 1e-9:
        fair_share = remaining / len(pending)
        satisfied = [name for name, demand in pending.items() if demand <= fair_share]
        if satisfied:
            for name in satisfied:
                allocation[name] = pending[name]
                remaining -= pending[name]
                del pending[name]
        else:
            for name in pending:
                allocation[name] = fair_share
            remaining = 0.0
            pending.clear()
    return {name: Bandwidth(value) for name, value in allocation.items()}


@dataclass
class MaxMinFairAllocator:
    """A negotiator applying max-min fair sharing to declared demands.

    ``step``/``run`` mirror the :class:`~repro.negotiator.aimd.AimdAllocator`
    interface so the adaptation benchmark can drive both schemes uniformly.
    """

    capacity: Bandwidth
    _demands: Dict[str, Bandwidth] = field(default_factory=dict)

    def declare_demand(self, tenant: str, demand: Bandwidth) -> None:
        """Record (or update) a tenant's declared demand."""
        self._demands[tenant] = demand

    def withdraw(self, tenant: str) -> None:
        """Remove a tenant (e.g. its transfer completed)."""
        self._demands.pop(tenant, None)

    def demands(self) -> Dict[str, Bandwidth]:
        return dict(self._demands)

    def allocate(self) -> Dict[str, Bandwidth]:
        """The max-min fair allocation for the current demands."""
        return max_min_fair_share(self.capacity, self._demands)

    def run(
        self,
        demand_schedule: Sequence[Mapping[str, Bandwidth]],
        step_seconds: float = 1.0,
    ) -> AimdTrace:
        """Apply a schedule of demand updates and trace the allocations.

        Each entry of ``demand_schedule`` is the demand map in force during
        that step (tenants absent from the map keep their previous demand).
        """
        trace = AimdTrace()
        for index, updates in enumerate(demand_schedule):
            for tenant, demand in updates.items():
                self.declare_demand(tenant, demand)
            trace.record(index * step_seconds, self.allocate())
        return trace
