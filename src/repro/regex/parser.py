"""Parser for Merlin path expressions.

Surface syntax examples from the paper::

    .* dpi .*
    .* dpi .* nat .*
    h1 .* dpi .* nat .* h2
    .* (h1|h2|m1) .*
    .* log .*

Grammar (precedence low to high)::

    expr    ::= term ( '|' term )*
    term    ::= factor+                 (concatenation by juxtaposition)
    factor  ::= '!' factor | base ( '*' )*
    base    ::= '(' expr ')' | '.' | SYMBOL

Symbols are location or function identifiers (letters, digits, underscores,
dashes, and dots inside names are not allowed — ``.`` is always the wildcard).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

from ..errors import ParseError
from .ast import DOT, Regex, Symbol, concat, star, union, Negate

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<symbol>[A-Za-z_][A-Za-z0-9_\-]*)
  | (?P<op>[().|*!])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def tokenize_path_expression(source: str) -> List[_Token]:
    """Tokenise a path expression, raising on unrecognised characters."""
    tokens: List[_Token] = []
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise ParseError(
                f"unexpected character {source[position]!r} in path expression",
                column=position,
            )
        if match.lastgroup != "ws":
            tokens.append(_Token(match.lastgroup or "", match.group(), position))
        position = match.end()
    return tokens


class _PathExpressionParser:
    def __init__(self, tokens: List[_Token], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._index = 0

    def _peek(self) -> Optional[_Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of path expression", column=len(self._source))
        self._index += 1
        return token

    def parse(self) -> Regex:
        expression = self._expr()
        trailing = self._peek()
        if trailing is not None:
            raise ParseError(
                f"unexpected trailing input {trailing.text!r} in path expression",
                column=trailing.position,
            )
        return expression

    def _expr(self) -> Regex:
        parts = [self._term()]
        while self._peek_op("|"):
            self._advance()
            parts.append(self._term())
        return union(*parts) if len(parts) > 1 else parts[0]

    def _term(self) -> Regex:
        factors = [self._factor()]
        while self._starts_factor():
            factors.append(self._factor())
        return concat(*factors) if len(factors) > 1 else factors[0]

    def _starts_factor(self) -> bool:
        token = self._peek()
        if token is None:
            return False
        if token.kind == "symbol":
            return True
        return token.kind == "op" and token.text in {"(", ".", "!"}

    def _factor(self) -> Regex:
        if self._peek_op("!"):
            self._advance()
            return Negate(self._factor())
        base = self._base()
        while self._peek_op("*"):
            self._advance()
            base = star(base)
        return base

    def _base(self) -> Regex:
        token = self._advance()
        if token.kind == "symbol":
            return Symbol(token.text)
        if token.kind == "op" and token.text == ".":
            return DOT
        if token.kind == "op" and token.text == "(":
            inner = self._expr()
            closing = self._advance()
            if closing.kind != "op" or closing.text != ")":
                raise ParseError("expected ')' in path expression", column=closing.position)
            return inner
        raise ParseError(
            f"unexpected token {token.text!r} in path expression", column=token.position
        )

    def _peek_op(self, text: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "op" and token.text == text


def parse_path_expression(source: str) -> Regex:
    """Parse path-expression concrete syntax into a :class:`Regex` AST.

    The paper's running example contains the typo ``dpi *. nat`` (a transposed
    ``.*``); the parser accepts the conventional ``.*`` form only, so the typo
    is normalised by the caller if needed.
    """
    tokens = tokenize_path_expression(source)
    if not tokens:
        raise ParseError("empty path expression")
    return _PathExpressionParser(tokens, source).parse()
