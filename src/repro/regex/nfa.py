"""Nondeterministic finite automata over the (large) alphabet of locations.

Because a network may contain hundreds of locations, transitions are not
expanded per-symbol.  Instead every transition carries a *label* that is
either

* :class:`SymbolLabel` — matches exactly one named location, or
* :class:`CoLabel` — matches every location *except* a finite excluded set
  (the wildcard ``.`` is ``CoLabel(frozenset())``).

This keeps Thompson automata small regardless of topology size while still
supporting complement (needed for ``!a`` path expressions and for language
inclusion): the subset construction in :mod:`repro.regex.dfa` only needs the
finite set of "relevant" symbols mentioned by labels, treating all other
locations uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import MerlinError
from .ast import Concat, Dot, Empty, Epsilon, Negate, Regex, Star, Symbol, Union


class Label:
    """Base class for transition labels."""

    def matches(self, symbol: str) -> bool:
        raise NotImplementedError

    @property
    def relevant(self) -> FrozenSet[str]:
        """Finite set of symbols on which this label's behaviour may differ
        from its behaviour on an arbitrary "fresh" symbol."""
        raise NotImplementedError

    def matches_other(self) -> bool:
        """Whether the label matches a symbol outside every relevant set."""
        raise NotImplementedError


@dataclass(frozen=True)
class SymbolLabel(Label):
    """Matches exactly one location."""

    name: str

    def matches(self, symbol: str) -> bool:
        return symbol == self.name

    @property
    def relevant(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def matches_other(self) -> bool:
        return False

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class CoLabel(Label):
    """Matches every location except those in ``excluded``."""

    excluded: FrozenSet[str] = frozenset()

    def matches(self, symbol: str) -> bool:
        return symbol not in self.excluded

    @property
    def relevant(self) -> FrozenSet[str]:
        return self.excluded

    def matches_other(self) -> bool:
        return True

    def __str__(self) -> str:
        if not self.excluded:
            return "."
        return "!(" + "|".join(sorted(self.excluded)) + ")"


#: The wildcard label used for ``.`` — matches any location.
ANY = CoLabel(frozenset())


@dataclass
class NFA:
    """An NFA with epsilon transitions and label-compressed edges."""

    start: int = 0
    accepts: Set[int] = field(default_factory=set)
    #: transitions[state] -> list of (label, destination state)
    transitions: Dict[int, List[Tuple[Label, int]]] = field(default_factory=dict)
    #: epsilon[state] -> set of destination states
    epsilon: Dict[int, Set[int]] = field(default_factory=dict)
    _next_state: int = 0

    # -- construction ------------------------------------------------------

    def new_state(self) -> int:
        """Allocate and return a fresh state identifier."""
        state = self._next_state
        self._next_state += 1
        self.transitions.setdefault(state, [])
        self.epsilon.setdefault(state, set())
        return state

    def add_transition(self, source: int, label: Label, destination: int) -> None:
        """Add a labelled transition."""
        self.transitions.setdefault(source, []).append((label, destination))
        self.transitions.setdefault(destination, [])
        self.epsilon.setdefault(source, set())
        self.epsilon.setdefault(destination, set())

    def add_epsilon(self, source: int, destination: int) -> None:
        """Add an epsilon transition."""
        self.epsilon.setdefault(source, set()).add(destination)
        self.epsilon.setdefault(destination, set())
        self.transitions.setdefault(source, [])
        self.transitions.setdefault(destination, [])

    @property
    def states(self) -> List[int]:
        """All state identifiers."""
        return sorted(set(self.transitions) | set(self.epsilon) | {self.start} | self.accepts)

    def num_states(self) -> int:
        return len(self.states)

    # -- simulation --------------------------------------------------------

    def epsilon_closure(self, states: Iterable[int]) -> FrozenSet[int]:
        """States reachable from ``states`` by epsilon transitions (inclusive)."""
        stack = list(states)
        closure: Set[int] = set(stack)
        while stack:
            state = stack.pop()
            for successor in self.epsilon.get(state, ()):
                if successor not in closure:
                    closure.add(successor)
                    stack.append(successor)
        return frozenset(closure)

    def move(self, states: Iterable[int], symbol: str) -> FrozenSet[int]:
        """States reachable from ``states`` by one transition matching ``symbol``."""
        result: Set[int] = set()
        for state in states:
            for label, destination in self.transitions.get(state, ()):
                if label.matches(symbol):
                    result.add(destination)
        return frozenset(result)

    def step(self, states: Iterable[int], symbol: str) -> FrozenSet[int]:
        """Epsilon-closed successor set on ``symbol``."""
        return self.epsilon_closure(self.move(self.epsilon_closure(states), symbol))

    def accepts_sequence(self, sequence: Sequence[str]) -> bool:
        """Whether the NFA accepts the given sequence of locations."""
        current = self.epsilon_closure({self.start})
        for symbol in sequence:
            current = self.epsilon_closure(self.move(current, symbol))
            if not current:
                return False
        return bool(current & self.accepts)

    def relevant_symbols(self) -> FrozenSet[str]:
        """Union of all symbols explicitly mentioned on labels."""
        symbols: Set[str] = set()
        for edges in self.transitions.values():
            for label, _ in edges:
                symbols |= label.relevant
        return frozenset(symbols)

    # -- epsilon elimination ------------------------------------------------

    def to_epsilon_free(self) -> "NFA":
        """Return an equivalent NFA without epsilon transitions.

        The logical-topology construction (§3.2) forms the product of the
        physical network with the statement NFA; eliminating epsilons first
        keeps the product's vertex set exactly ``L × Q_i`` as in the paper.
        """
        result = NFA()
        mapping: Dict[int, int] = {}
        for state in self.states:
            mapping[state] = result.new_state()
        result.start = mapping[self.start]
        for state in self.states:
            closure = self.epsilon_closure({state})
            if closure & self.accepts:
                result.accepts.add(mapping[state])
            for closed in closure:
                for label, destination in self.transitions.get(closed, ()):
                    result.add_transition(mapping[state], label, mapping[destination])
        return result

    def successors(self, state: int, symbol: str) -> FrozenSet[int]:
        """Direct (non-epsilon) successors of ``state`` on ``symbol``.

        Only meaningful on epsilon-free NFAs; used by the logical topology.
        """
        return frozenset(
            destination
            for label, destination in self.transitions.get(state, ())
            if label.matches(symbol)
        )

    # -- Thompson construction ---------------------------------------------

    @classmethod
    def from_regex(cls, expression: Regex) -> "NFA":
        """Build an NFA accepting the language of ``expression``.

        Complemented sub-expressions (``!a``) are handled by determinising
        the operand, complementing the DFA, and splicing the result back in
        as an NFA fragment.
        """
        nfa = cls()
        start, end = _thompson(nfa, expression)
        nfa.start = start
        nfa.accepts = {end}
        return nfa


def _thompson(nfa: NFA, expression: Regex) -> Tuple[int, int]:
    """Return (entry, exit) states of a Thompson fragment for ``expression``."""
    if isinstance(expression, Empty):
        entry, exit_ = nfa.new_state(), nfa.new_state()
        return entry, exit_
    if isinstance(expression, Epsilon):
        entry, exit_ = nfa.new_state(), nfa.new_state()
        nfa.add_epsilon(entry, exit_)
        return entry, exit_
    if isinstance(expression, Dot):
        entry, exit_ = nfa.new_state(), nfa.new_state()
        nfa.add_transition(entry, ANY, exit_)
        return entry, exit_
    if isinstance(expression, Symbol):
        entry, exit_ = nfa.new_state(), nfa.new_state()
        nfa.add_transition(entry, SymbolLabel(expression.name), exit_)
        return entry, exit_
    if isinstance(expression, Concat):
        left_entry, left_exit = _thompson(nfa, expression.left)
        right_entry, right_exit = _thompson(nfa, expression.right)
        nfa.add_epsilon(left_exit, right_entry)
        return left_entry, right_exit
    if isinstance(expression, Union):
        entry, exit_ = nfa.new_state(), nfa.new_state()
        left_entry, left_exit = _thompson(nfa, expression.left)
        right_entry, right_exit = _thompson(nfa, expression.right)
        nfa.add_epsilon(entry, left_entry)
        nfa.add_epsilon(entry, right_entry)
        nfa.add_epsilon(left_exit, exit_)
        nfa.add_epsilon(right_exit, exit_)
        return entry, exit_
    if isinstance(expression, Star):
        entry, exit_ = nfa.new_state(), nfa.new_state()
        inner_entry, inner_exit = _thompson(nfa, expression.operand)
        nfa.add_epsilon(entry, inner_entry)
        nfa.add_epsilon(entry, exit_)
        nfa.add_epsilon(inner_exit, inner_entry)
        nfa.add_epsilon(inner_exit, exit_)
        return entry, exit_
    if isinstance(expression, Negate):
        return _thompson_complement(nfa, expression.operand)
    raise MerlinError(f"unknown regex node: {expression!r}")


def _thompson_complement(nfa: NFA, operand: Regex) -> Tuple[int, int]:
    """Splice the complement of ``operand`` into ``nfa`` as a fragment."""
    # Imported here to avoid a circular module dependency (dfa imports nfa).
    from .dfa import DFA

    complemented = DFA.from_nfa(NFA.from_regex(operand)).complement()
    mapping: Dict[int, int] = {}
    for state in complemented.states():
        mapping[state] = nfa.new_state()
    exit_state = nfa.new_state()
    for state in complemented.states():
        for symbol, destination in complemented.explicit_transitions(state).items():
            nfa.add_transition(mapping[state], SymbolLabel(symbol), mapping[destination])
        default = complemented.default_transition(state)
        excluded = frozenset(complemented.explicit_transitions(state))
        nfa.add_transition(mapping[state], CoLabel(excluded), mapping[default])
        if complemented.is_accepting(state):
            nfa.add_epsilon(mapping[state], exit_state)
    return mapping[complemented.start], exit_state
