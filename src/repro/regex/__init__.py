"""Path regular expressions and the automata substrate.

Merlin statements constrain forwarding paths with regular expressions whose
alphabet is the (finite) set of network locations plus the names of packet
processing functions.  This package provides everything the compiler and the
negotiator verification machinery need:

* a regex AST and parser (``.``, symbols, concatenation, ``|``, ``*``, ``!``),
* function-name substitution (``dpi`` becomes the union of the locations able
  to run DPI),
* Thompson construction of NFAs, subset construction of DFAs, Hopcroft
  minimisation,
* language operations: union, intersection, difference, complement,
  emptiness, inclusion, and equivalence (the paper uses the Dprle library for
  inclusion checking; here the textbook algorithms are implemented directly).
"""

from .ast import (
    Concat,
    Dot,
    Empty,
    Epsilon,
    Negate,
    Regex,
    Star,
    Symbol,
    Union,
    concat,
    star,
    union,
)
from .dfa import DFA
from .nfa import NFA, ANY
from .operations import (
    accepts,
    equivalent,
    included,
    intersection_empty,
    is_empty,
    shortest_accepted,
)
from .parser import parse_path_expression
from .substitution import substitute_functions

__all__ = [
    "Concat",
    "Dot",
    "Empty",
    "Epsilon",
    "Negate",
    "Regex",
    "Star",
    "Symbol",
    "Union",
    "concat",
    "star",
    "union",
    "DFA",
    "NFA",
    "ANY",
    "accepts",
    "equivalent",
    "included",
    "intersection_empty",
    "is_empty",
    "shortest_accepted",
    "parse_path_expression",
    "substitute_functions",
]
