"""Function-name substitution in path expressions.

The first step of the logical-topology construction (§3.2) maps a regular
expression over locations *and* packet-processing function names into a
regular expression over locations only: every occurrence of a function name
is replaced with the union of the locations that can host that function.
For example, with ``nat`` placeable at ``h1``, ``h2`` or ``m1``::

    .* nat .*   becomes   .* (h1|h2|m1) .*
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Sequence, Set

from ..errors import PlacementError
from .ast import Concat, Dot, Empty, Epsilon, Negate, Regex, Star, Symbol, Union, union


def substitute_functions(
    expression: Regex,
    placements: Mapping[str, Iterable[str]],
    locations: Iterable[str],
) -> Regex:
    """Replace function names with the union of their possible locations.

    ``placements`` maps a function name to the locations able to run it, and
    ``locations`` is the set of all physical locations.  Symbols that already
    name a physical location are left unchanged.  A symbol that is neither a
    location nor a placeable function is an error — the policy references
    something that does not exist in the network.
    """
    location_set = frozenset(locations)
    placement_sets: Dict[str, FrozenSet[str]] = {
        name: frozenset(sites) for name, sites in placements.items()
    }
    for name, sites in placement_sets.items():
        missing = sites - location_set
        if missing:
            raise PlacementError(
                f"function {name!r} is mapped to unknown locations: {sorted(missing)}"
            )
        if not sites:
            raise PlacementError(f"function {name!r} has no feasible placement")
    return _substitute(expression, placement_sets, location_set)


def _substitute(
    node: Regex,
    placements: Mapping[str, FrozenSet[str]],
    locations: FrozenSet[str],
) -> Regex:
    if isinstance(node, (Empty, Epsilon, Dot)):
        return node
    if isinstance(node, Symbol):
        if node.name in locations:
            return node
        if node.name in placements:
            sites = sorted(placements[node.name])
            return union(*[Symbol(site) for site in sites])
        raise PlacementError(
            f"path expression references {node.name!r}, which is neither a "
            "network location nor a placeable packet-processing function"
        )
    if isinstance(node, Concat):
        return Concat(
            _substitute(node.left, placements, locations),
            _substitute(node.right, placements, locations),
        )
    if isinstance(node, Union):
        return Union(
            _substitute(node.left, placements, locations),
            _substitute(node.right, placements, locations),
        )
    if isinstance(node, Star):
        return Star(_substitute(node.operand, placements, locations))
    if isinstance(node, Negate):
        return Negate(_substitute(node.operand, placements, locations))
    raise TypeError(f"unknown regex node: {node!r}")


def functions_used(expression: Regex, locations: Iterable[str]) -> Set[str]:
    """Return the symbols in ``expression`` that are not physical locations.

    These are the packet-processing function names the compiler must place.
    """
    location_set = frozenset(locations)
    return {name for name in expression.symbols() if name not in location_set}
