"""DFA minimisation by partition refinement.

The DFA representation keeps explicit transitions plus a default successor,
so classical Hopcroft over the full alphabet is replaced by Moore-style
refinement over the *relevant* symbols (those that appear explicitly anywhere
in the DFA) plus a single synthetic "other" symbol representing every
remaining location.  Two states behave identically on all locations iff they
behave identically on that reduced symbol set, so the result is the canonical
minimal DFA for the language restricted to reachable states.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .dfa import DFA

#: Synthetic symbol standing for "any location without an explicit transition".
_OTHER = "\x00<other>"


def minimize(dfa: DFA) -> DFA:
    """Return the minimal DFA equivalent to ``dfa``."""
    reachable = dfa.reachable_states()
    symbols = sorted(dfa.relevant_symbols())
    probe_symbols = symbols + [_OTHER]

    def step(state: int, symbol: str) -> int:
        if symbol == _OTHER:
            return dfa.default_transition(state)
        return dfa.step(state, symbol)

    # Initial partition: accepting vs non-accepting (restricted to reachable).
    states = sorted(reachable)
    block_of: Dict[int, int] = {
        state: (0 if state in dfa.accepting else 1) for state in states
    }
    # Normalise block ids in case one of the two classes is empty.
    block_of = _renumber(block_of)

    while True:
        signatures: Dict[int, Tuple] = {}
        for state in states:
            signature = (
                block_of[state],
                tuple(block_of[step(state, symbol)] for symbol in probe_symbols),
            )
            signatures[state] = signature
        mapping: Dict[Tuple, int] = {}
        new_block_of: Dict[int, int] = {}
        for state in states:
            signature = signatures[state]
            if signature not in mapping:
                mapping[signature] = len(mapping)
            new_block_of[state] = mapping[signature]
        if len(set(new_block_of.values())) == len(set(block_of.values())):
            block_of = new_block_of
            break
        block_of = new_block_of

    # Build the quotient DFA.
    explicit: Dict[int, Dict[str, int]] = {}
    default: Dict[int, int] = {}
    accepting: Set[int] = set()
    representatives: Dict[int, int] = {}
    for state in states:
        representatives.setdefault(block_of[state], state)
    for block, representative in representatives.items():
        default[block] = block_of[dfa.default_transition(representative)]
        table: Dict[str, int] = {}
        for symbol in symbols:
            destination = block_of[dfa.step(representative, symbol)]
            if destination != default[block]:
                table[symbol] = destination
        explicit[block] = table
        if representative in dfa.accepting:
            accepting.add(block)
    return DFA(
        start=block_of[dfa.start],
        accepting=accepting,
        _explicit=explicit,
        _default=default,
    )


def _renumber(block_of: Dict[int, int]) -> Dict[int, int]:
    """Renumber block identifiers densely starting at zero."""
    mapping: Dict[int, int] = {}
    result: Dict[int, int] = {}
    for state in sorted(block_of):
        block = block_of[state]
        if block not in mapping:
            mapping[block] = len(mapping)
        result[state] = mapping[block]
    return result


def count_equivalence_classes(dfa: DFA) -> int:
    """Number of states of the minimal DFA (a language-size metric)."""
    return minimize(dfa).num_states()
