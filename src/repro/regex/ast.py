"""Abstract syntax for Merlin path expressions.

The grammar (Figure 1)::

    a ::= . | c | a a | a|a | a* | !a

where ``c`` is a path element: a network location or the name of a packet
processing function.  The AST is shared by the compiler (which builds the
logical topology from it) and by the negotiator verification machinery (which
decides language inclusion between a tenant's refined expression and the
original).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple


class Regex:
    """Base class for path-expression AST nodes."""

    def children(self) -> Tuple["Regex", ...]:
        """Immediate sub-expressions (empty for leaves)."""
        return ()

    def size(self) -> int:
        """Number of AST nodes; Figure 9 uses this as the complexity metric."""
        return 1 + sum(child.size() for child in self.children())

    def symbols(self) -> FrozenSet[str]:
        """All explicit symbols (locations or function names) mentioned."""
        result: set = set()
        for child in self.children():
            result |= child.symbols()
        return frozenset(result)

    def nullable(self) -> bool:
        """Whether the empty sequence is in the language."""
        raise NotImplementedError

    # Operator sugar used by tests and examples.
    def __add__(self, other: "Regex") -> "Regex":
        return concat(self, other)

    def __or__(self, other: "Regex") -> "Regex":
        return union(self, other)


@dataclass(frozen=True)
class Empty(Regex):
    """The empty language (matches nothing)."""

    def nullable(self) -> bool:
        return False

    def __str__(self) -> str:
        return "∅"


@dataclass(frozen=True)
class Epsilon(Regex):
    """The language containing only the empty sequence."""

    def nullable(self) -> bool:
        return True

    def __str__(self) -> str:
        return "ε"


@dataclass(frozen=True)
class Dot(Regex):
    """Matches any single location (the ``.`` of the surface syntax)."""

    def nullable(self) -> bool:
        return False

    def __str__(self) -> str:
        return "."


@dataclass(frozen=True)
class Symbol(Regex):
    """Matches a single specific location or packet-processing function."""

    name: str

    def symbols(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def nullable(self) -> bool:
        return False

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Concat(Regex):
    """Sequential composition of two path expressions."""

    left: Regex
    right: Regex

    def children(self) -> Tuple[Regex, ...]:
        return (self.left, self.right)

    def nullable(self) -> bool:
        return self.left.nullable() and self.right.nullable()

    def __str__(self) -> str:
        return f"{self._wrap(self.left)} {self._wrap(self.right)}"

    @staticmethod
    def _wrap(node: Regex) -> str:
        if isinstance(node, Union):
            return f"({node})"
        return str(node)


@dataclass(frozen=True)
class Union(Regex):
    """Alternation between two path expressions."""

    left: Regex
    right: Regex

    def children(self) -> Tuple[Regex, ...]:
        return (self.left, self.right)

    def nullable(self) -> bool:
        return self.left.nullable() or self.right.nullable()

    def __str__(self) -> str:
        return f"{self.left}|{self.right}"


@dataclass(frozen=True)
class Star(Regex):
    """Kleene star (zero or more repetitions)."""

    operand: Regex

    def children(self) -> Tuple[Regex, ...]:
        return (self.operand,)

    def nullable(self) -> bool:
        return True

    def __str__(self) -> str:
        if isinstance(self.operand, (Symbol, Dot, Epsilon, Empty)):
            return f"{self.operand}*"
        return f"({self.operand})*"


@dataclass(frozen=True)
class Negate(Regex):
    """Language complement with respect to all sequences of locations."""

    operand: Regex

    def children(self) -> Tuple[Regex, ...]:
        return (self.operand,)

    def nullable(self) -> bool:
        return not self.operand.nullable()

    def __str__(self) -> str:
        return f"!({self.operand})"


#: Shared leaf singletons.
EMPTY = Empty()
EPSILON = Epsilon()
DOT = Dot()


def concat(*parts: Regex) -> Regex:
    """Concatenate path expressions, simplifying identities.

    ``Epsilon`` is the concatenation identity and ``Empty`` annihilates.
    ``concat()`` with no arguments is ``Epsilon``.
    """
    result: Regex = EPSILON
    for part in parts:
        if isinstance(part, Empty) or isinstance(result, Empty):
            return EMPTY
        if isinstance(part, Epsilon):
            continue
        result = part if isinstance(result, Epsilon) else Concat(result, part)
    return result


def union(*parts: Regex) -> Regex:
    """Alternate path expressions, simplifying identities (``Empty`` is the unit)."""
    result: Regex = EMPTY
    for part in parts:
        if isinstance(part, Empty):
            continue
        result = part if isinstance(result, Empty) else Union(result, part)
    return result


def star(operand: Regex) -> Regex:
    """Kleene star with simplification of nested stars and trivial operands."""
    if isinstance(operand, (Star, Epsilon)):
        return operand if isinstance(operand, Star) else EPSILON
    if isinstance(operand, Empty):
        return EPSILON
    return Star(operand)


def any_path() -> Regex:
    """The expression ``.*`` matching any forwarding path."""
    return star(DOT)


def literal_path(*locations: str) -> Regex:
    """A path expression matching exactly the given sequence of locations."""
    return concat(*[Symbol(location) for location in locations])
