"""Deterministic finite automata with default ("all other symbols") edges.

The subset construction below never enumerates the full location alphabet.
Each DFA state keeps

* an *explicit* transition map for the finitely many symbols on which its
  behaviour is special, and
* a single *default* successor used for every other symbol.

Because every state has a default successor, the DFA is complete over any
alphabet, so complement is just flipping accepting states — exactly what
language inclusion (used by negotiator verification) and ``!a`` expressions
need.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .nfa import NFA


@dataclass
class DFA:
    """A complete DFA with explicit-plus-default transitions."""

    start: int
    accepting: Set[int]
    #: _explicit[state][symbol] -> destination
    _explicit: Dict[int, Dict[str, int]]
    #: _default[state] -> destination for every symbol not in _explicit[state]
    _default: Dict[int, int]

    # -- basic queries -----------------------------------------------------

    def states(self) -> List[int]:
        """All state identifiers."""
        return sorted(set(self._explicit) | set(self._default) | {self.start} | self.accepting)

    def num_states(self) -> int:
        return len(self.states())

    def is_accepting(self, state: int) -> bool:
        return state in self.accepting

    def explicit_transitions(self, state: int) -> Dict[str, int]:
        """The symbol-specific transitions of ``state``."""
        return dict(self._explicit.get(state, {}))

    def default_transition(self, state: int) -> int:
        """The successor of ``state`` on any symbol without an explicit entry."""
        return self._default[state]

    def step(self, state: int, symbol: str) -> int:
        """Deterministic successor of ``state`` on ``symbol``."""
        return self._explicit.get(state, {}).get(symbol, self._default[state])

    def accepts_sequence(self, sequence: Sequence[str]) -> bool:
        """Whether the DFA accepts the given sequence of locations."""
        state = self.start
        for symbol in sequence:
            state = self.step(state, symbol)
        return state in self.accepting

    def relevant_symbols(self) -> FrozenSet[str]:
        """All symbols with an explicit transition anywhere in the DFA."""
        symbols: Set[str] = set()
        for table in self._explicit.values():
            symbols |= set(table)
        return frozenset(symbols)

    # -- construction from an NFA -------------------------------------------

    @classmethod
    def from_nfa(cls, nfa: NFA) -> "DFA":
        """Subset construction, tracking only the NFA's relevant symbols."""
        start_set = nfa.epsilon_closure({nfa.start})
        index: Dict[FrozenSet[int], int] = {start_set: 0}
        explicit: Dict[int, Dict[str, int]] = {}
        default: Dict[int, int] = {}
        accepting: Set[int] = set()
        queue = deque([start_set])
        while queue:
            current = queue.popleft()
            current_id = index[current]
            if current & nfa.accepts:
                accepting.add(current_id)
            relevant: Set[str] = set()
            has_other = False
            for state in current:
                for label, _ in nfa.transitions.get(state, ()):
                    relevant |= label.relevant
                    has_other = has_other or label.matches_other()
            # Default successor: transitions whose label matches a symbol
            # outside every relevant set (i.e., CoLabels).
            other_targets: Set[int] = set()
            if has_other:
                for state in current:
                    for label, destination in nfa.transitions.get(state, ()):
                        if label.matches_other():
                            other_targets.add(destination)
            default_set = nfa.epsilon_closure(other_targets) if other_targets else frozenset()
            default_id = _intern(default_set, index, queue)
            default[current_id] = default_id
            table: Dict[str, int] = {}
            for symbol in relevant:
                successor = nfa.step(current, symbol)
                successor_id = _intern(successor, index, queue)
                if successor_id != default_id:
                    table[symbol] = successor_id
            explicit[current_id] = table
        # The empty subset (dead state) may have been interned; ensure it has
        # transition entries (it loops to itself on everything).
        for state_id in list(index.values()):
            explicit.setdefault(state_id, {})
            default.setdefault(state_id, state_id)
        return cls(start=0, accepting=accepting, _explicit=explicit, _default=default)

    # -- language operations -------------------------------------------------

    def complement(self) -> "DFA":
        """The DFA accepting exactly the sequences this one rejects."""
        all_states = set(self.states())
        return DFA(
            start=self.start,
            accepting=all_states - self.accepting,
            _explicit={state: dict(table) for state, table in self._explicit.items()},
            _default=dict(self._default),
        )

    def product(self, other: "DFA", accept_rule) -> "DFA":
        """Product construction; ``accept_rule(a, b)`` decides acceptance."""
        index: Dict[Tuple[int, int], int] = {}
        explicit: Dict[int, Dict[str, int]] = {}
        default: Dict[int, int] = {}
        accepting: Set[int] = set()
        queue: deque = deque()

        def intern(pair: Tuple[int, int]) -> int:
            if pair not in index:
                index[pair] = len(index)
                queue.append(pair)
            return index[pair]

        start_pair = (self.start, other.start)
        intern(start_pair)
        while queue:
            pair = queue.popleft()
            pair_id = index[pair]
            left, right = pair
            if accept_rule(left in self.accepting, right in other.accepting):
                accepting.add(pair_id)
            symbols = set(self._explicit.get(left, {})) | set(other._explicit.get(right, {}))
            default_pair = (self._default[left], other._default[right])
            default_id = intern(default_pair)
            default[pair_id] = default_id
            table: Dict[str, int] = {}
            for symbol in symbols:
                successor = (self.step(left, symbol), other.step(right, symbol))
                successor_id = intern(successor)
                if successor_id != default_id:
                    table[symbol] = successor_id
            explicit[pair_id] = table
        return DFA(start=0, accepting=accepting, _explicit=explicit, _default=default)

    def intersect(self, other: "DFA") -> "DFA":
        """Language intersection."""
        return self.product(other, lambda a, b: a and b)

    def union(self, other: "DFA") -> "DFA":
        """Language union."""
        return self.product(other, lambda a, b: a or b)

    def difference(self, other: "DFA") -> "DFA":
        """Language difference (sequences accepted by self but not other)."""
        return self.product(other, lambda a, b: a and not b)

    def is_empty(self) -> bool:
        """Whether no sequence is accepted."""
        return self.shortest_accepted() is None

    def shortest_accepted(self) -> Optional[Tuple[str, ...]]:
        """A shortest accepted sequence, or ``None`` if the language is empty.

        Default transitions are witnessed with a fresh placeholder symbol
        (``"<any>"``), representing "any location not explicitly mentioned".
        """
        if self.start in self.accepting:
            return ()
        visited = {self.start}
        queue: deque = deque([(self.start, ())])
        while queue:
            state, path = queue.popleft()
            moves: List[Tuple[str, int]] = list(self._explicit.get(state, {}).items())
            moves.append(("<any>", self._default[state]))
            for symbol, successor in moves:
                if successor in visited:
                    continue
                next_path = path + (symbol,)
                if successor in self.accepting:
                    return next_path
                visited.add(successor)
                queue.append((successor, next_path))
        return None

    def reachable_states(self) -> Set[int]:
        """States reachable from the start state."""
        visited = {self.start}
        queue = deque([self.start])
        while queue:
            state = queue.popleft()
            successors = set(self._explicit.get(state, {}).values())
            successors.add(self._default[state])
            for successor in successors:
                if successor not in visited:
                    visited.add(successor)
                    queue.append(successor)
        return visited


def _intern(subset: FrozenSet[int], index: Dict[FrozenSet[int], int], queue: deque) -> int:
    if subset not in index:
        index[subset] = len(index)
        queue.append(subset)
    return index[subset]
