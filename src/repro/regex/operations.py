"""Language-level operations on path expressions.

These are the decision procedures the paper obtains from the Dprle library:
emptiness, inclusion, and equivalence of regular path languages.  Negotiator
verification (§4.2) uses inclusion to check that a tenant's refined path
expression only allows paths the parent policy already allowed.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Sequence, Tuple

from .ast import Regex
from .dfa import DFA
from .minimize import minimize
from .nfa import NFA


def compile_dfa(expression: Regex, *, minimal: bool = False) -> DFA:
    """Compile a path expression to a (optionally minimal) DFA."""
    dfa = DFA.from_nfa(NFA.from_regex(expression))
    return minimize(dfa) if minimal else dfa


def accepts(expression: Regex, sequence: Sequence[str]) -> bool:
    """Whether ``sequence`` (of locations) is in the language of ``expression``."""
    return NFA.from_regex(expression).accepts_sequence(sequence)


def is_empty(expression: Regex) -> bool:
    """Whether the language of ``expression`` is empty."""
    return compile_dfa(expression).is_empty()


def shortest_accepted(expression: Regex) -> Optional[Tuple[str, ...]]:
    """A shortest sequence in the language, or ``None`` if the language is empty."""
    return compile_dfa(expression).shortest_accepted()


def included(refined: Regex, original: Regex) -> bool:
    """Language inclusion: every path allowed by ``refined`` is allowed by ``original``.

    Implemented as emptiness of ``L(refined) ∩ complement(L(original))``.
    """
    refined_dfa = compile_dfa(refined)
    original_dfa = compile_dfa(original)
    return refined_dfa.difference(original_dfa).is_empty()


def equivalent(left: Regex, right: Regex) -> bool:
    """Language equivalence of two path expressions."""
    return included(left, right) and included(right, left)


def intersection_empty(left: Regex, right: Regex) -> bool:
    """Whether the two path languages share no sequence."""
    return compile_dfa(left).intersect(compile_dfa(right)).is_empty()


def counterexample(refined: Regex, original: Regex) -> Optional[Tuple[str, ...]]:
    """A path allowed by ``refined`` but not by ``original`` (``None`` if included).

    Used to produce actionable error messages when negotiator verification
    rejects a tenant's modification.
    """
    difference = compile_dfa(refined).difference(compile_dfa(original))
    return difference.shortest_accepted()
