"""The :class:`Topology` graph.

A thin, typed wrapper around :class:`networkx.Graph` that knows about node
kinds (host / switch / middlebox), link capacities, and the queries the
compiler needs: the location set, undirected physical edges, host-to-switch
attachment, and the switch-only subgraph used by the sink-tree optimisation.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..errors import TopologyError
from ..units import Bandwidth, LINE_RATE
from .elements import Link, Node, NodeKind


class Topology:
    """A physical network topology.

    Nodes are identified by unique string names.  Links are undirected; the
    compiler's logical topology derives directed edges from them.
    """

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._graph = nx.Graph()
        self._nodes: Dict[str, Node] = {}
        self._host_counter = itertools.count(1)

    # -- construction ------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        """Add a pre-built :class:`Node`."""
        if node.name in self._nodes:
            raise TopologyError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        self._graph.add_node(node.name)
        return node

    def add_host(
        self,
        name: str,
        mac: Optional[str] = None,
        ip: Optional[str] = None,
        attached_switch: Optional[str] = None,
    ) -> Node:
        """Add a host, auto-assigning a MAC/IP if none is given."""
        index = next(self._host_counter)
        if mac is None:
            mac = ":".join(f"{byte:02x}" for byte in index.to_bytes(6, "big"))
        if ip is None:
            ip = f"10.{(index >> 16) & 0xFF}.{(index >> 8) & 0xFF}.{index & 0xFF}"
        return self.add_node(
            Node(name=name, kind=NodeKind.HOST, mac=mac, ip=ip, attached_switch=attached_switch)
        )

    def add_switch(self, name: str) -> Node:
        """Add a switch."""
        return self.add_node(Node(name=name, kind=NodeKind.SWITCH))

    def add_middlebox(self, name: str, attached_switch: Optional[str] = None) -> Node:
        """Add a middlebox."""
        return self.add_node(
            Node(name=name, kind=NodeKind.MIDDLEBOX, attached_switch=attached_switch)
        )

    def add_link(
        self,
        source: str,
        target: str,
        capacity: Bandwidth = LINE_RATE,
        latency_ms: float = 0.1,
    ) -> Link:
        """Add an undirected link between two existing nodes."""
        for endpoint in (source, target):
            if endpoint not in self._nodes:
                raise TopologyError(f"cannot link unknown node {endpoint!r}")
        if source == target:
            raise TopologyError(f"self-loop links are not allowed ({source!r})")
        link = Link(source=source, target=target, capacity=capacity, latency_ms=latency_ms)
        self._graph.add_edge(source, target, link=link)
        return link

    # -- queries -----------------------------------------------------------

    def node(self, name: str) -> Node:
        """Look up a node by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise TopologyError(f"unknown node {name!r}") from None

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def nodes(self) -> List[Node]:
        """All nodes."""
        return [self._nodes[name] for name in sorted(self._nodes)]

    def locations(self) -> List[str]:
        """All location names (hosts, switches, and middleboxes)."""
        return sorted(self._nodes)

    def hosts(self) -> List[Node]:
        """All host nodes."""
        return [node for node in self.nodes() if node.is_host]

    def switches(self) -> List[Node]:
        """All switch nodes."""
        return [node for node in self.nodes() if node.is_switch]

    def middleboxes(self) -> List[Node]:
        """All middlebox nodes."""
        return [node for node in self.nodes() if node.is_middlebox]

    def host_names(self) -> List[str]:
        return [node.name for node in self.hosts()]

    def switch_names(self) -> List[str]:
        return [node.name for node in self.switches()]

    def num_hosts(self) -> int:
        return len(self.hosts())

    def num_switches(self) -> int:
        return len(self.switches())

    def num_links(self) -> int:
        return self._graph.number_of_edges()

    def neighbors(self, name: str) -> List[str]:
        """Names of nodes adjacent to ``name``."""
        if name not in self._nodes:
            raise TopologyError(f"unknown node {name!r}")
        return sorted(self._graph.neighbors(name))

    def has_link(self, source: str, target: str) -> bool:
        return self._graph.has_edge(source, target)

    def link(self, source: str, target: str) -> Link:
        """The link between two adjacent nodes."""
        try:
            return self._graph.edges[source, target]["link"]
        except KeyError:
            raise TopologyError(f"no link between {source!r} and {target!r}") from None

    def links(self) -> List[Link]:
        """All links."""
        return [data["link"] for _, _, data in self._graph.edges(data=True)]

    def capacity(self, source: str, target: str) -> Bandwidth:
        """The capacity of the link between two adjacent nodes."""
        return self.link(source, target).capacity

    def degree(self, name: str) -> int:
        return self._graph.degree(name)

    def is_connected(self) -> bool:
        """Whether the topology is a single connected component."""
        if self._graph.number_of_nodes() == 0:
            return True
        return nx.is_connected(self._graph)

    def attachment_switch(self, name: str) -> str:
        """The switch a host or middlebox is attached to.

        If the node was created without an explicit ``attached_switch``, the
        first switch neighbour is used.  Raises when the node has no switch
        neighbour at all.
        """
        node = self.node(name)
        if node.attached_switch is not None:
            return node.attached_switch
        for neighbor in self.neighbors(name):
            if self._nodes[neighbor].is_switch:
                return neighbor
        raise TopologyError(f"node {name!r} is not attached to any switch")

    def hosts_on_switch(self, switch: str) -> List[str]:
        """Hosts directly attached to ``switch``."""
        return [
            neighbor
            for neighbor in self.neighbors(switch)
            if self._nodes[neighbor].is_host
        ]

    def switch_subgraph(self) -> "Topology":
        """The topology restricted to switches and switch-switch links.

        This is the optimisation of §3.3: best-effort sink trees are computed
        per egress *switch* rather than per host, shrinking the BFS to
        ``O(|V||E|)`` with ``|V|`` the number of switches.
        """
        subgraph = Topology(name=f"{self.name}-switches")
        for node in self.switches():
            subgraph.add_node(node)
        for link in self.links():
            if (
                self._nodes[link.source].is_switch
                and self._nodes[link.target].is_switch
            ):
                subgraph.add_link(link.source, link.target, link.capacity, link.latency_ms)
        return subgraph

    def without(
        self,
        links: Iterable[Tuple[str, str]] = (),
        nodes: Iterable[str] = (),
    ) -> "Topology":
        """A derived topology with the given links and nodes failed out.

        ``links`` are undirected (u, v) name pairs; ``nodes`` lose all their
        incident links along with themselves.  The *same* :class:`Node`
        objects are re-added (as :meth:`switch_subgraph` does), so hosts
        keep their MAC/IP assignments — re-creating them through
        :meth:`add_host` would re-draw from the address counter.  Unknown
        nodes or links raise :class:`TopologyError`; failing a host is
        rejected (hosts are policy endpoints, not fabric elements).
        """
        failed_nodes = set(nodes)
        for name in failed_nodes:
            node = self.node(name)
            if node.is_host:
                raise TopologyError(
                    f"cannot fail host {name!r}: only switches and "
                    "middleboxes can fail"
                )
        failed_links = set()
        for source, target in links:
            self.link(source, target)  # existence check
            failed_links.add(tuple(sorted((source, target))))
        derived = Topology(name=f"{self.name}-degraded")
        for node in self.nodes():
            if node.name not in failed_nodes:
                derived.add_node(node)
        for link in self.links():
            if tuple(sorted((link.source, link.target))) in failed_links:
                continue
            if link.source in failed_nodes or link.target in failed_nodes:
                continue
            derived.add_link(link.source, link.target, link.capacity, link.latency_ms)
        return derived

    def shortest_path(self, source: str, target: str) -> List[str]:
        """A shortest hop-count path between two locations."""
        try:
            return nx.shortest_path(self._graph, source, target)
        except nx.NetworkXNoPath:
            raise TopologyError(f"no path between {source!r} and {target!r}") from None

    def undirected_edges(self) -> List[Tuple[str, str]]:
        """All physical edges as sorted (u, v) name pairs."""
        return sorted(tuple(sorted(edge)) for edge in self._graph.edges())

    def to_networkx(self) -> nx.Graph:
        """A copy of the underlying networkx graph (nodes carry ``kind``)."""
        graph = nx.Graph()
        for node in self.nodes():
            graph.add_node(node.name, kind=node.kind.value)
        for link in self.links():
            graph.add_edge(link.source, link.target, capacity=link.capacity.bps_value)
        return graph

    def host_by_mac(self, mac: str) -> Optional[Node]:
        """Find the host with the given MAC address (``None`` if absent)."""
        normalized = mac.lower()
        for node in self.hosts():
            if node.mac and node.mac.lower() == normalized:
                return node
        return None

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return (
            f"Topology({self.name!r}, hosts={self.num_hosts()}, "
            f"switches={self.num_switches()}, links={self.num_links()})"
        )
