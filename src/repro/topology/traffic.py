"""Traffic-class enumeration.

The scalability experiments (Figures 7 and 8) measure compilation time as a
function of the number of *traffic classes*, where "each traffic class
represents a unidirectional stream going from one host at the edge of the
network to another".  This module enumerates such classes from a topology and
selects the subset that receives bandwidth guarantees.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..units import Bandwidth
from .graph import Topology


@dataclass(frozen=True)
class TrafficClass:
    """A unidirectional host-to-host traffic class.

    ``guarantee`` is the minimum bandwidth reserved for the class (``None``
    for best-effort classes); ``cap`` is an optional maximum rate.
    """

    source: str
    destination: str
    guarantee: Optional[Bandwidth] = None
    cap: Optional[Bandwidth] = None

    @property
    def is_guaranteed(self) -> bool:
        return self.guarantee is not None

    def identifier(self) -> str:
        """A policy-friendly statement identifier for this class."""
        return f"tc_{self.source}_{self.destination}"


def all_pairs_traffic(topology: Topology) -> List[TrafficClass]:
    """All ordered host pairs as best-effort traffic classes."""
    hosts = topology.host_names()
    return [
        TrafficClass(source=src, destination=dst)
        for src in hosts
        for dst in hosts
        if src != dst
    ]


def select_guaranteed(
    classes: Sequence[TrafficClass],
    fraction: float,
    guarantee: Bandwidth,
    cap: Optional[Bandwidth] = None,
    seed: int = 0,
) -> List[TrafficClass]:
    """Give a random ``fraction`` of the classes a bandwidth guarantee.

    Returns a new list in the original order where the selected classes carry
    ``guarantee`` (and optionally ``cap``); the rest stay best-effort.  This
    mirrors the "5% of the traffic classes with guaranteed bandwidth" setup
    of Figures 7 and 8 and the "10% of traffic classes" policy of Figure 4.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be within [0, 1], got {fraction}")
    rng = random.Random(seed)
    count = int(round(fraction * len(classes)))
    chosen = set(rng.sample(range(len(classes)), count)) if count else set()
    result: List[TrafficClass] = []
    for index, traffic_class in enumerate(classes):
        if index in chosen:
            result.append(
                TrafficClass(
                    source=traffic_class.source,
                    destination=traffic_class.destination,
                    guarantee=guarantee,
                    cap=cap,
                )
            )
        else:
            result.append(traffic_class)
    return result


def count_traffic_classes(topology: Topology) -> int:
    """Number of ordered host pairs (the x-axis of Figures 7 and 8)."""
    hosts = topology.num_hosts()
    return hosts * (hosts - 1)
