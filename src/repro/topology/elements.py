"""Node and link element types for physical topologies."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..units import Bandwidth, LINE_RATE


class NodeKind(enum.Enum):
    """The role a network location plays.

    The compiler treats all locations uniformly when building the logical
    topology, but code generation targets differ: switches receive OpenFlow
    rules and queue configurations, middleboxes receive Click configurations,
    and hosts receive ``tc``/``iptables`` commands or interpreter programs.
    """

    HOST = "host"
    SWITCH = "switch"
    MIDDLEBOX = "middlebox"


@dataclass(frozen=True)
class Node:
    """A network location.

    ``mac`` and ``ip`` are optional addressing attributes used when expanding
    policy sugar (set literals of hosts) and when generating match rules.
    ``attached_switch`` records, for hosts and middleboxes, the switch they
    hang off — used by the sink-tree optimisation and code generation.
    """

    name: str
    kind: NodeKind
    mac: Optional[str] = None
    ip: Optional[str] = None
    attached_switch: Optional[str] = None
    attributes: Dict[str, Any] = field(default_factory=dict, compare=False, hash=False)

    @property
    def is_host(self) -> bool:
        return self.kind is NodeKind.HOST

    @property
    def is_switch(self) -> bool:
        return self.kind is NodeKind.SWITCH

    @property
    def is_middlebox(self) -> bool:
        return self.kind is NodeKind.MIDDLEBOX


@dataclass(frozen=True)
class Link:
    """An undirected physical link with a capacity.

    Capacities default to 1 Gbps, the NIC speed of the paper's testbed.  The
    MIP formulation uses the capacity of the *physical* link regardless of
    how many logical-topology edges map onto it.
    """

    source: str
    target: str
    capacity: Bandwidth = LINE_RATE
    latency_ms: float = 0.1

    def endpoints(self) -> frozenset:
        """The unordered pair of endpoint names."""
        return frozenset({self.source, self.target})

    def other_end(self, node: str) -> str:
        """The endpoint that is not ``node``."""
        if node == self.source:
            return self.target
        if node == self.target:
            return self.source
        raise ValueError(f"{node!r} is not an endpoint of {self}")
