"""Topology serialisation: JSON for persistence, DOT for visualisation."""

from __future__ import annotations

import json
from typing import Any, Dict, Union

from ..errors import TopologyError
from ..units import Bandwidth
from .elements import Node, NodeKind
from .graph import Topology


def to_json(topology: Topology, indent: int = 2) -> str:
    """Serialise a topology to a JSON document."""
    payload: Dict[str, Any] = {
        "name": topology.name,
        "nodes": [
            {
                "name": node.name,
                "kind": node.kind.value,
                "mac": node.mac,
                "ip": node.ip,
                "attached_switch": node.attached_switch,
            }
            for node in topology.nodes()
        ],
        "links": [
            {
                "source": link.source,
                "target": link.target,
                "capacity_bps": link.capacity.bps_value,
                "latency_ms": link.latency_ms,
            }
            for link in topology.links()
        ],
    }
    return json.dumps(payload, indent=indent)


def from_json(document: Union[str, Dict[str, Any]]) -> Topology:
    """Deserialise a topology from a JSON document (string or parsed dict)."""
    payload = json.loads(document) if isinstance(document, str) else document
    try:
        topology = Topology(name=payload.get("name", "topology"))
        for node in payload["nodes"]:
            topology.add_node(
                Node(
                    name=node["name"],
                    kind=NodeKind(node["kind"]),
                    mac=node.get("mac"),
                    ip=node.get("ip"),
                    attached_switch=node.get("attached_switch"),
                )
            )
        for link in payload["links"]:
            topology.add_link(
                link["source"],
                link["target"],
                capacity=Bandwidth(float(link["capacity_bps"])),
                latency_ms=float(link.get("latency_ms", 0.1)),
            )
    except (KeyError, ValueError, TypeError) as error:
        raise TopologyError(f"malformed topology document: {error}") from error
    return topology


_DOT_SHAPES = {
    NodeKind.HOST: "ellipse",
    NodeKind.SWITCH: "box",
    NodeKind.MIDDLEBOX: "diamond",
}


def to_dot(topology: Topology) -> str:
    """Render a topology in Graphviz DOT format."""
    lines = [f'graph "{topology.name}" {{']
    for node in topology.nodes():
        shape = _DOT_SHAPES[node.kind]
        lines.append(f'  "{node.name}" [shape={shape}];')
    for link in topology.links():
        label = link.capacity.human()
        lines.append(f'  "{link.source}" -- "{link.target}" [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)
