"""Topology generators for every network family used in the evaluation.

* :func:`fat_tree` and :func:`balanced_tree` back the scalability experiments
  of Figures 7 and 8.
* :func:`stanford_campus` approximates the 16-switch Stanford core campus
  network with 24 subnets used for the expressiveness experiment (Figure 4).
* :func:`topology_zoo_like` / :func:`topology_zoo_ensemble` synthesise an
  ensemble matching the Internet Topology Zoo statistics quoted in §6.3
  (262 topologies, mean 40 switches, standard deviation 30, largest 754) for
  the compilation-time experiment of Figure 6.
* :func:`dumbbell` reproduces the two-path example of Figure 3 used to
  illustrate the path-selection heuristics, and :func:`figure2_example`
  reproduces the tiny network of Figure 2.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence

from ..units import Bandwidth, LINE_RATE
from .graph import Topology


def single_switch(num_hosts: int = 2, capacity: Bandwidth = LINE_RATE) -> Topology:
    """One switch with ``num_hosts`` hosts attached (the "big switch" view)."""
    topo = Topology(name=f"single-switch-{num_hosts}")
    topo.add_switch("s1")
    for index in range(1, num_hosts + 1):
        host = f"h{index}"
        topo.add_host(host, attached_switch="s1")
        topo.add_link(host, "s1", capacity)
    return topo


def linear(
    num_switches: int,
    hosts_per_switch: int = 1,
    capacity: Bandwidth = LINE_RATE,
) -> Topology:
    """A chain of switches, each with ``hosts_per_switch`` hosts."""
    topo = Topology(name=f"linear-{num_switches}")
    for index in range(1, num_switches + 1):
        topo.add_switch(f"s{index}")
        if index > 1:
            topo.add_link(f"s{index - 1}", f"s{index}", capacity)
    host_index = 1
    for index in range(1, num_switches + 1):
        for _ in range(hosts_per_switch):
            host = f"h{host_index}"
            topo.add_host(host, attached_switch=f"s{index}")
            topo.add_link(host, f"s{index}", capacity)
            host_index += 1
    return topo


def figure2_example(capacity: Bandwidth = LINE_RATE) -> Topology:
    """The example network of Figure 2: h1 - s1 - s2 - h2 with middlebox m1 on s1.

    Deep packet inspection can run at h1, h2, or m1; NAT only at m1 (the
    placement mapping itself is supplied to the compiler separately).
    """
    topo = Topology(name="figure2")
    topo.add_switch("s1")
    topo.add_switch("s2")
    topo.add_host("h1", attached_switch="s1")
    topo.add_host("h2", attached_switch="s2")
    topo.add_middlebox("m1", attached_switch="s1")
    topo.add_link("h1", "s1", capacity)
    topo.add_link("m1", "s1", capacity)
    topo.add_link("s1", "s2", capacity)
    topo.add_link("h2", "s2", capacity)
    return topo


def dumbbell(
    left_capacity: Bandwidth = Bandwidth.mb_per_sec(400),
    right_capacity: Bandwidth = Bandwidth.mb_per_sec(100),
) -> Topology:
    """The two-disjoint-path network of Figure 3.

    Hosts ``h1`` and ``h2`` are connected by a three-link path of 400 MB/s
    links (via ``sa1``/``sa2``) and a two-link path of 100 MB/s links (via
    ``sb1``).  The path-selection heuristics choose differently on it:
    weighted shortest path prefers the short, thin path; min-max ratio and
    min-max reserved spread or minimise reservations.
    """
    topo = Topology(name="dumbbell")
    topo.add_switch("sa1")
    topo.add_switch("sa2")
    topo.add_switch("sb1")
    topo.add_host("h1", attached_switch="sa1")
    topo.add_host("h2", attached_switch="sa2")
    # Long, fat path: h1 - sa1 - sa2 - h2 (three links of left_capacity).
    topo.add_link("h1", "sa1", left_capacity)
    topo.add_link("sa1", "sa2", left_capacity)
    topo.add_link("sa2", "h2", left_capacity)
    # Short, thin path: h1 - sb1 - h2 (two links of right_capacity).
    topo.add_link("h1", "sb1", right_capacity)
    topo.add_link("sb1", "h2", right_capacity)
    return topo


def balanced_tree(
    depth: int = 2,
    fanout: int = 2,
    hosts_per_leaf: int = 2,
    capacity: Bandwidth = LINE_RATE,
) -> Topology:
    """A balanced switch tree of the given depth and fanout.

    Hosts attach to the leaf switches.  Used by Figure 8 (a)/(b).
    """
    topo = Topology(name=f"balanced-tree-d{depth}-f{fanout}")
    counter = [0]

    def new_switch() -> str:
        counter[0] += 1
        name = f"s{counter[0]}"
        topo.add_switch(name)
        return name

    root = new_switch()
    frontier = [root]
    for _ in range(depth):
        next_frontier: List[str] = []
        for parent in frontier:
            for _ in range(fanout):
                child = new_switch()
                topo.add_link(parent, child, capacity)
                next_frontier.append(child)
        frontier = next_frontier
    host_index = 1
    for leaf in frontier:
        for _ in range(hosts_per_leaf):
            host = f"h{host_index}"
            topo.add_host(host, attached_switch=leaf)
            topo.add_link(host, leaf, capacity)
            host_index += 1
    return topo


def fat_tree(k: int = 4, capacity: Bandwidth = LINE_RATE) -> Topology:
    """A standard k-ary fat tree (k pods, (k/2)^2 core switches, k^3/4 hosts).

    Used by the scalability experiments of Figures 7 and 8 (c)/(d).  ``k``
    must be even.
    """
    if k % 2 != 0 or k < 2:
        raise ValueError("fat-tree arity k must be an even integer >= 2")
    topo = Topology(name=f"fat-tree-k{k}")
    half = k // 2
    core = [[f"c{i}_{j}" for j in range(half)] for i in range(half)]
    for row in core:
        for name in row:
            topo.add_switch(name)
    host_index = 1
    for pod in range(k):
        aggregation = [f"a{pod}_{i}" for i in range(half)]
        edge = [f"e{pod}_{i}" for i in range(half)]
        for name in aggregation + edge:
            topo.add_switch(name)
        for agg_index, agg in enumerate(aggregation):
            for edge_switch in edge:
                topo.add_link(agg, edge_switch, capacity)
            for j in range(half):
                topo.add_link(agg, core[agg_index][j], capacity)
        for edge_switch in edge:
            for _ in range(half):
                host = f"h{host_index}"
                topo.add_host(host, attached_switch=edge_switch)
                topo.add_link(host, edge_switch, capacity)
                host_index += 1
    return topo


def stanford_campus(capacity: Bandwidth = LINE_RATE, subnets: int = 24) -> Topology:
    """An approximation of the 16-switch Stanford core campus network.

    The real dataset (used via ATPG in the paper) has two backbone routers
    and fourteen zone routers; every zone router connects to both backbones,
    and the 24 subnets of the expressiveness experiment hang off the zone
    routers.  Each subnet is modelled as one host.
    """
    topo = Topology(name="stanford-campus")
    backbones = ["bbra_rtr", "bbrb_rtr"]
    zones = [f"zone{i}_rtr" for i in range(1, 15)]
    for name in backbones + zones:
        topo.add_switch(name)
    topo.add_link(backbones[0], backbones[1], capacity)
    for zone in zones:
        for backbone in backbones:
            topo.add_link(zone, backbone, capacity)
    for subnet in range(1, subnets + 1):
        zone = zones[(subnet - 1) % len(zones)]
        host = f"subnet{subnet}"
        topo.add_host(host, attached_switch=zone)
        topo.add_link(host, zone, capacity)
    return topo


def topology_zoo_like(
    num_switches: int,
    seed: int = 0,
    hosts_per_switch: int = 1,
    capacity: Bandwidth = LINE_RATE,
    extra_edge_fraction: float = 0.3,
) -> Topology:
    """A single random WAN-like topology with the given number of switches.

    The construction mirrors the sparse, meshy structure of Internet Topology
    Zoo graphs: a random spanning tree guarantees connectivity, then a
    fraction of additional shortcut links is added.
    """
    rng = random.Random(seed)
    topo = Topology(name=f"zoo-like-{num_switches}-seed{seed}")
    switches = [f"s{i}" for i in range(1, num_switches + 1)]
    for name in switches:
        topo.add_switch(name)
    # Random spanning tree: connect each new switch to a random earlier one.
    for index in range(1, num_switches):
        peer = switches[rng.randrange(index)]
        topo.add_link(switches[index], peer, capacity)
    # Extra shortcut edges for redundancy.
    extra_edges = int(extra_edge_fraction * num_switches)
    attempts = 0
    while extra_edges > 0 and attempts < 20 * num_switches:
        attempts += 1
        u, v = rng.sample(switches, 2)
        if not topo.has_link(u, v):
            topo.add_link(u, v, capacity)
            extra_edges -= 1
    host_index = 1
    for switch in switches:
        for _ in range(hosts_per_switch):
            host = f"h{host_index}"
            topo.add_host(host, attached_switch=switch)
            topo.add_link(host, switch, capacity)
            host_index += 1
    return topo


def topology_zoo_ensemble(
    count: int = 262,
    seed: int = 0,
    mean_switches: float = 40.0,
    stdev_switches: float = 30.0,
    max_switches: int = 754,
    min_switches: int = 4,
    hosts_per_switch: int = 1,
) -> Iterator[Topology]:
    """Yield an ensemble of topologies matching the Topology Zoo statistics.

    §6.3 quotes 262 topologies with an average of 40 switches, a standard
    deviation of 30 switches, and a largest topology of 754 switches.  The
    ensemble draws sizes from a truncated normal distribution with those
    moments and forces the final topology to the maximum size so the outlier
    in Figure 6 is present.
    """
    rng = random.Random(seed)
    sizes: List[int] = []
    for _ in range(count - 1):
        size = int(round(rng.gauss(mean_switches, stdev_switches)))
        sizes.append(max(min_switches, min(max_switches, size)))
    sizes.append(max_switches)
    for index, size in enumerate(sizes):
        yield topology_zoo_like(
            size, seed=seed + index + 1, hosts_per_switch=hosts_per_switch
        )
