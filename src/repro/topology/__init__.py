"""Physical network topology model and generators.

The Merlin compiler consumes a representation of the physical topology: the
set of locations (hosts, switches, middleboxes), the links between them, and
each link's capacity.  This package provides the :class:`Topology` graph, the
node/link element types, generators for every topology family used in the
paper's evaluation (fat trees, balanced trees, a Stanford-campus-like
network, and a Topology-Zoo-like ensemble), traffic-class enumeration, and
JSON/DOT serialisation.
"""

from .elements import Link, Node, NodeKind
from .generators import (
    balanced_tree,
    dumbbell,
    fat_tree,
    figure2_example,
    linear,
    single_switch,
    stanford_campus,
    topology_zoo_like,
    topology_zoo_ensemble,
)
from .graph import Topology
from .io import from_json, to_dot, to_json
from .traffic import TrafficClass, all_pairs_traffic, select_guaranteed

__all__ = [
    "Link",
    "Node",
    "NodeKind",
    "Topology",
    "balanced_tree",
    "dumbbell",
    "fat_tree",
    "figure2_example",
    "linear",
    "single_switch",
    "stanford_campus",
    "topology_zoo_like",
    "topology_zoo_ensemble",
    "from_json",
    "to_dot",
    "to_json",
    "TrafficClass",
    "all_pairs_traffic",
    "select_guaranteed",
]
