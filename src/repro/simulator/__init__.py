"""Flow-level network simulator.

The paper's application experiments (§6.2) run on a hardware testbed: real
switches enforce the queues and rate limiters Merlin generates, and Hadoop /
Ring Paxos measure end-to-end throughput.  Lacking that hardware, this
package provides a fluid (flow-level) simulator that enforces the same
bandwidth semantics on the compiled output:

* link bandwidth is shared max-min fairly among the flows crossing it,
* a flow with a Merlin guarantee always receives at least its guaranteed
  rate (when its demand asks for it),
* a flow with a Merlin cap never exceeds it,
* unused guaranteed bandwidth is available to other flows (work conservation,
  the property highlighted in Figure 5 (b)).

Applications (a Hadoop shuffle model and a Ring Paxos replication model)
drive the simulator to reproduce the paper's end-to-end results.
"""

from .engine import FlowSimulator, SimulationTrace
from .fairshare import allocate_rates
from .flows import Flow, FlowStats
from .network import SimulationNetwork
from .traffic import constant_bit_rate_flow, elastic_flow

__all__ = [
    "FlowSimulator",
    "SimulationTrace",
    "allocate_rates",
    "Flow",
    "FlowStats",
    "SimulationNetwork",
    "constant_bit_rate_flow",
    "elastic_flow",
]
