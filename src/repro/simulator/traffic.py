"""Traffic source helpers.

Small factories that build :class:`~repro.simulator.flows.Flow` objects for
the traffic patterns used in the evaluation: constant-bit-rate UDP background
traffic (the ``iperf`` interference of the Hadoop experiment), elastic
transfers (Hadoop shuffle data), and request/response client load (Ring
Paxos clients).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ..packet import Packet, make_packet
from .flows import Flow
from .network import SimulationNetwork


def constant_bit_rate_flow(
    network: SimulationNetwork,
    flow_id: str,
    source_host: str,
    destination_host: str,
    rate_bps: float,
    packet: Optional[Packet] = None,
    start_time: float = 0.0,
) -> Flow:
    """An open-ended flow sending at a constant rate (UDP-like background traffic)."""
    if packet is None:
        packet = _default_packet(network, source_host, destination_host, udp_dst=5001)
    return network.build_flow(
        flow_id=flow_id,
        source_host=source_host,
        destination_host=destination_host,
        packet=packet,
        demand_bps=rate_bps,
        size_bytes=None,
        start_time=start_time,
        responsive=False,
    )


def elastic_flow(
    network: SimulationNetwork,
    flow_id: str,
    source_host: str,
    destination_host: str,
    size_bytes: float,
    packet: Optional[Packet] = None,
    start_time: float = 0.0,
) -> Flow:
    """A finite transfer that uses whatever bandwidth it is allocated (TCP-like)."""
    if packet is None:
        packet = _default_packet(network, source_host, destination_host, tcp_dst=50010)
    return network.build_flow(
        flow_id=flow_id,
        source_host=source_host,
        destination_host=destination_host,
        packet=packet,
        demand_bps=math.inf,
        size_bytes=size_bytes,
        start_time=start_time,
    )


def _default_packet(
    network: SimulationNetwork,
    source_host: str,
    destination_host: str,
    tcp_dst: Optional[int] = None,
    udp_dst: Optional[int] = None,
) -> Packet:
    """A representative packet for classification purposes."""
    topology = network.topology
    source = topology.node(source_host)
    destination = topology.node(destination_host)
    return make_packet(
        eth_src=source.mac,
        eth_dst=destination.mac,
        ip_src=source.ip,
        ip_dst=destination.ip,
        ip_proto="tcp" if tcp_dst is not None else "udp",
        tcp_dst=tcp_dst,
        udp_dst=udp_dst,
    )
