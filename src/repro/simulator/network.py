"""Binding a topology and a compiled policy to the simulator.

:class:`SimulationNetwork` answers two questions for the simulator:

* what path does a flow between two hosts take?  (the compiled per-statement
  path when one exists, the compiled sink tree otherwise, or a shortest path
  as a last resort), and
* what bandwidth guarantee / cap applies to that flow?  (the statement whose
  predicate matches the flow's packets).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.allocation import CompilationResult
from ..packet import Packet
from ..predicates.evaluator import matches
from ..topology.graph import Topology
from ..units import Bandwidth
from .flows import Flow, LinkKey


@dataclass
class SimulationNetwork:
    """A topology plus (optionally) the compiled policy governing it."""

    topology: Topology
    compilation: Optional[CompilationResult] = None

    def link_capacities(self) -> Dict[LinkKey, float]:
        """Capacity in bps of every physical link."""
        return {
            tuple(sorted((link.source, link.target))): link.capacity.bps_value
            for link in self.topology.links()
        }

    # -- routing -----------------------------------------------------------------

    def route(
        self,
        source_host: str,
        destination_host: str,
        statement_id: Optional[str] = None,
    ) -> Tuple[str, ...]:
        """The location path a flow takes from ``source_host`` to ``destination_host``."""
        if self.compilation is not None:
            if statement_id is not None:
                assignment = self.compilation.paths.get(statement_id)
                if assignment is not None and len(assignment.path) > 1:
                    return assignment.path
            egress = self.topology.attachment_switch(destination_host)
            tree = self.compilation.sink_trees.get(egress)
            if tree is not None:
                from ..core.sink_tree import host_path

                return tuple(host_path(self.topology, tree, source_host, destination_host))
        return tuple(self.topology.shortest_path(source_host, destination_host))

    # -- statement lookup -----------------------------------------------------------

    def classify(self, packet: Packet) -> Optional[str]:
        """The identifier of the policy statement matching ``packet`` (if compiled)."""
        if self.compilation is None:
            return None
        for statement in self.compilation.policy.statements:
            if matches(statement.predicate, packet):
                return statement.identifier
        return None

    def rate_limits(self, statement_id: Optional[str]) -> Tuple[float, float]:
        """(guarantee_bps, cap_bps) for a statement (0 / +inf when absent)."""
        if self.compilation is None or statement_id is None:
            return 0.0, math.inf
        allocation = self.compilation.rates.get(statement_id)
        if allocation is None:
            return 0.0, math.inf
        guarantee = allocation.guarantee.bps_value if allocation.guarantee else 0.0
        cap = allocation.cap.bps_value if allocation.cap else math.inf
        return guarantee, cap

    # -- flow construction -------------------------------------------------------------

    def build_flow(
        self,
        flow_id: str,
        source_host: str,
        destination_host: str,
        packet: Optional[Packet] = None,
        demand_bps: float = math.inf,
        size_bytes: Optional[float] = None,
        start_time: float = 0.0,
        responsive: bool = True,
    ) -> Flow:
        """Create a flow routed and rate-limited according to the compiled policy."""
        statement_id = self.classify(packet) if packet is not None else None
        path = self.route(source_host, destination_host, statement_id)
        guarantee, cap = self.rate_limits(statement_id)
        return Flow(
            flow_id=flow_id,
            path=path,
            demand_bps=demand_bps,
            size_bytes=size_bytes,
            guarantee_bps=guarantee,
            cap_bps=cap,
            statement_id=statement_id,
            start_time=start_time,
            responsive=responsive,
        )
