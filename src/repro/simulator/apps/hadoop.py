"""A Hadoop sort-job model (the experiment of §6.2).

The paper sorts 10 GB of data on a four-server cluster and measures the job
completion time in three configurations: exclusive network access,
interference from UDP background traffic, and interference with a Merlin
policy guaranteeing 90% of the capacity to Hadoop.  The network-sensitive
part of the job is the shuffle phase, whose many-to-many transfers are what
the background traffic slows down.

The model splits the job into a fixed compute component (map + reduce CPU
time, unaffected by the network) and a shuffle component simulated as
all-to-all elastic transfers through the flow simulator.  The reported
completion time is ``compute_seconds + measured shuffle duration``; relative
slowdowns between the three configurations are what the experiment checks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ...packet import make_packet
from ...units import Bandwidth
from ..engine import FlowSimulator
from ..network import SimulationNetwork
from ..traffic import constant_bit_rate_flow, elastic_flow


@dataclass
class HadoopResult:
    """Outcome of one Hadoop job run."""

    completion_seconds: float
    shuffle_seconds: float
    compute_seconds: float
    per_transfer_seconds: Dict[str, float] = field(default_factory=dict)


@dataclass
class HadoopJob:
    """A sort job over the given worker hosts.

    ``data_bytes`` is the total input size; during the shuffle each worker
    sends ``data_bytes / n^2`` to every other worker (uniform key
    distribution).  ``compute_seconds`` is the network-independent part of
    the job (map/reduce CPU, disk I/O); the paper's baseline of 466 s with a
    shuffle taking a couple of minutes on 1 Gbps NICs corresponds to roughly
    400 s of compute.
    """

    workers: Sequence[str]
    data_bytes: float = 10e9
    compute_seconds: float = 400.0
    shuffle_port: int = 50010

    def run(
        self,
        network: SimulationNetwork,
        background_flows: Optional[Sequence] = None,
        max_seconds: float = 10_000.0,
    ) -> HadoopResult:
        """Simulate the job and return its completion time.

        ``background_flows`` are pre-built flows (e.g. UDP interference)
        injected into the simulator alongside the shuffle transfers.
        """
        simulator = FlowSimulator(network)
        for flow in background_flows or []:
            simulator.add_flow(flow)

        workers = list(self.workers)
        num_workers = len(workers)
        per_pair_bytes = self.data_bytes / (num_workers * num_workers)
        transfer_ids: List[str] = []
        for source, destination in itertools.permutations(workers, 2):
            flow_id = f"shuffle_{source}_{destination}"
            transfer_ids.append(flow_id)
            packet = self._shuffle_packet(network, source, destination)
            simulator.add_flow(
                elastic_flow(
                    network,
                    flow_id,
                    source,
                    destination,
                    size_bytes=per_pair_bytes,
                    packet=packet,
                )
            )

        simulator.run_until(max_seconds)
        per_transfer: Dict[str, float] = {}
        shuffle_end = 0.0
        for stats in simulator.stats():
            if stats.flow_id in transfer_ids:
                completion = stats.completion_time
                if completion is None:
                    completion = max_seconds
                per_transfer[stats.flow_id] = completion
                shuffle_end = max(shuffle_end, completion)
        return HadoopResult(
            completion_seconds=self.compute_seconds + shuffle_end,
            shuffle_seconds=shuffle_end,
            compute_seconds=self.compute_seconds,
            per_transfer_seconds=per_transfer,
        )

    def _shuffle_packet(self, network: SimulationNetwork, source: str, destination: str):
        topology = network.topology
        return make_packet(
            eth_src=topology.node(source).mac,
            eth_dst=topology.node(destination).mac,
            ip_src=topology.node(source).ip,
            ip_dst=topology.node(destination).ip,
            ip_proto="tcp",
            tcp_dst=self.shuffle_port,
        )


def udp_interference(
    network: SimulationNetwork,
    pairs: Sequence,
    rate: Bandwidth,
    port: int = 5001,
) -> List:
    """Constant-bit-rate UDP flows between the given (source, destination) pairs."""
    flows = []
    topology = network.topology
    for index, (source, destination) in enumerate(pairs):
        packet = make_packet(
            eth_src=topology.node(source).mac,
            eth_dst=topology.node(destination).mac,
            ip_src=topology.node(source).ip,
            ip_dst=topology.node(destination).ip,
            ip_proto="udp",
            udp_dst=port,
        )
        flows.append(
            constant_bit_rate_flow(
                network,
                f"udp_{index}_{source}_{destination}",
                source,
                destination,
                rate_bps=rate.bps_value,
                packet=packet,
            )
        )
    return flows
