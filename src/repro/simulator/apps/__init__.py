"""Application models driven through the flow simulator.

The paper's end-to-end experiments (§6.2) use two real applications: a
Hadoop sort job (sensitive to shuffle bandwidth) and a key-value store
replicated with Ring Paxos (sensitive to the bandwidth available to its
ring).  These modules model the network behaviour of both applications so
the experiments can be reproduced on the fluid simulator.
"""

from .hadoop import HadoopJob, HadoopResult
from .ringpaxos import RingPaxosExperiment, RingPaxosService

__all__ = ["HadoopJob", "HadoopResult", "RingPaxosExperiment", "RingPaxosService"]
