"""Flow objects for the fluid simulator."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..units import Bandwidth

#: A link key: the unordered pair of endpoint names, sorted.
LinkKey = Tuple[str, str]


def path_links(path: Sequence[str]) -> List[LinkKey]:
    """The link keys traversed by a location path (consecutive duplicates skipped)."""
    links: List[LinkKey] = []
    for left, right in zip(path, path[1:]):
        if left != right:
            links.append(tuple(sorted((left, right))))
    return links


@dataclass
class Flow:
    """A unidirectional traffic flow in the fluid simulator.

    ``demand_bps`` is the rate the flow would send if unconstrained
    (``math.inf`` for elastic transfers that use whatever they get).
    ``size_bytes`` is the remaining transfer size for finite transfers
    (``None`` for open-ended flows such as UDP background traffic).
    ``guarantee_bps`` / ``cap_bps`` carry the Merlin allocation for the
    statement the flow falls under.
    """

    flow_id: str
    path: Tuple[str, ...]
    demand_bps: float = math.inf
    size_bytes: Optional[float] = None
    guarantee_bps: float = 0.0
    cap_bps: float = math.inf
    statement_id: Optional[str] = None
    start_time: float = 0.0
    #: Responsive flows (TCP-like) back off to their fair share; unresponsive
    #: flows (UDP-like constant-bit-rate sources) keep sending at their demand
    #: and therefore grab bandwidth before the responsive flows share what is
    #: left.  Merlin guarantees and caps still bound both kinds.
    responsive: bool = True

    def __post_init__(self) -> None:
        self.links: List[LinkKey] = path_links(self.path)
        self.current_rate_bps: float = 0.0
        self.bytes_sent: float = 0.0
        self.completion_time: Optional[float] = None

    @property
    def source(self) -> str:
        return self.path[0]

    @property
    def destination(self) -> str:
        return self.path[-1]

    @property
    def is_finite(self) -> bool:
        return self.size_bytes is not None

    @property
    def finished(self) -> bool:
        return self.completion_time is not None

    def remaining_bytes(self) -> float:
        if self.size_bytes is None:
            return math.inf
        return max(0.0, self.size_bytes - self.bytes_sent)

    def effective_demand(self) -> float:
        """The rate the flow wants right now, bounded by its cap."""
        return min(self.demand_bps, self.cap_bps)


@dataclass
class FlowStats:
    """Per-flow summary statistics collected by the simulator."""

    flow_id: str
    start_time: float
    completion_time: Optional[float]
    bytes_sent: float
    mean_rate_bps: float

    @property
    def duration(self) -> Optional[float]:
        if self.completion_time is None:
            return None
        return self.completion_time - self.start_time
