"""Max-min fair bandwidth allocation with guarantees and caps.

The allocator models how the generated configuration behaves on real
hardware: switch queues reserve the guaranteed rate for guaranteed traffic,
``tc`` limits cap traffic at the hosts, and whatever is left is shared by the
competing flows in a TCP-like max-min fair way.  The algorithm is progressive
filling in two phases:

1. every flow is granted its guarantee (clipped to its demand),
2. the remaining capacity on every link is distributed max-min fairly among
   all flows that still want more, so unused guaranteed bandwidth is
   reclaimed by best-effort traffic (work conservation).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence

from ..errors import SimulationError
from .flows import Flow, LinkKey

#: Convergence tolerance for the progressive-filling loop, in bits/second.
_EPSILON = 1e-3


def allocate_rates(
    flows: Sequence[Flow],
    link_capacities: Mapping[LinkKey, float],
) -> Dict[str, float]:
    """Compute the rate (bps) of every flow under max-min fair sharing.

    Raises :class:`SimulationError` if the guarantees alone exceed a link's
    capacity — the compiler's provisioning stage is supposed to prevent that
    from ever happening for admitted policies.
    """
    active = [flow for flow in flows if not flow.finished]
    rates: Dict[str, float] = {flow.flow_id: 0.0 for flow in active}
    if not active:
        return rates

    # Phase 1: grant guarantees (clipped to demand).
    residual: Dict[LinkKey, float] = dict(link_capacities)
    for flow in active:
        granted = min(flow.guarantee_bps, flow.effective_demand())
        rates[flow.flow_id] = granted
        for link in flow.links:
            if link not in residual:
                raise SimulationError(
                    f"flow {flow.flow_id!r} crosses unknown link {link!r}"
                )
            residual[link] -= granted
    for link, remaining in residual.items():
        if remaining < -_EPSILON:
            raise SimulationError(
                f"guarantees over-subscribe link {link!r} by {-remaining:.0f} bps; "
                "the compiled policy should have been rejected by provisioning"
            )
        residual[link] = max(0.0, remaining)

    # Phase 2: unresponsive (UDP-like) flows keep sending at their demand, so
    # they claim the remaining capacity before responsive flows share it.
    unresponsive = [flow for flow in active if not flow.responsive]
    responsive = [flow for flow in active if flow.responsive]
    _progressive_fill(unresponsive, rates, residual)

    # Phase 3: responsive (TCP-like) flows max-min share whatever is left.
    _progressive_fill(responsive, rates, residual)

    return rates


def _progressive_fill(
    flows: Sequence[Flow],
    rates: Dict[str, float],
    residual: Dict[LinkKey, float],
) -> None:
    """Max-min progressive filling of ``flows`` over the residual capacities.

    ``rates`` and ``residual`` are updated in place; each flow's rate never
    exceeds its effective demand (demand bounded by its cap).
    """
    wanting = {
        flow.flow_id: flow
        for flow in flows
        if rates[flow.flow_id] + _EPSILON < flow.effective_demand()
    }
    # Guard against infinite loops from numerical corner cases.
    for _ in range(10 * max(1, len(flows)) + len(residual) + 10):
        if not wanting:
            break
        # The bottleneck link determines the next uniform increment.
        increment = math.inf
        for link, remaining in residual.items():
            crossing = [
                flow for flow in wanting.values() if link in flow.links
            ]
            if crossing:
                increment = min(increment, remaining / len(crossing))
        # Flows may also be limited by their own demand/cap before any link fills.
        for flow in wanting.values():
            headroom = flow.effective_demand() - rates[flow.flow_id]
            increment = min(increment, headroom)
        if increment is math.inf or increment <= _EPSILON:
            increment = 0.0

        if increment > 0.0:
            for flow in wanting.values():
                rates[flow.flow_id] += increment
                for link in flow.links:
                    residual[link] -= increment

        # Freeze flows that hit their demand or a saturated link.
        saturated_links = {
            link for link, remaining in residual.items() if remaining <= _EPSILON
        }
        still_wanting = {}
        for flow_id, flow in wanting.items():
            if rates[flow_id] + _EPSILON >= flow.effective_demand():
                continue
            if any(link in saturated_links for link in flow.links):
                continue
            still_wanting[flow_id] = flow
        if len(still_wanting) == len(wanting) and increment == 0.0:
            break
        wanting = still_wanting


def link_utilisation(
    flows: Sequence[Flow],
    rates: Mapping[str, float],
    link_capacities: Mapping[LinkKey, float],
) -> Dict[LinkKey, float]:
    """The fraction of each link's capacity in use under the given rates."""
    load: Dict[LinkKey, float] = {link: 0.0 for link in link_capacities}
    for flow in flows:
        rate = rates.get(flow.flow_id, 0.0)
        for link in flow.links:
            load[link] = load.get(link, 0.0) + rate
    return {
        link: (load[link] / capacity if capacity > 0 else 0.0)
        for link, capacity in link_capacities.items()
    }
